"""Fault-injecting block-device wrappers.

:class:`FaultyDevice` wraps *anything* that speaks the
:class:`~repro.io.BlockDevice` protocol — a raw drive, a controller, a
storage node, a striped volume, even another wrapper — and applies a
:class:`~repro.faults.plan.FaultPlan` to every submission. Requests the
plan passes cleanly are forwarded untouched (the inner device's
completion event is returned as-is), so an empty plan is a *zero
perturbation* wrapper: simulations with and without it are
bit-identical. Unknown attributes delegate to the inner device, so
layer-specific surfaces (``disk_ids``, ``drive()``, …) stay reachable
through the wrapper.

:class:`StragglerDevice` is the latency-only convenience: one slowdown
profile, no failures — the straggler of arXiv:1805.06156.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Tuple

from repro import obs
from repro.faults.errors import TransientDeviceError
from repro.faults.plan import FaultOutcome, FaultPlan, StragglerProfile
from repro.io import IORequest
from repro.sim import Simulator
from repro.sim.events import Event
from repro.sim.stats import StatsRegistry

__all__ = ["FaultyDevice", "StragglerDevice"]


class FaultyDevice:
    """Apply a :class:`FaultPlan` at any block-device boundary.

    Parameters
    ----------
    sim:
        Owning simulator.
    inner:
        The wrapped device.
    plan:
        The seeded fault schedule. ``None`` means no faults (pure
        pass-through).

    Attributes
    ----------
    failures:
        Count of injected failures (kept for wrapper-compatibility with
        the historical test-local ``FaultyDevice``).
    """

    def __init__(self, sim: Simulator, inner: Any,
                 plan: Optional[FaultPlan] = None,
                 name: str = "faulty"):
        self.sim = sim
        self.inner = inner
        self.plan = plan or FaultPlan()
        self.name = name
        self.capacity_bytes = inner.capacity_bytes
        self.stats = StatsRegistry()
        self.failures = 0
        #: consecutive injected-failure count per (disk, offset, size);
        #: cleared the moment an attempt passes, so it only holds
        #: currently-failing ranges (bounded by in-flight retries).
        self._attempts: Dict[Tuple[int, int, int], int] = {}
        #: runtime kills layered over the (immutable) plan's deaths.
        self._runtime_deaths: Dict[int, float] = {}
        self._fault_name = f"{name}.fault"
        self._drag_name = f"{name}.drag"
        self._c_injected = self.stats.counter("injected")
        self._c_transient = self.stats.counter("injected_transient")
        self._c_straggled = self.stats.counter("straggled")
        # Ambient observability, captured once (boolean-guarded hooks).
        self._obs = obs.current()
        self._obs_on = self._obs.enabled
        if self._obs_on:
            telemetry = self._obs.telemetry_for(sim)
            if telemetry is not None \
                    and f"faults.{name}.injected" not in telemetry.series:
                telemetry.watch_faults(self)
                telemetry.start()

    # -- chaos controls ----------------------------------------------------
    def kill_disk(self, disk_id: int, at: Optional[float] = None) -> None:
        """Declare ``disk_id`` dead from ``at`` (default: now) onward."""
        when = self.sim.now if at is None else at
        current = self._runtime_deaths.get(disk_id, math.inf)
        self._runtime_deaths[disk_id] = min(current, when)

    def dead_disks(self, now: Optional[float] = None) -> Tuple[int, ...]:
        """Disks dead at ``now`` (default: the current instant)."""
        when = self.sim.now if now is None else now
        dead = {d.disk_id for d in self.plan.deaths if when >= d.at}
        dead.update(d for d, at in self._runtime_deaths.items()
                    if when >= at)
        return tuple(sorted(dead))

    # -- BlockDevice protocol ----------------------------------------------
    def submit(self, request: IORequest) -> Event:
        """Evaluate the plan for this attempt, then inject or forward."""
        now = self.sim.now
        death = self._runtime_deaths.get(request.disk_id)
        if death is not None and now >= death:
            from repro.faults.errors import DiskDeadError
            outcome = FaultOutcome(error=DiskDeadError(
                f"disk {request.disk_id} killed at t={death:g}"))
        else:
            key = (request.disk_id, request.offset, request.size)
            attempt = self._attempts.get(key, 0)
            outcome = self.plan.evaluate(request, now, attempt)
            if outcome.error is not None:
                self._attempts[key] = attempt + 1
            elif attempt:
                del self._attempts[key]
        if outcome.error is not None:
            self.failures += 1
            self._c_injected.add(request.size)
            if isinstance(outcome.error, TransientDeviceError):
                self._c_transient.add(request.size)
            if self._obs_on:
                self._obs.instant_for(
                    request, "fault.inject", "fault", now,
                    args={"error": type(outcome.error).__name__,
                          "device": self.name})
            event = self.sim.event(self._fault_name)
            event.fail(outcome.error)
            return event
        inner_event = self.inner.submit(request)
        if outcome.clean:
            return inner_event  # zero-perturbation pass-through
        self._c_straggled.add(request.size)
        outer = self.sim.event(self._drag_name)
        self.sim.process(
            self._drag(request, inner_event, outer, now, outcome),
            name=self._drag_name)
        return outer

    def _drag(self, request: IORequest, inner_event: Event, outer: Event,
              started: float, outcome: FaultOutcome):
        """Straggler path: inflate the observed service time."""
        try:
            value = yield inner_event
        except Exception as exc:  # inner fault passes straight through
            outer.fail(exc)
            return
        service = self.sim.now - started
        extra = service * (outcome.slowdown - 1.0) + outcome.extra_s
        if extra > 0.0:
            if self._obs_on:
                span = self._obs.begin_child(
                    request, "fault.straggle", "fault", self.sim.now,
                    args={"device": self.name, "extra_s": extra})
                yield self.sim.timeout(extra)
                self._obs.spans.end(span, self.sim.now)
            else:
                yield self.sim.timeout(extra)
        outer.succeed(value)

    def register_buffers(self, count: int) -> None:
        """Forward host buffer accounting to the wrapped device."""
        register = getattr(self.inner, "register_buffers", None)
        if register is not None:
            register(count)

    def __getattr__(self, attribute: str) -> Any:
        """Delegate layer-specific surfaces to the wrapped device."""
        return getattr(self.inner, attribute)

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.name!r} plan={self.plan!r} "
                f"failures={self.failures}>")


class StragglerDevice(FaultyDevice):
    """Latency-only wrapper: one straggler profile, no failures."""

    def __init__(self, sim: Simulator, inner: Any, slowdown: float,
                 disk_id: Optional[int] = None, start: float = 0.0,
                 end: float = math.inf, extra_s: float = 0.0,
                 name: str = "straggler"):
        plan = FaultPlan(stragglers=(StragglerProfile(
            slowdown=slowdown, disk_id=disk_id, start=start, end=end,
            extra_s=extra_s),))
        super().__init__(sim, inner, plan, name=name)
