"""Deterministic, seeded fault schedules.

A :class:`FaultPlan` is *data*: a seed plus a set of declarative rules
(media defects over LBA ranges, probabilistic per-request failures,
whole-disk death at time *T*, straggler latency-inflation profiles).
Evaluation is a pure function of ``(seed, rule set, request identity,
attempt number, simulated time)`` — two runs with the same plan and the
same workload observe exactly the same faults, and a *retry* of the same
request is a new attempt that may (for transient rules) succeed.

Determinism is anchored on request identity, not on draw order: the
per-request coin flips hash ``(seed, disk, offset, attempt)`` with
BLAKE2b rather than consuming a shared RNG stream, so reordering
unrelated requests never changes which requests fail.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Callable, Optional, Sequence, Tuple

from repro.faults.errors import (
    DeviceError,
    DiskDeadError,
    MediaError,
    TransientMediaError,
)
from repro.io import IORequest

__all__ = [
    "DiskDeath",
    "FaultOutcome",
    "FaultPlan",
    "MediaFault",
    "RandomFaults",
    "StragglerProfile",
]


def _hash01(seed: int, *parts: int) -> float:
    """Uniform float in ``[0, 1)`` from a seed and integer coordinates.

    Stable across processes and platforms (unlike ``hash``), and
    independent of evaluation order (unlike a shared ``random.Random``).
    """
    digest = blake2b(digest_size=8)
    digest.update(repr((seed,) + parts).encode())
    return int.from_bytes(digest.digest(), "big") / 2**64


@dataclass(frozen=True)
class MediaFault:
    """A defective LBA byte range on one disk.

    ``transient`` defects heal: an overlapping request fails its first
    ``recover_after`` attempts and then succeeds (the drive's internal
    ECC retry finally reads the sector). Permanent defects fail every
    overlapping request, forever.
    """

    disk_id: int
    offset: int
    size: int
    transient: bool = False
    recover_after: int = 1

    def matches(self, request: IORequest) -> bool:
        """Does the request overlap the defective range?"""
        return (request.disk_id == self.disk_id
                and request.overlaps(self.offset, self.size))


@dataclass(frozen=True)
class RandomFaults:
    """Probabilistic per-request transient failures.

    Each *attempt* of each request on ``disk_id`` (``None`` = every
    disk) fails independently with ``probability`` — the coin flip is a
    pure hash of ``(seed, disk, offset, attempt)``, so a retry re-rolls
    while a re-run reproduces.
    """

    probability: float
    disk_id: Optional[int] = None

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1]: {self.probability}")


@dataclass(frozen=True)
class DiskDeath:
    """Whole-disk death: every request at or after ``at`` fails."""

    disk_id: int
    at: float = 0.0


@dataclass(frozen=True)
class StragglerProfile:
    """Latency inflation on one disk (``None`` = every disk).

    A matching request's service time is multiplied by ``slowdown``
    while ``start <= now < end`` — the classic straggling-server tail
    (arXiv:1805.06156) where one device runs at a fraction of fleet
    speed without failing outright. ``extra_s`` adds a flat penalty on
    top (controller resets, recovered-error retries).
    """

    slowdown: float = 1.0
    disk_id: Optional[int] = None
    start: float = 0.0
    end: float = math.inf
    extra_s: float = 0.0

    def __post_init__(self):
        if self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1: {self.slowdown}")
        if self.extra_s < 0.0:
            raise ValueError(f"extra_s must be >= 0: {self.extra_s}")

    def active(self, disk_id: int, now: float) -> bool:
        """Is this profile inflating ``disk_id`` at time ``now``?"""
        return ((self.disk_id is None or self.disk_id == disk_id)
                and self.start <= now < self.end)


@dataclass(frozen=True)
class FaultOutcome:
    """What the plan decided for one attempt of one request.

    ``error`` is the exception to fail the attempt with (``None`` when
    the attempt passes). ``slowdown``/``extra_s`` apply when it passes:
    multiply the observed service time, then add the flat penalty.
    """

    error: Optional[DeviceError] = None
    slowdown: float = 1.0
    extra_s: float = 0.0

    @property
    def clean(self) -> bool:
        """True when the attempt passes through entirely unmodified."""
        return (self.error is None and self.slowdown == 1.0
                and self.extra_s == 0.0)


#: The all-clear outcome, shared (plans are evaluated per request).
_CLEAN = FaultOutcome()


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative fault schedule over a device's disks.

    Compose rules freely; evaluation order is deterministic: disk death
    (permanent, dominates) → media defects → probabilistic faults →
    straggler inflation. ``predicate`` is an escape hatch for tests: a
    callable ``(request) -> bool`` whose matches fail with
    ``predicate_transient`` deciding the error class.
    """

    seed: int = 0
    media: Tuple[MediaFault, ...] = ()
    random_faults: Tuple[RandomFaults, ...] = ()
    deaths: Tuple[DiskDeath, ...] = ()
    stragglers: Tuple[StragglerProfile, ...] = ()
    predicate: Optional[Callable[[IORequest], bool]] = field(
        default=None, compare=False)
    predicate_transient: bool = False

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_predicate(cls, should_fail: Callable[[IORequest], bool],
                       transient: bool = False) -> "FaultPlan":
        """The legacy test-wrapper shape: fail whatever matches."""
        return cls(predicate=should_fail, predicate_transient=transient)

    @property
    def dead_disks_at_start(self) -> Tuple[int, ...]:
        """Disks already dead at ``t=0`` (degraded-from-boot runs)."""
        return tuple(sorted(d.disk_id for d in self.deaths if d.at <= 0.0))

    def death_time(self, disk_id: int) -> float:
        """When ``disk_id`` dies (``inf`` = never)."""
        times = [d.at for d in self.deaths if d.disk_id == disk_id]
        return min(times) if times else math.inf

    # -- evaluation --------------------------------------------------------
    def evaluate(self, request: IORequest, now: float,
                 attempt: int = 0) -> FaultOutcome:
        """Decide one attempt's fate. Pure given (plan, request, time).

        ``attempt`` counts prior attempts of the *same byte range on the
        same disk* (the injector tracks it), so transient rules can fail
        early attempts and pass later ones.
        """
        for death in self.deaths:
            if death.disk_id == request.disk_id and now >= death.at:
                return FaultOutcome(error=DiskDeadError(
                    f"disk {request.disk_id} dead since t={death.at:g} "
                    f"(now={now:g})"))
        for defect in self.media:
            if not defect.matches(request):
                continue
            if not defect.transient:
                return FaultOutcome(error=MediaError(
                    f"permanent media error on disk {defect.disk_id} "
                    f"[{defect.offset}, {defect.offset + defect.size})"))
            if attempt < defect.recover_after:
                return FaultOutcome(error=TransientMediaError(
                    f"transient media error on disk {defect.disk_id} "
                    f"[{defect.offset}, {defect.offset + defect.size}) "
                    f"(attempt {attempt})"))
        for rule in self.random_faults:
            if rule.disk_id is not None \
                    and rule.disk_id != request.disk_id:
                continue
            if rule.probability > 0.0 and _hash01(
                    self.seed, request.disk_id, request.offset,
                    request.size, attempt) < rule.probability:
                return FaultOutcome(error=TransientMediaError(
                    f"probabilistic fault on {request!r} "
                    f"(attempt {attempt})"))
        if self.predicate is not None and self.predicate(request):
            if self.predicate_transient and attempt > 0:
                pass  # transient predicate faults clear on retry
            else:
                cls = (TransientMediaError if self.predicate_transient
                       else MediaError)
                return FaultOutcome(error=cls(
                    f"predicate fault on {request!r}"))
        slowdown = 1.0
        extra = 0.0
        for profile in self.stragglers:
            if profile.active(request.disk_id, now):
                slowdown *= profile.slowdown
                extra += profile.extra_s
        if slowdown == 1.0 and extra == 0.0:
            return _CLEAN
        return FaultOutcome(slowdown=slowdown, extra_s=extra)

    @property
    def empty(self) -> bool:
        """True when the plan can never alter a request."""
        return not (self.media or self.random_faults or self.deaths
                    or self.predicate
                    or any(s.slowdown != 1.0 or s.extra_s
                           for s in self.stragglers))

    def __repr__(self) -> str:
        return (f"<FaultPlan seed={self.seed} media={len(self.media)} "
                f"random={len(self.random_faults)} "
                f"deaths={len(self.deaths)} "
                f"stragglers={len(self.stragglers)}>")
