"""The fault taxonomy shared by injectors and policies.

Every injected failure is a :class:`DeviceError`; the split that
policies care about is *transient* vs *permanent*:

* **Transient** faults (a recoverable media hiccup, a dropped command, a
  per-request probabilistic failure) are worth retrying — the stream
  server's bounded exponential-backoff retry targets exactly these.
* **Permanent** faults (an unrecoverable media defect, a dead disk)
  never heal; retrying wastes a disk's time, so policies surface them
  immediately and degrade around the failed component instead.

:class:`RequestTimeout` is raised by the *server*, not a device: a
request exceeded its per-request deadline (usually because a straggler
device inflated its service time). It is transient — the device is
alive, just slow — so retry policies treat it as retryable.

:class:`AdmissionShedError` is likewise server-raised: the bounded
admission queue was full and the request was shed at the edge before
touching any device. It is transient by construction — the client
should back off for the deterministic-jitter hint in ``retry_after_s``
and resubmit.
"""

from __future__ import annotations

__all__ = [
    "AdmissionShedError",
    "DeviceError",
    "DiskDeadError",
    "MediaError",
    "PermanentDeviceError",
    "RequestTimeout",
    "TransientDeviceError",
    "TransientMediaError",
    "is_transient",
]


class DeviceError(IOError):
    """Base of every injected or policy-raised storage fault."""


class TransientDeviceError(DeviceError):
    """A fault that may not recur: retrying is reasonable."""


class PermanentDeviceError(DeviceError):
    """A fault that will recur on every retry: degrade instead."""


class MediaError(PermanentDeviceError):
    """Unrecoverable media defect over an LBA range."""


class TransientMediaError(TransientDeviceError):
    """Recoverable media error (ECC retry succeeds eventually)."""


class DiskDeadError(PermanentDeviceError):
    """The whole disk stopped responding (death at time *T*)."""


class RequestTimeout(TransientDeviceError):
    """A request missed its per-request deadline (straggler device)."""


class AdmissionShedError(TransientDeviceError):
    """Shed at the server's admission edge; retry after ``retry_after_s``.

    The request never reached a device: the server's in-service limit
    was hit and its bounded waiting queue was full, so the oldest
    waiting request was dropped (FIFO shedding keeps the queue fresh).
    ``retry_after_s`` carries the server's deterministic-jitter backoff
    hint, scaled by dispatch-set load.
    """

    def __init__(self, message: str, retry_after_s: float = 0.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


def is_transient(exc: BaseException) -> bool:
    """Should a retry policy consider ``exc`` retryable?"""
    return isinstance(exc, TransientDeviceError)
