"""Fault injection and degradation: seeded plans, device wrappers.

See DESIGN.md §6 ("Fault model & degradation policies"). The package is
self-contained — it depends only on :mod:`repro.io` and the simulator —
so a :class:`FaultyDevice` can wrap any layer boundary: drive,
controller, node, striped volume, or the whole server's downstream
device.
"""

from repro.faults.device import FaultyDevice, StragglerDevice
from repro.faults.errors import (
    AdmissionShedError,
    DeviceError,
    DiskDeadError,
    MediaError,
    PermanentDeviceError,
    RequestTimeout,
    TransientDeviceError,
    TransientMediaError,
    is_transient,
)
from repro.faults.plan import (
    DiskDeath,
    FaultOutcome,
    FaultPlan,
    MediaFault,
    RandomFaults,
    StragglerProfile,
)

__all__ = [
    "AdmissionShedError",
    "DeviceError",
    "DiskDeath",
    "DiskDeadError",
    "FaultOutcome",
    "FaultPlan",
    "FaultyDevice",
    "MediaError",
    "MediaFault",
    "PermanentDeviceError",
    "RandomFaults",
    "RequestTimeout",
    "StragglerDevice",
    "StragglerProfile",
    "TransientDeviceError",
    "TransientMediaError",
    "is_transient",
]
