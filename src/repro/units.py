"""Size/time units and parsing helpers used across the package.

Conventions (see DESIGN.md §4):

* sizes are integer **bytes**,
* disk addresses are integer **sectors** of 512 bytes at the disk layer and
  bytes at the host API,
* time is float **seconds**.

The paper mixes KBytes/MBytes freely; these helpers keep call sites honest.
"""

from __future__ import annotations

import re
from typing import Union

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "SECTOR_BYTES",
    "MS",
    "US",
    "bytes_to_mb",
    "mb_per_s",
    "parse_size",
    "format_size",
    "format_rate",
    "sectors",
    "sector_bytes",
]

#: One kibibyte. The paper's "KBytes" are binary units (request sizes like
#: 64K, 128K are powers of two).
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

#: Classic 512-byte disk sector, matching the WD800JD era.
SECTOR_BYTES = 512

#: Milliseconds / microseconds expressed in seconds.
MS = 1e-3
US = 1e-6

_SIZE_RE = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>[KMGT]i?B?|B)?\s*$",
    re.IGNORECASE,
)

_UNIT_FACTOR = {
    "": 1,
    "B": 1,
    "K": KiB, "KB": KiB, "KIB": KiB,
    "M": MiB, "MB": MiB, "MIB": MiB,
    "G": GiB, "GB": GiB, "GIB": GiB,
    "T": 1024 * GiB, "TB": 1024 * GiB, "TIB": 1024 * GiB,
}


def parse_size(text: Union[str, int]) -> int:
    """Parse ``"64K"``, ``"8M"``, ``"1.5G"`` or a plain int into bytes.

    >>> parse_size("64K")
    65536
    >>> parse_size(4096)
    4096
    """
    if isinstance(text, int):
        if text < 0:
            raise ValueError(f"negative size: {text}")
        return text
    match = _SIZE_RE.match(text)
    if not match:
        raise ValueError(f"cannot parse size {text!r}")
    number = float(match.group("num"))
    unit = (match.group("unit") or "").upper()
    factor = _UNIT_FACTOR.get(unit)
    if factor is None:
        raise ValueError(f"unknown size unit in {text!r}")
    result = number * factor
    if result != int(result):
        raise ValueError(f"size {text!r} is not a whole number of bytes")
    return int(result)


def format_size(nbytes: int) -> str:
    """Human-readable binary size: 65536 -> '64K'."""
    if nbytes < 0:
        raise ValueError(f"negative size: {nbytes}")
    for factor, suffix in ((GiB, "G"), (MiB, "M"), (KiB, "K")):
        if nbytes >= factor and nbytes % factor == 0:
            return f"{nbytes // factor}{suffix}"
        if nbytes >= factor:
            return f"{nbytes / factor:.1f}{suffix}"
    return f"{nbytes}B"


def bytes_to_mb(nbytes: float) -> float:
    """Bytes → MBytes (binary), the unit the paper's y-axes use."""
    return nbytes / MiB


def mb_per_s(nbytes: float, elapsed: float) -> float:
    """Throughput in MBytes/s over ``elapsed`` seconds."""
    return bytes_to_mb(nbytes) / elapsed if elapsed > 0 else 0.0


def format_rate(bytes_per_second: float) -> str:
    """Human-readable rate: 52428800 -> '50.0 MB/s'."""
    return f"{bytes_to_mb(bytes_per_second):.1f} MB/s"


def sectors(nbytes: int) -> int:
    """Bytes → whole sectors; rejects unaligned sizes.

    Disk-layer code requires sector alignment so that cache-segment and
    geometry arithmetic stays exact.
    """
    if nbytes % SECTOR_BYTES:
        raise ValueError(f"{nbytes} bytes is not sector-aligned")
    return nbytes // SECTOR_BYTES


def sector_bytes(nsectors: int) -> int:
    """Sectors → bytes."""
    if nsectors < 0:
        raise ValueError(f"negative sector count: {nsectors}")
    return nsectors * SECTOR_BYTES
