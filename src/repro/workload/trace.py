"""Trace-driven workloads: record and replay request streams.

Records are plain tuples, serialised one-per-line as CSV
(``time,kind,disk,offset,size,stream``), so traces are diffable and easy
to synthesise by hand or from other tools. The replayer issues each
request at its recorded time (open-loop) or as fast as dependencies
allow (closed-loop, honouring per-stream ordering).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from typing import IO, Iterable, List, Optional

from repro.io import BlockDevice, IOKind, IORequest
from repro.sim import Simulator
from repro.sim.stats import LatencySampler

__all__ = ["TraceRecordEntry", "TraceReplayer", "load_trace",
           "save_trace", "record_fleet_trace"]


@dataclass(frozen=True)
class TraceRecordEntry:
    """One traced request."""

    time: float
    kind: IOKind
    disk_id: int
    offset: int
    size: int
    stream_id: Optional[int] = None

    def to_request(self) -> IORequest:
        """Materialise as a fresh request object."""
        return IORequest(kind=self.kind, disk_id=self.disk_id,
                         offset=self.offset, size=self.size,
                         stream_id=self.stream_id)


def save_trace(entries: Iterable[TraceRecordEntry], stream: IO[str]) -> int:
    """Write entries as CSV lines; returns the count written."""
    writer = csv.writer(stream)
    count = 0
    for entry in entries:
        writer.writerow([f"{entry.time:.9f}", entry.kind.value,
                         entry.disk_id, entry.offset, entry.size,
                         "" if entry.stream_id is None
                         else entry.stream_id])
        count += 1
    return count


def load_trace(stream: IO[str]) -> List[TraceRecordEntry]:
    """Parse CSV lines back into entries (sorted by time)."""
    entries = []
    for row in csv.reader(stream):
        if not row or row[0].startswith("#"):
            continue
        if len(row) != 6:
            raise ValueError(f"malformed trace row: {row!r}")
        time_s, kind, disk, offset, size, stream_id = row
        entries.append(TraceRecordEntry(
            time=float(time_s), kind=IOKind(kind), disk_id=int(disk),
            offset=int(offset), size=int(size),
            stream_id=None if stream_id == "" else int(stream_id)))
    entries.sort(key=lambda e: e.time)
    return entries


def record_fleet_trace(specs, limit_per_stream: int) -> List[TraceRecordEntry]:
    """Synthesise the trace a :class:`StreamSpec` fleet *would* issue.

    Open-loop approximation: requests are stamped at think-time spacing
    (zero think time → all at t=0 in stream order). Useful for turning a
    parametric workload into a portable artifact.
    """
    if limit_per_stream < 1:
        raise ValueError(f"limit_per_stream must be >= 1: "
                         f"{limit_per_stream}")
    entries = []
    for spec in specs:
        offset = spec.start_offset
        for index in range(limit_per_stream):
            entries.append(TraceRecordEntry(
                time=index * spec.think_time, kind=spec.kind,
                disk_id=spec.disk_id, offset=offset,
                size=spec.request_size, stream_id=spec.stream_id))
            offset += spec.request_size
    entries.sort(key=lambda e: e.time)
    return entries


class TraceReplayer:
    """Replays a trace against a device.

    Modes
    -----
    * ``open_loop=True`` — each request is issued at its recorded time
      regardless of completions (arrival-process replay).
    * ``open_loop=False`` — per-stream closed loop: a stream's next
      request waits for its previous completion, with recorded
      inter-arrival gaps as think time.
    """

    def __init__(self, sim: Simulator, device: BlockDevice,
                 entries: Iterable[TraceRecordEntry],
                 open_loop: bool = True):
        self.sim = sim
        self.device = device
        self.entries = list(entries)
        self.open_loop = open_loop
        self.completed = 0
        self.completed_bytes = 0
        self.latency = LatencySampler("replay")
        self.errors = 0

    def start(self):
        """Spawn the replay processes; returns a joinable event."""
        if self.open_loop:
            processes = [self.sim.process(self._issue_at(entry),
                                          name="replay.open")
                         for entry in self.entries]
        else:
            by_stream: dict = {}
            for entry in self.entries:
                by_stream.setdefault(entry.stream_id, []).append(entry)
            processes = [self.sim.process(self._closed_loop(stream_entries),
                                          name="replay.closed")
                         for stream_entries in by_stream.values()]
        return self.sim.all_of(processes)

    def _issue_at(self, entry: TraceRecordEntry):
        delay = entry.time - self.sim.now
        if delay > 0:
            yield self.sim.timeout(delay)
        yield from self._issue(entry)

    def _closed_loop(self, entries: List[TraceRecordEntry]):
        previous_time = None
        for entry in entries:
            if previous_time is not None:
                gap = entry.time - previous_time
                if gap > 0:
                    yield self.sim.timeout(gap)
            previous_time = entry.time
            yield from self._issue(entry)

    def _issue(self, entry: TraceRecordEntry):
        request = entry.to_request()
        issued_at = self.sim.now
        try:
            yield self.device.submit(request)
        except Exception:  # noqa: BLE001 - faults are counted, not fatal
            self.errors += 1
            return
        self.completed += 1
        self.completed_bytes += request.size
        self.latency.observe(self.sim.now - issued_at)

    def throughput(self, elapsed: float) -> float:
        """Replayed bytes per second."""
        return self.completed_bytes / elapsed if elapsed > 0 else 0.0
