"""Stream placement: the paper's workload layout.

Section 5: "we distribute the available streams uniformly on the disks:
each stream is placed ``disksize/#streams`` blocks away from the previous
one." Streams issue synchronous fixed-size sequential reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.io import IOKind
from repro.units import KiB, SECTOR_BYTES

__all__ = ["StreamSpec", "uniform_streams"]


@dataclass(frozen=True)
class StreamSpec:
    """One emulated stream.

    Attributes
    ----------
    stream_id:
        Client-side stream identity (drives the classifier and CFQ).
    disk_id:
        Target disk.
    start_offset:
        First byte read.
    request_size:
        Fixed size of every request.
    total_bytes:
        Bytes the stream reads before finishing (``None`` = run until the
        simulation clock stops it).
    outstanding:
        Maximum in-flight requests (the paper uses 1).
    think_time:
        Client-side delay between a completion and the next issue.
    kind:
        READ for the paper's workloads; WRITE supported for extensions.
    """

    stream_id: int
    disk_id: int
    start_offset: int
    request_size: int
    total_bytes: Optional[int] = None
    outstanding: int = 1
    think_time: float = 0.0
    kind: IOKind = IOKind.READ

    def __post_init__(self):
        if self.request_size <= 0 or self.request_size % SECTOR_BYTES:
            raise ValueError(
                f"request_size must be sector-aligned: {self.request_size}")
        if self.start_offset < 0 or self.start_offset % SECTOR_BYTES:
            raise ValueError(
                f"start_offset must be sector-aligned: {self.start_offset}")
        if self.outstanding < 1:
            raise ValueError(f"outstanding must be >= 1: {self.outstanding}")
        if self.think_time < 0:
            raise ValueError(f"negative think_time: {self.think_time}")
        if self.total_bytes is not None and self.total_bytes < 1:
            raise ValueError(f"total_bytes must be >= 1: {self.total_bytes}")


def uniform_streams(num_streams: int, disk_ids: Sequence[int],
                    disk_capacity: int, request_size: int = 64 * KiB,
                    total_bytes: Optional[int] = None,
                    outstanding: int = 1,
                    think_time: float = 0.0) -> List[StreamSpec]:
    """Place ``num_streams`` per *disk*, spaced ``capacity/num_streams``.

    Matches the paper's layout: every disk carries the same stream count,
    streams on a disk are spaced uniformly across its surface, and stream
    ids are globally unique.
    """
    if num_streams < 1:
        raise ValueError(f"num_streams must be >= 1: {num_streams}")
    if not disk_ids:
        raise ValueError("need at least one disk")
    spacing = disk_capacity // num_streams
    spacing -= spacing % request_size
    if spacing < request_size:
        raise ValueError(
            f"{num_streams} streams of {request_size}-byte requests do "
            f"not fit in {disk_capacity} bytes")
    specs: List[StreamSpec] = []
    stream_id = 0
    for disk_id in disk_ids:
        for index in range(num_streams):
            specs.append(StreamSpec(
                stream_id=stream_id,
                disk_id=disk_id,
                start_offset=index * spacing,
                request_size=request_size,
                total_bytes=total_bytes,
                outstanding=outstanding,
                think_time=think_time))
            stream_id += 1
    return specs
