"""Workload generation: sequential streams, clients, xdd, mixed loads."""

from repro.workload.client import ClientFleet, FleetReport, StreamClient
from repro.workload.generators import StreamSpec, uniform_streams
from repro.workload.mixed import random_requests, zipf_requests
from repro.workload.openloop import (
    OpenLoopClient,
    OpenLoopFleet,
    OpenLoopReport,
    poisson_arrivals,
)
from repro.workload.trace import (
    TraceRecordEntry,
    TraceReplayer,
    load_trace,
    record_fleet_trace,
    save_trace,
)
from repro.workload.xdd import XddReport, run_xdd

__all__ = [
    "ClientFleet",
    "FleetReport",
    "OpenLoopClient",
    "OpenLoopFleet",
    "OpenLoopReport",
    "StreamClient",
    "StreamSpec",
    "TraceRecordEntry",
    "TraceReplayer",
    "XddReport",
    "load_trace",
    "poisson_arrivals",
    "random_requests",
    "record_fleet_trace",
    "run_xdd",
    "save_trace",
    "uniform_streams",
    "zipf_requests",
]
