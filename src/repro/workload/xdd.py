"""xdd-style micro-benchmark through the OS stack (Figure 2's workload).

Readers issue fixed-size (default 4 KB) synchronous sequential reads
through a :class:`~repro.host.BufferCache` backed by a scheduler-driven
block layer — the whole Linux path the paper measures with xdd on ext3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.host.buffer_cache import BufferCache
from repro.sim import Simulator
from repro.sim.stats import LatencySampler
from repro.units import KiB

__all__ = ["XddReport", "run_xdd"]


@dataclass
class XddReport:
    """Results of one xdd run."""

    elapsed: float
    total_bytes: int
    num_streams: int
    mean_latency: float

    @property
    def throughput(self) -> float:
        """Aggregate bytes per second."""
        return self.total_bytes / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def throughput_mb(self) -> float:
        """Aggregate MBytes/s."""
        return self.throughput / (1024 * 1024)


def run_xdd(sim: Simulator, cache: BufferCache, num_streams: int,
            disk_id: int = 0, block_size: int = 4 * KiB,
            per_stream_bytes: int = 1024 * KiB,
            spacing: Optional[int] = None,
            duration: Optional[float] = None,
            think_time: float = 0.0,
            settle_blocks: int = 0,
            settle_cap: float = 60.0) -> XddReport:
    """Run ``num_streams`` sequential readers through the buffer cache.

    Streams are spaced ``spacing`` bytes apart (default: device capacity
    divided by stream count, the paper's layout; Figure 5 uses fixed
    1 GByte intervals). ``think_time`` is the client-side turnaround
    between a completed read and the next issue — on a real box this is
    syscall + copy + scheduler wake-up latency, and it grows with the
    number of runnable reader processes; it is the knob that breaks
    anticipation at high stream counts (see fig02's model note).
    """
    if num_streams < 1:
        raise ValueError(f"num_streams must be >= 1: {num_streams}")
    if per_stream_bytes < block_size:
        raise ValueError("per_stream_bytes below one block")
    capacity = cache.device.capacity_bytes
    if spacing is None:
        spacing = capacity // num_streams
        spacing -= spacing % block_size
    if spacing < per_stream_bytes and duration is None:
        raise ValueError(
            f"streams would overlap: spacing {spacing} < "
            f"{per_stream_bytes} bytes per stream")
    progress: List[int] = [0] * num_streams
    latency = LatencySampler("xdd")

    def reader(sim, stream):
        offset = stream * spacing
        end = min(offset + per_stream_bytes, capacity)
        while offset + block_size <= end:
            started = sim.now
            yield cache.read(stream, disk_id, offset, block_size)
            latency.observe(sim.now - started)
            progress[stream] += block_size
            offset += block_size
            if think_time > 0:
                yield sim.timeout(think_time)

    for stream in range(num_streams):
        sim.process(reader(sim, stream), name=f"xdd{stream}")
    if settle_blocks > 0:
        # Warm up past the readahead-window ramp: measure only after
        # every stream has pulled enough blocks for its window to reach
        # steady size.
        target = settle_blocks * block_size
        deadline = sim.now + settle_cap
        while (sim.now < deadline and sim.peek() != float("inf")
               and min(progress) < target):
            sim.run(until=min(sim.now + 0.25, deadline))
    baseline = list(progress)
    start = sim.now
    if duration is not None:
        sim.run(until=start + duration)
    else:
        sim.run()
    elapsed = sim.now - start
    measured = sum(p - b for p, b in zip(progress, baseline))
    return XddReport(elapsed=elapsed, total_bytes=measured,
                     num_streams=num_streams, mean_latency=latency.mean)
