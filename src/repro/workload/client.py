"""Client emulation: synchronous stream readers and fleet orchestration.

Mirrors the paper's measurement methodology (Section 5): each client
emulates streams with a bounded number of outstanding requests, issuing
the next request as soon as a response arrives; throughput is the sum of
per-stream throughputs and response time is measured client-side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro import obs
from repro.io import BlockDevice, IORequest
from repro.sim import Simulator
from repro.sim.stats import LatencySampler
from repro.workload.generators import StreamSpec

__all__ = ["ClientFleet", "FleetReport", "StreamClient"]


class StreamClient:
    """One emulated stream against a block device.

    ``tolerate_errors`` makes the client behave like a media player
    skipping a bad block: a failed request is counted in ``errors`` and
    the stream moves on to its next offset instead of crashing the
    emulation. The default (intolerant) client re-raises, preserving the
    historical fail-loud behaviour of the non-chaos experiments.
    """

    def __init__(self, sim: Simulator, device: BlockDevice,
                 spec: StreamSpec, tolerate_errors: bool = False):
        self.sim = sim
        self.device = device
        self.spec = spec
        self.tolerate_errors = tolerate_errors
        self.errors = 0
        self.completed_bytes = 0
        self.completed_requests = 0
        self.latency = LatencySampler(f"stream{spec.stream_id}")
        self.finished_at: Optional[float] = None
        self._position = spec.start_offset
        self._issued_bytes = 0
        self._bytes_baseline = 0
        # Ambient observability, captured once (zero overhead when off:
        # the hot loop tests one pre-computed boolean).
        self._obs = obs.current()
        self._obs_on = self._obs.enabled

    def reset_stats(self) -> None:
        """Restart latency sampling and the per-stream byte baseline
        (called at the warm-up/measurement boundary)."""
        self.latency = LatencySampler(f"stream{self.spec.stream_id}")
        self._bytes_baseline = self.completed_bytes

    @property
    def measured_bytes(self) -> int:
        """Bytes completed since the last stats reset."""
        return self.completed_bytes - self._bytes_baseline

    def start(self):
        """Spawn the client processes (one per outstanding slot)."""
        processes = [
            self.sim.process(self._run(),
                             name=f"client{self.spec.stream_id}.{slot}")
            for slot in range(self.spec.outstanding)
        ]
        done = self.sim.all_of(processes)
        done.callbacks.append(self._record_finish)
        return done

    def _record_finish(self, _event) -> None:
        self.finished_at = self.sim.now

    def _next_request(self) -> Optional[IORequest]:
        spec = self.spec
        if spec.total_bytes is not None \
                and self._issued_bytes >= spec.total_bytes:
            return None
        if self._position + spec.request_size > self.device.capacity_bytes:
            return None  # ran off the end of the disk
        request = IORequest(kind=spec.kind, disk_id=spec.disk_id,
                            offset=self._position, size=spec.request_size,
                            stream_id=spec.stream_id)
        self._position += spec.request_size
        self._issued_bytes += spec.request_size
        return request

    def _run(self):
        while True:
            request = self._next_request()
            if request is None:
                return
            issued_at = self.sim.now
            span = None
            if self._obs_on:
                # Root a fresh trace per request; every instrumented
                # layer below hangs its phase spans off this one.
                span = self._obs.spans.begin(
                    "request", "client", issued_at,
                    args={"stream": self.spec.stream_id,
                          "offset": request.offset,
                          "size": request.size})
                self._obs.link(request, span)
            try:
                yield self.device.submit(request)
            except Exception as exc:
                if span is not None:
                    span.set_arg("error", type(exc).__name__)
                    self._obs.spans.end(span, self.sim.now)
                if not self.tolerate_errors:
                    raise
                # Skip the bad block: _next_request already advanced
                # the position, so the stream stays sequential.
                self.errors += 1
                continue
            if span is not None:
                self._obs.spans.end(span, self.sim.now)
            self.completed_bytes += request.size
            self.completed_requests += 1
            # Client-side response time (what the paper measures):
            # independent of any layer's stamping.
            self.latency.observe(self.sim.now - issued_at)
            if self.spec.think_time > 0:
                yield self.sim.timeout(self.spec.think_time)


@dataclass
class FleetReport:
    """Aggregate results of a fleet run."""

    elapsed: float
    total_bytes: int
    num_streams: int
    mean_latency: float
    p99_latency: float
    per_stream_bytes: List[int]
    #: Client-visible failed requests (only non-zero for tolerant
    #: fleets running under fault injection).
    total_errors: int = 0

    @property
    def throughput(self) -> float:
        """Aggregate bytes per second."""
        return self.total_bytes / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def throughput_mb(self) -> float:
        """Aggregate MBytes per second (the paper's unit)."""
        return self.throughput / (1024 * 1024)

    @property
    def min_stream_bytes(self) -> int:
        """Progress of the slowest stream (fairness check)."""
        return min(self.per_stream_bytes) if self.per_stream_bytes else 0


class ClientFleet:
    """Run a set of stream specs against a device and report."""

    def __init__(self, sim: Simulator, device: BlockDevice,
                 specs: Sequence[StreamSpec], tolerate_errors: bool = False):
        if not specs:
            raise ValueError("fleet needs at least one stream")
        self.sim = sim
        self.device = device
        self.clients = [
            StreamClient(sim, device, spec, tolerate_errors=tolerate_errors)
            for spec in specs
        ]

    def run(self, duration: Optional[float] = None,
            warmup: float = 0.0, settle_requests: int = 0,
            settle_cap: float = 120.0) -> FleetReport:
        """Run the fleet; returns aggregate metrics.

        With ``duration`` the clock stops there (open-ended streams);
        without it the simulation runs until every stream finishes its
        ``total_bytes``. ``warmup`` excludes an initial window from the
        measurements. ``settle_requests`` extends the warm-up until every
        stream has completed at least that many requests (bounded by
        ``settle_cap`` simulated seconds) — that covers configuration-
        dependent cold-start transients: big-segment initial fill rounds,
        the stream server's three-request detection phase. Latency
        statistics are reset at the measurement boundary.
        """
        for client in self.clients:
            client.start()
        if warmup > 0:
            self.sim.run(until=self.sim.now + warmup)
        if settle_requests > 0:
            deadline = self.sim.now + settle_cap
            while (self.sim.now < deadline
                   and self.sim.peek() != float("inf")
                   and min(c.completed_requests
                           for c in self.clients) < settle_requests):
                self.sim.run(until=min(self.sim.now + 0.25, deadline))
        warmup_bytes = sum(c.completed_bytes for c in self.clients)
        for client in self.clients:
            client.reset_stats()
        start = self.sim.now
        if duration is not None:
            self.sim.run(until=start + duration)
            elapsed = duration
        else:
            self.sim.run()
            # Measure to the last stream's finish, not to heap drain:
            # background housekeeping (server GC countdowns) may keep the
            # clock moving long after the workload completed.
            finishes = [c.finished_at for c in self.clients
                        if c.finished_at is not None]
            end = max(finishes) if finishes else self.sim.now
            elapsed = end - start
        total = sum(c.completed_bytes for c in self.clients) - warmup_bytes
        merged = LatencySampler("fleet")
        for client in self.clients:
            for sample in client.latency._reservoir:
                merged.observe(sample)
        return FleetReport(
            elapsed=elapsed,
            total_bytes=total,
            num_streams=len(self.clients),
            mean_latency=self._mean_latency(),
            p99_latency=merged.percentile(0.99),
            per_stream_bytes=[c.measured_bytes for c in self.clients],
            total_errors=sum(c.errors for c in self.clients))

    def _mean_latency(self) -> float:
        total_samples = sum(c.latency.count for c in self.clients)
        if not total_samples:
            return 0.0
        weighted = sum(c.latency.mean * c.latency.count
                       for c in self.clients)
        return weighted / total_samples
