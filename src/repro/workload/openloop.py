"""Open-loop clients: arrivals that do not wait for completions.

The closed-loop :class:`~repro.workload.client.StreamClient` issues its
next request only after the previous one returns, so an overloaded
server simply cycle-limits the clients — queueing delay and capacity
blur together (ROADMAP: the ``ext-fleet`` 4k/10k populations sit in
exactly this regime). An *open-loop* client issues requests at arrival
times drawn independently of completions — a Poisson process at a
configured rate, or an explicit trace of arrival times — so offered
load can be swept *through* saturation: latency, backlog, and the
server's admission shedding become visible as functions of arrival
rate.

Every arrival is issued fire-and-forget; a collector process awaits
each completion, counting successes, admission sheds
(:class:`~repro.faults.errors.AdmissionShedError` — expected under
overload, always tolerated) and other errors separately. Arrival
times come from a stream-seeded :class:`random.Random`, so a run is
deterministic per ``(seed, stream_id)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro import obs
from repro.faults.errors import AdmissionShedError
from repro.io import BlockDevice, IORequest
from repro.sim import Simulator
from repro.sim.stats import LatencySampler
from repro.workload.generators import StreamSpec

__all__ = [
    "OpenLoopClient",
    "OpenLoopFleet",
    "OpenLoopReport",
    "poisson_arrivals",
]


def poisson_arrivals(rate: float, duration: float, seed: int = 0,
                     start: float = 0.0) -> List[float]:
    """Absolute arrival times of a Poisson process over a window.

    Handy for trace-mode clients and for replaying the exact arrival
    pattern a rate-mode client would generate.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive: {rate}")
    if duration < 0:
        raise ValueError(f"duration must be >= 0: {duration}")
    rng = random.Random(seed)
    times = []
    now = start
    while True:
        now += rng.expovariate(rate)
        if now >= start + duration:
            return times
        times.append(now)


class OpenLoopClient:
    """One open-loop sequential stream against a block device.

    Exactly one of ``rate`` (Poisson arrivals, mean ``rate`` requests
    per second) or ``arrivals`` (explicit absolute arrival times —
    trace mode) must be given. Requests walk the stream's address
    space sequentially, advancing at *issue* time; the client stops
    arriving once ``total_bytes`` (or the device end) is reached.

    Admission sheds are always tolerated — they are the server's
    overload answer, counted in ``shed``. Other failures count in
    ``errors`` and re-raise unless ``tolerate_errors``.
    """

    def __init__(self, sim: Simulator, device: BlockDevice,
                 spec: StreamSpec, rate: Optional[float] = None,
                 arrivals: Optional[Sequence[float]] = None,
                 seed: int = 0, tolerate_errors: bool = False):
        if (rate is None) == (arrivals is None):
            raise ValueError("exactly one of rate/arrivals required")
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be positive: {rate}")
        self.sim = sim
        self.device = device
        self.spec = spec
        self.tolerate_errors = tolerate_errors
        self._rate = rate
        self._trace = list(arrivals) if arrivals is not None else None
        #: Per-(seed, stream) RNG so fleets are deterministic and
        #: streams are independent.
        self._rng = random.Random(seed * 1_000_003 + spec.stream_id)
        self.issued = 0
        self.completed = 0
        self.shed = 0
        self.errors = 0
        self.in_flight = 0
        self.completed_bytes = 0
        self.latency = LatencySampler(f"openloop{spec.stream_id}")
        self._position = spec.start_offset
        self._issued_bytes = 0
        self._issued_base = 0
        self._completed_base = 0
        self._shed_base = 0
        self._errors_base = 0
        self._bytes_base = 0
        self._obs = obs.current()
        self._obs_on = self._obs.enabled

    def reset_stats(self) -> None:
        """Restart sampling at the warm-up/measurement boundary."""
        self.latency = LatencySampler(f"openloop{self.spec.stream_id}")
        self._issued_base = self.issued
        self._completed_base = self.completed
        self._shed_base = self.shed
        self._errors_base = self.errors
        self._bytes_base = self.completed_bytes

    @property
    def measured_issued(self) -> int:
        return self.issued - self._issued_base

    @property
    def measured_completed(self) -> int:
        return self.completed - self._completed_base

    @property
    def measured_shed(self) -> int:
        return self.shed - self._shed_base

    @property
    def measured_errors(self) -> int:
        return self.errors - self._errors_base

    @property
    def measured_bytes(self) -> int:
        return self.completed_bytes - self._bytes_base

    def start(self):
        """Spawn the arrival process."""
        return self.sim.process(
            self._run(), name=f"openloop{self.spec.stream_id}.arrive")

    def _next_request(self) -> Optional[IORequest]:
        spec = self.spec
        if spec.total_bytes is not None \
                and self._issued_bytes >= spec.total_bytes:
            return None
        if self._position + spec.request_size > self.device.capacity_bytes:
            return None
        request = IORequest(kind=spec.kind, disk_id=spec.disk_id,
                            offset=self._position, size=spec.request_size,
                            stream_id=spec.stream_id)
        self._position += spec.request_size
        self._issued_bytes += spec.request_size
        return request

    def _run(self):
        if self._trace is not None:
            for when in self._trace:
                delay = when - self.sim.now
                if delay > 0:
                    yield self.sim.timeout(delay)
                if not self._issue():
                    return
            return
        rate = self._rate
        rng = self._rng
        while True:
            yield self.sim.timeout(rng.expovariate(rate))
            if not self._issue():
                return

    def _issue(self) -> bool:
        """Fire one arrival; returns False once the stream is exhausted."""
        request = self._next_request()
        if request is None:
            return False
        self.issued += 1
        issued_at = self.sim.now
        span = None
        if self._obs_on:
            span = self._obs.spans.begin(
                "request", "client", issued_at,
                args={"stream": self.spec.stream_id,
                      "offset": request.offset,
                      "size": request.size})
            self._obs.link(request, span)
        self.in_flight += 1
        completion = self.device.submit(request)
        self.sim.process(
            self._collect(request, completion, span, issued_at),
            name=f"openloop{self.spec.stream_id}.wait")
        return True

    def _collect(self, request: IORequest, completion, span, issued_at):
        try:
            yield completion
        except AdmissionShedError as exc:
            self.in_flight -= 1
            if span is not None:
                span.set_arg("error", type(exc).__name__)
                self._obs.spans.end(span, self.sim.now)
            self.shed += 1
            return
        except Exception as exc:
            self.in_flight -= 1
            if span is not None:
                span.set_arg("error", type(exc).__name__)
                self._obs.spans.end(span, self.sim.now)
            self.errors += 1
            if not self.tolerate_errors:
                raise
            return
        self.in_flight -= 1
        if span is not None:
            self._obs.spans.end(span, self.sim.now)
        self.completed += 1
        self.completed_bytes += request.size
        self.latency.observe(self.sim.now - issued_at)


@dataclass
class OpenLoopReport:
    """Aggregate results of an open-loop fleet run (measured window)."""

    elapsed: float
    num_streams: int
    issued: int
    completed: int
    shed: int
    errors: int
    completed_bytes: int
    #: Requests issued in the window but unresolved when it closed.
    in_flight: int
    mean_latency: float
    p99_latency: float

    @property
    def offered_rate(self) -> float:
        """Arrivals per second the fleet actually generated."""
        return self.issued / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of issued requests shed at the admission edge."""
        return self.shed / self.issued if self.issued else 0.0

    @property
    def throughput(self) -> float:
        """Completed bytes per second."""
        return (self.completed_bytes / self.elapsed
                if self.elapsed > 0 else 0.0)


class OpenLoopFleet:
    """Run open-loop streams at an aggregate arrival rate and report.

    ``rate`` is the fleet-wide offered load in requests per second,
    split evenly across the stream specs (each stream is an
    independent Poisson source, so the superposition is Poisson at
    the full rate).
    """

    def __init__(self, sim: Simulator, device: BlockDevice,
                 specs: Sequence[StreamSpec], rate: float, seed: int = 0,
                 tolerate_errors: bool = False):
        if not specs:
            raise ValueError("fleet needs at least one stream")
        if rate <= 0:
            raise ValueError(f"rate must be positive: {rate}")
        self.sim = sim
        self.device = device
        per_stream = rate / len(specs)
        self.clients = [
            OpenLoopClient(sim, device, spec, rate=per_stream, seed=seed,
                           tolerate_errors=tolerate_errors)
            for spec in specs
        ]

    def run(self, duration: float, warmup: float = 0.0) -> OpenLoopReport:
        """Run warm-up then a measured window; returns window metrics."""
        for client in self.clients:
            client.start()
        if warmup > 0:
            self.sim.run(until=self.sim.now + warmup)
        for client in self.clients:
            client.reset_stats()
        start = self.sim.now
        self.sim.run(until=start + duration)
        merged = LatencySampler("openloop-fleet")
        for client in self.clients:
            for sample in client.latency._reservoir:
                merged.observe(sample)
        total_samples = sum(c.latency.count for c in self.clients)
        mean = 0.0
        if total_samples:
            mean = sum(c.latency.mean * c.latency.count
                       for c in self.clients) / total_samples
        return OpenLoopReport(
            elapsed=duration,
            num_streams=len(self.clients),
            issued=sum(c.measured_issued for c in self.clients),
            completed=sum(c.measured_completed for c in self.clients),
            shed=sum(c.measured_shed for c in self.clients),
            errors=sum(c.measured_errors for c in self.clients),
            completed_bytes=sum(c.measured_bytes for c in self.clients),
            in_flight=sum(c.in_flight for c in self.clients),
            mean_latency=mean,
            p99_latency=merged.percentile(0.99))
