"""Non-sequential workloads: classifier negatives and mixed loads."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.io import IOKind, IORequest
from repro.units import KiB, SECTOR_BYTES

__all__ = ["random_requests", "zipf_requests"]


def _align(offset: int, granule: int) -> int:
    return offset - offset % granule


def random_requests(count: int, disk_ids: Sequence[int], capacity: int,
                    request_size: int = 4 * KiB,
                    seed: Optional[int] = 0,
                    kind: IOKind = IOKind.READ) -> List[IORequest]:
    """Uniformly random requests across the given disks.

    These exercise the classifier's negative path: no region should
    accumulate enough set bits to be declared sequential.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1: {count}")
    if request_size <= 0 or request_size % SECTOR_BYTES:
        raise ValueError(f"bad request_size: {request_size}")
    rng = np.random.default_rng(seed)
    highest = capacity - request_size
    requests = []
    for _ in range(count):
        disk_id = int(rng.choice(disk_ids))
        offset = _align(int(rng.integers(0, highest)), request_size)
        requests.append(IORequest(kind=kind, disk_id=disk_id,
                                  offset=offset, size=request_size))
    return requests


def zipf_requests(count: int, disk_ids: Sequence[int], capacity: int,
                  request_size: int = 4 * KiB, skew: float = 1.2,
                  hot_regions: int = 1000,
                  seed: Optional[int] = 0) -> List[IORequest]:
    """Zipf-skewed requests over ``hot_regions`` fixed hot spots.

    Models metadata/index traffic sharing a disk with streams: heavily
    skewed but not sequential.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1: {count}")
    if skew <= 1.0:
        raise ValueError(f"zipf skew must be > 1: {skew}")
    if hot_regions < 1:
        raise ValueError(f"hot_regions must be >= 1: {hot_regions}")
    rng = np.random.default_rng(seed)
    region_size = capacity // hot_regions
    region_size = max(_align(region_size, request_size), request_size)
    # Shuffle hot-region placement so rank-1 isn't always offset 0.
    placement = rng.permutation(hot_regions)
    requests = []
    for _ in range(count):
        rank = int(rng.zipf(skew))
        region = placement[min(rank - 1, hot_regions - 1)]
        offset = min(int(region) * region_size,
                     capacity - request_size)
        disk_id = int(rng.choice(disk_ids))
        requests.append(IORequest(kind=IOKind.READ, disk_id=disk_id,
                                  offset=_align(offset, request_size),
                                  size=request_size))
    return requests
