"""Mergeable streaming quantile sketch (DDSketch-style log buckets).

The percentile engine of the fleet observability plane (DESIGN.md §10).
``ext-fleet`` at 10k streams produces hundreds of thousands of client
latencies per point; holding them as raw lists and sorting at report
time is O(n) memory and the one remaining per-request cost that grows
with run length. A :class:`QuantileSketch` replaces the list with a
fixed grid of *logarithmic* buckets:

* value ``v > 0`` lands in bucket ``ceil(log_gamma(v))`` where
  ``gamma = (1 + alpha) / (1 - alpha)`` for the configured relative
  accuracy ``alpha``;
* bucket ``i`` covers ``(gamma^(i-1), gamma^i]`` and reports the
  estimate ``2 * gamma^i / (gamma + 1)``, whose relative error against
  any value in the bucket is at most ``alpha`` — the **guaranteed
  relative-error bound**: for every quantile ``q`` with
  ``count >= 1``, ``|quantile(q) - exact_q| <= alpha * exact_q``
  (exact_q taken over the ingested multiset, nearest-rank);
* negative values mirror into a second store keyed on ``|v|``; values
  whose magnitude is below ``min_value`` collapse into an exact zero
  bucket (reported as ``0.0``, which satisfies the bound because the
  caller declared them indistinguishable from zero).

Memory is bounded: the bucket count grows with the *logarithm* of the
data's dynamic range, never with the sample count — at the default
``alpha = 0.01``, latencies spanning 1 ns to 1 hour need ~1500 buckets.
``max_bins`` is a hard backstop: on overflow the lowest-index buckets
collapse together, which can only degrade the *lowest* quantiles (tail
percentiles — the SLO inputs — keep their bound).

Merging is exact bucket-wise addition, so it is **associative and
commutative**: per-stream, per-disk and per-worker sketches compose
into fleet aggregates in any order and any grouping with identical
results (pinned by ``tests/test_obs_sketch.py``). Sketches pickle and
round-trip through :meth:`to_dict`/:meth:`from_dict` (the fabric wire
form) without loss.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["QuantileSketch", "sketch_of"]

#: Default guaranteed relative error (1%).
DEFAULT_ACCURACY = 0.01

#: Magnitudes below this are exactly representable as "zero" — one
#: nanosecond is far below any simulated service time.
DEFAULT_MIN_VALUE = 1e-9

#: Hard per-store bucket-count backstop (collapse threshold). At the
#: default accuracy this supports ~10^35 of dynamic range before any
#: collapse happens, so in practice it never triggers.
DEFAULT_MAX_BINS = 4096


class QuantileSketch:
    """Streaming quantiles with a guaranteed relative-error bound.

    Parameters
    ----------
    relative_accuracy:
        ``alpha`` in (0, 1): every reported quantile is within
        ``alpha`` *relative* error of the exact nearest-rank quantile
        of the ingested values (values below ``min_value`` in
        magnitude count as exactly zero).
    min_value:
        Smallest representable magnitude; smaller values collapse into
        the exact zero bucket.
    max_bins:
        Hard cap on buckets per sign store; overflow collapses the
        lowest-index (smallest-magnitude) buckets together.
    """

    __slots__ = ("relative_accuracy", "min_value", "max_bins", "_gamma",
                 "_inv_log_gamma", "_pos", "_neg", "zeros", "count",
                 "min", "max", "sum")

    def __init__(self, relative_accuracy: float = DEFAULT_ACCURACY,
                 min_value: float = DEFAULT_MIN_VALUE,
                 max_bins: int = DEFAULT_MAX_BINS):
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must be in (0, 1): {relative_accuracy}")
        if min_value <= 0.0:
            raise ValueError(f"min_value must be positive: {min_value}")
        if max_bins < 2:
            raise ValueError(f"max_bins must be >= 2: {max_bins}")
        self.relative_accuracy = relative_accuracy
        self.min_value = min_value
        self.max_bins = max_bins
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._inv_log_gamma = 1.0 / math.log(self._gamma)
        #: bucket index -> count, per sign (keyed on magnitude).
        self._pos: Dict[int, int] = {}
        self._neg: Dict[int, int] = {}
        self.zeros = 0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf
        self.sum = 0.0

    # -- ingest --------------------------------------------------------------

    def _key(self, magnitude: float) -> int:
        return math.ceil(math.log(magnitude) * self._inv_log_gamma)

    def _value(self, key: int) -> float:
        # Midpoint (in relative terms) of (gamma^(k-1), gamma^k].
        return 2.0 * self._gamma ** key / (self._gamma + 1.0)

    def add(self, value: float, count: int = 1) -> None:
        """Ingest ``value`` (``count`` occurrences)."""
        if count <= 0:
            raise ValueError(f"count must be positive: {count}")
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot ingest NaN")
        self.count += count
        self.sum += value * count
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        magnitude = abs(value)
        if magnitude < self.min_value:
            self.zeros += count
            return
        store = self._pos if value > 0.0 else self._neg
        key = self._key(magnitude)
        store[key] = store.get(key, 0) + count
        if len(store) > self.max_bins:
            self._collapse(store)

    def extend(self, values: Iterable[float]) -> None:
        """Ingest every value of an iterable."""
        for value in values:
            self.add(value)

    def _collapse(self, store: Dict[int, int]) -> None:
        """Fold the smallest-magnitude buckets together (backstop).

        Collapsing moves mass *upward* into the lowest retained bucket,
        so only the lowest quantiles lose their bound — the tail
        percentiles the SLO layer reads stay guaranteed.
        """
        keys = sorted(store)
        spill = 0
        while len(keys) > self.max_bins:
            spill += store.pop(keys.pop(0))
        if spill:
            store[keys[0]] = store.get(keys[0], 0) + spill

    # -- read ----------------------------------------------------------------

    @property
    def mean(self) -> float:
        """Arithmetic mean of all ingested values (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile (q in [0, 1]), nearest-rank, within the bound.

        Returns 0.0 for an empty sketch. Results are clamped to the
        exact observed ``[min, max]``, so q=0 and q=1 are exact.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = q * (self.count - 1)
        # Walk stores in ascending value order: most-negative first.
        seen = 0
        estimate: Optional[float] = None
        for key in sorted(self._neg, reverse=True):
            seen += self._neg[key]
            if seen > rank:
                estimate = -self._value(key)
                break
        if estimate is None:
            seen += self.zeros
            if seen > rank:
                estimate = 0.0
        if estimate is None:
            for key in sorted(self._pos):
                seen += self._pos[key]
                if seen > rank:
                    estimate = self._value(key)
                    break
        if estimate is None:  # floating slack at q == 1.0
            estimate = self.max
        return min(self.max, max(self.min, estimate))

    def quantiles(self, qs: Iterable[float]) -> List[float]:
        """Batch :meth:`quantile` (one pass per q; qs are few)."""
        return [self.quantile(q) for q in qs]

    # -- compose -------------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch into this one (bucket-wise addition).

        Associative and commutative; both sketches must share the same
        ``relative_accuracy`` and ``min_value`` (their grids must
        align — merging mismatched grids would silently void the
        error bound, so it raises instead).
        """
        if (other.relative_accuracy != self.relative_accuracy
                or other.min_value != self.min_value):
            raise ValueError(
                f"sketch grids differ: alpha {self.relative_accuracy} vs "
                f"{other.relative_accuracy}, min_value {self.min_value} "
                f"vs {other.min_value}")
        for key, count in other._pos.items():
            self._pos[key] = self._pos.get(key, 0) + count
        for key, count in other._neg.items():
            self._neg[key] = self._neg.get(key, 0) + count
        if len(self._pos) > self.max_bins:
            self._collapse(self._pos)
        if len(self._neg) > self.max_bins:
            self._collapse(self._neg)
        self.zeros += other.zeros
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def copy(self) -> "QuantileSketch":
        """An independent deep copy."""
        clone = QuantileSketch(self.relative_accuracy, self.min_value,
                               self.max_bins)
        clone.merge(self)
        return clone

    # -- wire form -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe state (the fabric/export wire form)."""
        return {
            "alpha": self.relative_accuracy,
            "min_value": self.min_value,
            "max_bins": self.max_bins,
            "count": self.count,
            "zeros": self.zeros,
            "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "pos": sorted(self._pos.items()),
            "neg": sorted(self._neg.items()),
        }

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "QuantileSketch":
        """Rebuild a sketch from :meth:`to_dict` output (lossless)."""
        sketch = cls(relative_accuracy=state["alpha"],
                     min_value=state["min_value"],
                     max_bins=state.get("max_bins", DEFAULT_MAX_BINS))
        sketch.count = int(state["count"])
        sketch.zeros = int(state["zeros"])
        sketch.sum = float(state["sum"])
        if sketch.count:
            sketch.min = float(state["min"])
            sketch.max = float(state["max"])
        sketch._pos = {int(key): int(count)
                       for key, count in state.get("pos", [])}
        sketch._neg = {int(key): int(count)
                       for key, count in state.get("neg", [])}
        return sketch

    # -- pickling (``__slots__`` classes need explicit state) ---------------

    def __getstate__(self) -> Dict[str, Any]:
        return self.to_dict()

    def __setstate__(self, state: Dict[str, Any]) -> None:
        restored = QuantileSketch.from_dict(state)
        for slot in QuantileSketch.__slots__:
            object.__setattr__(self, slot, getattr(restored, slot))

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (f"<QuantileSketch alpha={self.relative_accuracy:g} "
                f"n={self.count} bins={len(self._pos) + len(self._neg)}"
                f" p50={self.quantile(0.5):g}>" if self.count else
                f"<QuantileSketch alpha={self.relative_accuracy:g} empty>")


def sketch_of(values: Iterable[float],
              relative_accuracy: float = DEFAULT_ACCURACY) -> QuantileSketch:
    """Build a sketch over ``values`` in one call (experiment helper)."""
    sketch = QuantileSketch(relative_accuracy=relative_accuracy)
    sketch.extend(values)
    return sketch
