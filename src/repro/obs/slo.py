"""Declarative SLO specs evaluated against traces and telemetry.

The third piece of the fleet observability plane (DESIGN.md §10):
"hedged p99 beats round-robin p99" style guarantees become data, not
ad-hoc CI assertions. A spec is a plain JSON-able dict::

    {
      "name": "ext-fleet-smoke",
      "objectives": [
        {"name": "client p99", "kind": "latency",
         "category": "client", "q": 0.99, "max_ms": 250.0},
        {"name": "tail ceiling", "kind": "series_max",
         "series": "p999 (ms)", "max": 4000.0},
        {"name": "throughput floor", "kind": "series_min",
         "series": "throughput (MB/s)", "min": 1.0, "x": "10000"},
        {"name": "retry burn", "kind": "burn_rate",
         "metric": "server.retries", "window_s": 1.0,
         "max_per_s": 50.0},
      ],
    }

Objective kinds
---------------
``latency``
    Builds a :class:`~repro.obs.sketch.QuantileSketch` over the
    durations of the closed, error-free **root** spans of ``category``
    and compares the ``q``-quantile (milliseconds) against ``max_ms``.
``series_min`` / ``series_max``
    A floor/ceiling on a named result series (throughput floors, shed
    and tail ceilings). Checks every x by default; ``"x"`` restricts
    the objective to one sweep point (keys compare as strings, matching
    the runner's JSON).
``burn_rate``
    Worst sliding-window rate of a telemetry **counter** (see
    :func:`repro.obs.telemetry.max_windowed_rate`) against
    ``max_per_s`` — the classic error-budget burn alarm shape.

Missing data *fails* the objective: a gate that silently passes
because a degraded run produced no samples would defeat the point.

Evaluation is pure read-side analysis — no simulator, no ambient obs
context, no mutation of the inputs — so importing and evaluating SLOs
keeps the zero-overhead-off guarantee untouched (pinned by
``tests/test_obs_slo.py``).

The CLI surface is ``python -m repro.obs.report slo`` (see
:mod:`repro.obs.report`); experiments publish gate specs as module
attributes (``repro.experiments.ext_fleet:SLO_SMOKE``) so CI references
them by name.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, IO, Iterable, List, Mapping, Optional

from repro.obs.sketch import QuantileSketch
from repro.obs.spans import Span
from repro.obs.telemetry import max_windowed_rate

__all__ = [
    "ObjectiveResult",
    "SLOReport",
    "SLOSpec",
    "evaluate",
    "load_spec",
]

#: Default sketch accuracy for latency objectives (documented bound).
LATENCY_ACCURACY = 0.01

_KINDS = ("latency", "series_min", "series_max", "burn_rate")


class SLOSpec:
    """A validated SLO spec: a name plus a list of objectives."""

    def __init__(self, name: str, objectives: List[Dict[str, Any]]):
        self.name = name
        self.objectives = objectives

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "SLOSpec":
        """Validate a raw spec dict; raises ``ValueError`` on nonsense."""
        name = raw.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError("SLO spec needs a non-empty 'name'")
        objectives = raw.get("objectives")
        if not isinstance(objectives, (list, tuple)) or not objectives:
            raise ValueError(
                f"SLO spec {name!r} needs a non-empty 'objectives' list")
        validated = []
        for index, objective in enumerate(objectives):
            where = f"{name!r} objective #{index}"
            if not isinstance(objective, Mapping):
                raise ValueError(f"{where}: not an object")
            kind = objective.get("kind")
            if kind not in _KINDS:
                raise ValueError(
                    f"{where}: kind must be one of {_KINDS}, got {kind!r}")
            checked = dict(objective)
            checked.setdefault("name", f"{kind}#{index}")
            if kind == "latency":
                q = checked.get("q")
                if not isinstance(q, (int, float)) or not 0.0 <= q <= 1.0:
                    raise ValueError(f"{where}: latency needs q in [0, 1]")
                if not isinstance(checked.get("category"), str):
                    raise ValueError(f"{where}: latency needs a category")
                _require_number(checked, "max_ms", where)
            elif kind in ("series_min", "series_max"):
                if not isinstance(checked.get("series"), str):
                    raise ValueError(f"{where}: needs a 'series' label")
                bound = "min" if kind == "series_min" else "max"
                _require_number(checked, bound, where)
            else:  # burn_rate
                if not isinstance(checked.get("metric"), str):
                    raise ValueError(f"{where}: burn_rate needs a metric")
                _require_number(checked, "window_s", where)
                _require_number(checked, "max_per_s", where)
            validated.append(checked)
        return cls(name, validated)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "objectives": list(self.objectives)}

    def __repr__(self) -> str:
        return f"<SLOSpec {self.name!r} objectives={len(self.objectives)}>"


def _require_number(objective: Dict[str, Any], key: str,
                    where: str) -> None:
    if not isinstance(objective.get(key), (int, float)):
        raise ValueError(f"{where}: needs numeric {key!r}")


def load_spec(ref: str) -> SLOSpec:
    """Resolve an SLO spec reference: a JSON file path or
    ``module:ATTRIBUTE`` naming a spec dict published by an experiment
    (e.g. ``repro.experiments.ext_fleet:SLO_SMOKE``)."""
    if ":" in ref and not _looks_like_path(ref):
        module_name, _, attribute = ref.partition(":")
        import importlib
        module = importlib.import_module(module_name)
        try:
            raw = getattr(module, attribute)
        except AttributeError:
            raise ValueError(
                f"{module_name} has no SLO spec {attribute!r}") from None
        return SLOSpec.from_dict(raw)
    with open(ref, "r", encoding="utf-8") as handle:
        return SLOSpec.from_dict(json.load(handle))


def _looks_like_path(ref: str) -> bool:
    import os
    return os.sep in ref or ref.endswith(".json") or os.path.exists(ref)


@dataclass
class ObjectiveResult:
    """One evaluated objective: measured vs target."""

    name: str
    kind: str
    measured: Optional[float]
    target: float
    ok: bool
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "kind": self.kind,
                "measured": self.measured, "target": self.target,
                "ok": self.ok, "detail": self.detail}


class SLOReport:
    """Evaluation outcome: per-objective rows plus a pass/fail verdict."""

    def __init__(self, spec: SLOSpec, results: List[ObjectiveResult]):
        self.spec = spec
        self.results = results

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def violations(self) -> List[ObjectiveResult]:
        return [result for result in self.results if not result.ok]

    def to_dict(self) -> Dict[str, Any]:
        return {"slo": self.spec.name, "ok": self.ok,
                "objectives": [r.to_dict() for r in self.results]}

    def render(self, out: IO[str]) -> None:
        """Human-readable verdict table."""
        verdict = "OK" if self.ok else "VIOLATED"
        out.write(f"SLO {self.spec.name}: {verdict} "
                  f"({len(self.results)} objectives, "
                  f"{len(self.violations)} violated)\n")
        width = max((len(r.name) for r in self.results), default=4)
        for result in self.results:
            measured = ("n/a" if result.measured is None
                        else f"{result.measured:.3f}")
            mark = "ok  " if result.ok else "FAIL"
            detail = f"  [{result.detail}]" if result.detail else ""
            out.write(f"  {mark} {result.name:<{width}} "
                      f"{result.kind:<10} measured={measured} "
                      f"target={result.target:g}{detail}\n")


def evaluate(spec: SLOSpec, spans: Optional[Iterable[Span]] = None,
             series: Optional[Mapping[str, Mapping[Any, float]]] = None,
             telemetry: Optional[Iterable[Mapping[str, Any]]] = None,
             relative_accuracy: float = LATENCY_ACCURACY) -> SLOReport:
    """Evaluate every objective of ``spec`` against the given evidence.

    ``spans`` feeds ``latency`` objectives, ``series`` (a
    ``{label: {x: y}}`` map, the runner's JSON shape) feeds
    ``series_min``/``series_max``, and ``telemetry`` (an iterable of
    ``{"name", "kind", "samples"}`` records, the JSONL shape) feeds
    ``burn_rate``. Evidence kinds an objective does not use may be
    omitted; an objective whose evidence is missing **fails**.
    """
    span_list = list(spans) if spans is not None else []
    series_map = dict(series) if series is not None else {}
    metric_samples: Dict[str, List[List[float]]] = {}
    for record in telemetry or []:
        metric_samples[record["name"]] = list(record.get("samples", []))

    sketches: Dict[str, QuantileSketch] = {}
    results: List[ObjectiveResult] = []
    for objective in spec.objectives:
        kind = objective["kind"]
        if kind == "latency":
            results.append(_eval_latency(objective, span_list, sketches,
                                         relative_accuracy))
        elif kind in ("series_min", "series_max"):
            results.append(_eval_series(objective, series_map))
        else:
            results.append(_eval_burn_rate(objective, metric_samples))
    return SLOReport(spec, results)


def _latency_sketch(category: str, spans: List[Span],
                    sketches: Dict[str, QuantileSketch],
                    relative_accuracy: float) -> QuantileSketch:
    """Sketch of root-span durations for one category (memoised —
    several objectives usually target the same category)."""
    sketch = sketches.get(category)
    if sketch is None:
        sketch = QuantileSketch(relative_accuracy=relative_accuracy)
        for span in spans:
            if (span.parent_id is None and span.category == category
                    and span.end is not None
                    and not (span.args and "error" in span.args)):
                sketch.add(span.duration)
        sketches[category] = sketch
    return sketch


def _eval_latency(objective: Dict[str, Any], spans: List[Span],
                  sketches: Dict[str, QuantileSketch],
                  relative_accuracy: float) -> ObjectiveResult:
    category = objective["category"]
    target = float(objective["max_ms"])
    sketch = _latency_sketch(category, spans, sketches,
                             relative_accuracy)
    if sketch.count == 0:
        return ObjectiveResult(
            objective["name"], "latency", None, target, False,
            f"no closed error-free root spans of category "
            f"{category!r}")
    measured = sketch.quantile(float(objective["q"])) * 1e3
    return ObjectiveResult(
        objective["name"], "latency", measured, target,
        measured <= target,
        f"p{float(objective['q']) * 100:g} of {sketch.count} samples "
        f"(±{relative_accuracy * 100:g}%)")


def _eval_series(objective: Dict[str, Any],
                 series_map: Mapping[str, Mapping[Any, float]]
                 ) -> ObjectiveResult:
    kind = objective["kind"]
    label = objective["series"]
    floor = kind == "series_min"
    target = float(objective["min" if floor else "max"])
    points = series_map.get(label)
    if not points:
        return ObjectiveResult(objective["name"], kind, None, target,
                               False, f"series {label!r} missing/empty")
    at = objective.get("x")
    if at is not None:
        # Runner JSON stringifies x keys while in-process series keep
        # their native ints; normalise both sides through str so a spec
        # works unchanged against either source.
        value = points.get(at)
        if value is None:
            value = {str(key): point
                     for key, point in points.items()}.get(str(at))
        if value is None:
            return ObjectiveResult(
                objective["name"], kind, None, target, False,
                f"series {label!r} has no point x={at!r}")
        chosen = [float(value)]
        where = f"at x={at}"
    else:
        chosen = [float(v) for v in points.values()]
        where = f"over {len(chosen)} points"
    measured = min(chosen) if floor else max(chosen)
    ok = measured >= target if floor else measured <= target
    return ObjectiveResult(objective["name"], kind, measured, target,
                           ok, f"{'min' if floor else 'max'} {where}")


def _eval_burn_rate(objective: Dict[str, Any],
                    metric_samples: Mapping[str, List[List[float]]]
                    ) -> ObjectiveResult:
    metric = objective["metric"]
    target = float(objective["max_per_s"])
    samples = metric_samples.get(metric)
    if not samples:
        return ObjectiveResult(objective["name"], "burn_rate", None,
                               target, False,
                               f"metric {metric!r} missing/empty")
    window = float(objective["window_s"])
    measured = max_windowed_rate(
        [(float(t), float(v)) for t, v in samples], window)
    return ObjectiveResult(
        objective["name"], "burn_rate", measured, target,
        measured <= target,
        f"worst {window:g}s window over {len(samples)} samples")
