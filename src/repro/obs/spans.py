"""Request-lifecycle spans: the causal skeleton of a traced run.

A :class:`Span` is one named, timed phase of work attributed to a trace
(one client request, one read-ahead fetch, ...). Spans form trees via
``parent_id``; the instrumented layers open **phase** spans that tile
their parent exactly — a client request's direct children partition the
interval ``[root.start, root.end]`` with no gaps or overlaps, which is
what lets :func:`repro.obs.attribution.attribute` decompose any
request latency into queue / seek / rotation / transfer / staging
components without ad-hoc accounting (pinned by
``tests/test_obs_spans.py``).

Recording is pure bookkeeping: opening or closing a span never creates
simulator events, never consumes randomness and never mutates model
state, so a traced run's simulated results are bit-identical to an
untraced run (pinned by ``tests/test_obs_overhead.py``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["Span", "SpanRecorder", "span_trees"]


class Span:
    """One timed phase of work inside a trace.

    ``end`` stays ``None`` while the span is open; instants are spans
    with ``end == start``. ``args`` is a small free-form payload
    (request ids, byte counts, error strings) — keep it JSON-friendly.
    """

    __slots__ = ("span_id", "trace_id", "parent_id", "name", "category",
                 "start", "end", "args")

    def __init__(self, span_id: int, trace_id: int,
                 parent_id: Optional[int], name: str, category: str,
                 start: float, args: Optional[Dict[str, Any]] = None):
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.start = start
        self.end: Optional[float] = None
        self.args = args

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set_arg(self, key: str, value: Any) -> None:
        """Attach one payload entry (creates the dict lazily)."""
        if self.args is None:
            self.args = {}
        self.args[key] = value

    def __repr__(self) -> str:
        state = "open" if self.end is None else f"{self.duration * 1e3:.3f}ms"
        return (f"<Span#{self.span_id} {self.name} trace={self.trace_id} "
                f"parent={self.parent_id} {state}>")


class SpanRecorder:
    """Bounded append-only store of spans for one traced run.

    Parameters
    ----------
    capacity:
        Maximum spans retained. Once full, *new* spans are counted in
        ``dropped`` and discarded (the retained prefix keeps its
        causality intact — dropping old spans would orphan children).
        ``None`` keeps everything; only use unbounded capacity in tests.
    reserved:
        Optional per-category slot quotas, e.g. ``{"client": 50_000}``.
        A span of a reserved category consumes its category's quota
        first and only competes for the shared pool (``capacity`` minus
        the sum of all quotas) once the quota is exhausted. Long traced
        runs use this to keep every client root span — the thing
        percentile reporting needs — while high-volume disk-phase spans
        are the ones shed at capacity. Per-category shed counts land in
        ``dropped_by_category``.
    """

    def __init__(self, capacity: Optional[int] = 1_000_000,
                 reserved: Optional[Dict[str, int]] = None):
        self.capacity = capacity
        self.reserved = dict(reserved) if reserved else None
        if self.reserved is not None:
            if any(quota < 0 for quota in self.reserved.values()):
                raise ValueError(f"negative span quota: {self.reserved}")
            self._quota_left = dict(self.reserved)
            reserve_total = sum(self.reserved.values())
            if capacity is not None and reserve_total > capacity:
                raise ValueError(
                    f"span quotas {reserve_total} exceed capacity "
                    f"{capacity}")
        else:
            self._quota_left = None
            reserve_total = 0
        #: Slots not reserved for any category (None = unbounded).
        self._shared_cap = (None if capacity is None
                            else capacity - reserve_total)
        self._shared_used = 0
        self.spans: List[Span] = []
        self.dropped = 0
        self.dropped_by_category: Dict[str, int] = {}
        self._next_span = 1
        self._next_trace = 1

    # -- recording ----------------------------------------------------------
    def begin(self, name: str, category: str, start: float,
              trace_id: Optional[int] = None,
              parent_id: Optional[int] = None,
              args: Optional[Dict[str, Any]] = None) -> Span:
        """Open a span; without ``trace_id`` it roots a new trace."""
        span_id = self._next_span
        self._next_span = span_id + 1
        if trace_id is None:
            trace_id = self._next_trace
            self._next_trace = trace_id + 1
        span = Span(span_id, trace_id, parent_id, name, category, start,
                    args)
        if self._retain(category):
            self.spans.append(span)
        else:
            self.dropped += 1
            self.dropped_by_category[category] = \
                self.dropped_by_category.get(category, 0) + 1
        return span

    def _retain(self, category: str) -> bool:
        """Take a slot for one span of ``category`` if any is left."""
        if self.capacity is None:
            return True
        quota_left = self._quota_left
        if quota_left is not None:
            left = quota_left.get(category)
            if left:
                quota_left[category] = left - 1
                return True
        if self._shared_used < self._shared_cap:
            self._shared_used += 1
            return True
        return False

    def end(self, span: Span, end: float) -> None:
        """Close ``span`` at time ``end``."""
        span.end = end

    def instant(self, name: str, category: str, now: float,
                trace_id: Optional[int] = None,
                parent_id: Optional[int] = None,
                args: Optional[Dict[str, Any]] = None) -> Span:
        """Record a zero-duration marker (retry, quarantine, GC cycle)."""
        span = self.begin(name, category, now, trace_id=trace_id,
                          parent_id=parent_id, args=args)
        span.end = now
        return span

    def close_open(self, now: float) -> int:
        """Close every still-open span at ``now`` (end-of-run flush).

        Returns the number of spans closed; exporters call this so a
        truncated run still produces a valid Chrome trace.
        """
        closed = 0
        for span in self.spans:
            if span.end is None:
                span.end = now
                span.set_arg("truncated", True)
                closed += 1
        return closed

    # -- cross-process merge (DESIGN.md §10) ---------------------------------
    def pack(self) -> List[list]:
        """Retained spans as compact JSON-safe records for the wire.

        One record per span: ``[span_id, trace_id, parent_id, name,
        category, start, end, args]``. Recording order is preserved,
        which guarantees parents precede their children (a child span
        is always opened after its parent) — :meth:`ingest` relies on
        that for single-pass id remapping.
        """
        return [[span.span_id, span.trace_id, span.parent_id, span.name,
                 span.category, span.start, span.end, span.args]
                for span in self.spans]

    def ingest(self, records: Iterable[list],
               worker: Optional[int] = None) -> int:
        """Merge packed spans from another recorder into this one.

        Every ingested span gets fresh span/trace ids from this
        recorder's counters (the sender's ids would collide across
        workers); parent links are remapped in the same single pass,
        which is sound because :meth:`pack` emits parents before
        children. ``worker`` tags each span's args so the merged trace
        stays attributable per worker. Capacity quotas apply exactly as
        for locally recorded spans; returns the number retained.
        """
        span_map: Dict[int, int] = {}
        trace_map: Dict[int, int] = {}
        kept = 0
        for (old_id, old_trace, old_parent, name, category, start, end,
             args) in records:
            span_id = self._next_span
            self._next_span = span_id + 1
            trace_id = trace_map.get(old_trace)
            if trace_id is None:
                trace_id = self._next_trace
                self._next_trace = trace_id + 1
                trace_map[old_trace] = trace_id
            parent_id = (span_map.get(old_parent)
                         if old_parent is not None else None)
            span_map[old_id] = span_id
            args = dict(args) if args else {}
            if worker is not None:
                args["worker"] = worker
            span = Span(span_id, trace_id, parent_id, name, category,
                        start, args or None)
            span.end = end
            if self._retain(category):
                self.spans.append(span)
                kept += 1
            else:
                self.dropped += 1
                self.dropped_by_category[category] = \
                    self.dropped_by_category.get(category, 0) + 1
        return kept

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def by_category(self, category: str) -> List[Span]:
        """Retained spans of one category, in recording order."""
        return [s for s in self.spans if s.category == category]

    def roots(self, category: Optional[str] = None) -> List[Span]:
        """Parentless spans (one per trace), optionally by category."""
        return [s for s in self.spans if s.parent_id is None
                and (category is None or s.category == category)]

    def __repr__(self) -> str:
        shed = (f" shed={self.dropped_by_category}"
                if self.dropped_by_category else "")
        return (f"<SpanRecorder spans={len(self.spans)} "
                f"traces={self._next_trace - 1} "
                f"dropped={self.dropped}{shed}>")


def span_trees(spans: Iterable[Span]) -> Dict[int, Tuple[Span, Dict[int, List[Span]]]]:
    """Group spans into per-trace trees.

    Returns ``{trace_id: (root, children)}`` where ``children`` maps a
    span id to its direct children (recording order). Traces whose root
    was dropped (capacity overflow) are omitted.
    """
    by_trace: Dict[int, List[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    trees: Dict[int, Tuple[Span, Dict[int, List[Span]]]] = {}
    for trace_id, members in by_trace.items():
        root = None
        children: Dict[int, List[Span]] = {}
        for span in members:
            if span.parent_id is None:
                root = span
            else:
                children.setdefault(span.parent_id, []).append(span)
        if root is not None:
            trees[trace_id] = (root, children)
    return trees
