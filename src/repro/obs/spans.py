"""Request-lifecycle spans: the causal skeleton of a traced run.

A :class:`Span` is one named, timed phase of work attributed to a trace
(one client request, one read-ahead fetch, ...). Spans form trees via
``parent_id``; the instrumented layers open **phase** spans that tile
their parent exactly — a client request's direct children partition the
interval ``[root.start, root.end]`` with no gaps or overlaps, which is
what lets :func:`repro.obs.attribution.attribute` decompose any
request latency into queue / seek / rotation / transfer / staging
components without ad-hoc accounting (pinned by
``tests/test_obs_spans.py``).

Recording is pure bookkeeping: opening or closing a span never creates
simulator events, never consumes randomness and never mutates model
state, so a traced run's simulated results are bit-identical to an
untraced run (pinned by ``tests/test_obs_overhead.py``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["Span", "SpanRecorder", "span_trees"]


class Span:
    """One timed phase of work inside a trace.

    ``end`` stays ``None`` while the span is open; instants are spans
    with ``end == start``. ``args`` is a small free-form payload
    (request ids, byte counts, error strings) — keep it JSON-friendly.
    """

    __slots__ = ("span_id", "trace_id", "parent_id", "name", "category",
                 "start", "end", "args")

    def __init__(self, span_id: int, trace_id: int,
                 parent_id: Optional[int], name: str, category: str,
                 start: float, args: Optional[Dict[str, Any]] = None):
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.start = start
        self.end: Optional[float] = None
        self.args = args

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set_arg(self, key: str, value: Any) -> None:
        """Attach one payload entry (creates the dict lazily)."""
        if self.args is None:
            self.args = {}
        self.args[key] = value

    def __repr__(self) -> str:
        state = "open" if self.end is None else f"{self.duration * 1e3:.3f}ms"
        return (f"<Span#{self.span_id} {self.name} trace={self.trace_id} "
                f"parent={self.parent_id} {state}>")


class SpanRecorder:
    """Bounded append-only store of spans for one traced run.

    Parameters
    ----------
    capacity:
        Maximum spans retained. Once full, *new* spans are counted in
        ``dropped`` and discarded (the retained prefix keeps its
        causality intact — dropping old spans would orphan children).
        ``None`` keeps everything; only use unbounded capacity in tests.
    """

    def __init__(self, capacity: Optional[int] = 1_000_000):
        self.capacity = capacity
        self.spans: List[Span] = []
        self.dropped = 0
        self._next_span = 1
        self._next_trace = 1

    # -- recording ----------------------------------------------------------
    def begin(self, name: str, category: str, start: float,
              trace_id: Optional[int] = None,
              parent_id: Optional[int] = None,
              args: Optional[Dict[str, Any]] = None) -> Span:
        """Open a span; without ``trace_id`` it roots a new trace."""
        span_id = self._next_span
        self._next_span = span_id + 1
        if trace_id is None:
            trace_id = self._next_trace
            self._next_trace = trace_id + 1
        span = Span(span_id, trace_id, parent_id, name, category, start,
                    args)
        if self.capacity is not None and len(self.spans) >= self.capacity:
            self.dropped += 1
        else:
            self.spans.append(span)
        return span

    def end(self, span: Span, end: float) -> None:
        """Close ``span`` at time ``end``."""
        span.end = end

    def instant(self, name: str, category: str, now: float,
                trace_id: Optional[int] = None,
                parent_id: Optional[int] = None,
                args: Optional[Dict[str, Any]] = None) -> Span:
        """Record a zero-duration marker (retry, quarantine, GC cycle)."""
        span = self.begin(name, category, now, trace_id=trace_id,
                          parent_id=parent_id, args=args)
        span.end = now
        return span

    def close_open(self, now: float) -> int:
        """Close every still-open span at ``now`` (end-of-run flush).

        Returns the number of spans closed; exporters call this so a
        truncated run still produces a valid Chrome trace.
        """
        closed = 0
        for span in self.spans:
            if span.end is None:
                span.end = now
                span.set_arg("truncated", True)
                closed += 1
        return closed

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def by_category(self, category: str) -> List[Span]:
        """Retained spans of one category, in recording order."""
        return [s for s in self.spans if s.category == category]

    def roots(self, category: Optional[str] = None) -> List[Span]:
        """Parentless spans (one per trace), optionally by category."""
        return [s for s in self.spans if s.parent_id is None
                and (category is None or s.category == category)]

    def __repr__(self) -> str:
        return (f"<SpanRecorder spans={len(self.spans)} "
                f"traces={self._next_trace - 1} dropped={self.dropped}>")


def span_trees(spans: Iterable[Span]) -> Dict[int, Tuple[Span, Dict[int, List[Span]]]]:
    """Group spans into per-trace trees.

    Returns ``{trace_id: (root, children)}`` where ``children`` maps a
    span id to its direct children (recording order). Traces whose root
    was dropped (capacity overflow) are omitted.
    """
    by_trace: Dict[int, List[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    trees: Dict[int, Tuple[Span, Dict[int, List[Span]]]] = {}
    for trace_id, members in by_trace.items():
        root = None
        children: Dict[int, List[Span]] = {}
        for span in members:
            if span.parent_id is None:
                root = span
            else:
                children.setdefault(span.parent_id, []).append(span)
        if root is not None:
            trees[trace_id] = (root, children)
    return trees
