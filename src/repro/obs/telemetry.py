"""Scheduler-driven time-series telemetry.

A :class:`Telemetry` instance is bound to one simulator. Components (or
the convenience ``watch_*`` helpers) register named **gauges** (callables
returning an instantaneous level) and **counters** (callables returning a
monotonic total); a sampler process snapshots every registered metric
into a bounded :class:`TimeSeries` ring buffer at a fixed simulated-time
interval.

The sampler self-terminates like the server's GC loop: when it wakes and
finds the event heap otherwise empty the workload is over, so it stops
rescheduling itself instead of ticking an idle simulation forever.
Sampling reads state but never mutates it, so a telemetry-on run's
simulated *results* equal a telemetry-off run's (the sampler's timeouts
do enter the event heap, which is why telemetry — unlike span recording —
is not part of the bit-identical-trace guarantee; see
``tests/test_obs_overhead.py`` for both pins).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

__all__ = ["Telemetry", "TimeSeries", "max_windowed_rate"]


def max_windowed_rate(samples: List[Tuple[float, float]],
                      window: float) -> float:
    """Worst-case burn rate of a counter over any sliding window.

    ``samples`` are ``(time, monotonic_total)`` rows (a counter
    :meth:`TimeSeries.samples` list, or the same shape read back from a
    JSONL export). For every sample the increase over the trailing
    ``window`` seconds is divided by the actual elapsed span, and the
    maximum such rate is returned — the number an SLO burn-rate ceiling
    compares against (DESIGN.md §10). Returns 0.0 with fewer than two
    samples.
    """
    if window <= 0:
        raise ValueError(f"window must be positive: {window}")
    worst = 0.0
    left = 0
    for right in range(1, len(samples)):
        now, total = samples[right]
        while left < right - 1 and samples[left + 1][0] <= now - window:
            left += 1
        then, base = samples[left]
        elapsed = now - then
        if elapsed > 0:
            rate = (total - base) / elapsed
            if rate > worst:
                worst = rate
    return worst


class TimeSeries:
    """Bounded ring buffer of ``(sim_time, value)`` samples."""

    __slots__ = ("name", "kind", "_samples")

    def __init__(self, name: str, kind: str = "gauge",
                 capacity: Optional[int] = 4096):
        self.name = name
        #: "gauge" (instantaneous level) or "counter" (monotonic total).
        self.kind = kind
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=capacity)

    def record(self, now: float, value: float) -> None:
        """Append one sample (oldest evicted once full)."""
        self._samples.append((now, value))

    def samples(self) -> List[Tuple[float, float]]:
        """Retained ``(time, value)`` samples, oldest first."""
        return list(self._samples)

    @property
    def last(self) -> Optional[Tuple[float, float]]:
        """Most recent sample, or ``None``."""
        return self._samples[-1] if self._samples else None

    def mean(self) -> float:
        """Arithmetic mean of retained sample values (0.0 when empty)."""
        if not self._samples:
            return 0.0
        return sum(v for _t, v in self._samples) / len(self._samples)

    def max(self) -> float:
        """Largest retained sample value (0.0 when empty)."""
        return max((v for _t, v in self._samples), default=0.0)

    def rates(self) -> List[Tuple[float, float]]:
        """Per-interval derivative for counter series.

        Returns ``(interval_end_time, delta/second)`` rows — the reclaim
        or retry *rate* the obs report renders for counters.
        """
        rows: List[Tuple[float, float]] = []
        previous: Optional[Tuple[float, float]] = None
        for now, value in self._samples:
            if previous is not None and now > previous[0]:
                rows.append((now, (value - previous[1])
                             / (now - previous[0])))
            previous = (now, value)
        return rows

    def window_rate(self, window: float) -> float:
        """Worst-case sliding-window rate (see :func:`max_windowed_rate`)."""
        return max_windowed_rate(list(self._samples), window)

    def __len__(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:
        return (f"<TimeSeries {self.name!r} {self.kind} "
                f"n={len(self._samples)}>")


class Telemetry:
    """Periodic sampler of registered metrics on one simulator.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.Simulator`.
    interval:
        Simulated seconds between samples.
    capacity:
        Ring-buffer length per metric.
    """

    def __init__(self, sim: Any, interval: float = 0.05,
                 capacity: Optional[int] = 4096, name: str = "telemetry"):
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        self.sim = sim
        self.interval = interval
        self.capacity = capacity
        self.name = name
        self.series: Dict[str, TimeSeries] = {}
        self._probes: List[Tuple[str, Callable[[], float]]] = []
        self.samples_taken = 0
        self.running = False

    # -- registration -------------------------------------------------------
    def _register(self, name: str, probe: Callable[[], float],
                  kind: str) -> TimeSeries:
        if name in self.series:
            raise ValueError(f"metric already registered: {name}")
        series = TimeSeries(name, kind=kind, capacity=self.capacity)
        self.series[name] = series
        self._probes.append((name, probe))
        return series

    def add_gauge(self, name: str,
                  probe: Callable[[], float]) -> TimeSeries:
        """Register an instantaneous-level metric."""
        return self._register(name, probe, "gauge")

    def add_counter(self, name: str,
                    probe: Callable[[], float]) -> TimeSeries:
        """Register a monotonic-total metric (report renders its rate)."""
        return self._register(name, probe, "counter")

    # -- convenience wiring -------------------------------------------------
    def watch_server(self, server: Any, prefix: str = "server") -> None:
        """Register the stream server's paper-relevant metrics.

        Dispatch-set occupancy and admission backlog, buffered-set bytes,
        mean per-stream read-ahead staging depth, GC reclaim totals, and
        the §6 fault-policy counters (retries, deadline timeouts,
        quarantines, device errors).
        """
        dispatch = server.dispatch
        buffered = server.buffered
        classifier = server.classifier
        stats = server.stats
        self.add_gauge(f"{prefix}.dispatch_occupancy",
                       lambda: dispatch.occupancy)
        self.add_gauge(f"{prefix}.dispatch_waiting",
                       lambda: dispatch.waiting_count)
        self.add_gauge(f"{prefix}.buffered_bytes",
                       lambda: buffered.in_use)
        self.add_gauge(f"{prefix}.live_streams",
                       lambda: classifier.live_streams)
        self.add_gauge(
            f"{prefix}.readahead_depth",
            lambda: (buffered.in_use / classifier.live_streams
                     if classifier.live_streams else 0.0))
        self.add_counter(f"{prefix}.gc_reclaimed_bytes",
                         lambda: server.gc.buffers_reclaimed_bytes)
        self.add_counter(f"{prefix}.gc_cycles", lambda: server.gc.cycles)
        for counter_name in ("retries", "deadline_timeouts",
                             "quarantined_streams", "device_errors",
                             "staged_hits", "direct", "completed"):
            counter = stats.counter(counter_name)
            self.add_counter(f"{prefix}.{counter_name}",
                             lambda c=counter: c.count)

    def watch_drive(self, drive: Any, prefix: Optional[str] = None) -> None:
        """Register a drive's queue depth and busy-time accumulation."""
        label = prefix or f"disk.{drive.name}"
        self.add_gauge(f"{label}.queue_length",
                       lambda: drive.queue_length)
        self.add_counter(f"{label}.busy_time", lambda: drive.busy_time)
        self.add_counter(f"{label}.seeks",
                         lambda: drive.stats.counter("seeks").count)

    def watch_faults(self, device: Any,
                     prefix: Optional[str] = None) -> None:
        """Register a FaultyDevice wrapper's injection counters."""
        label = prefix or f"faults.{device.name}"
        stats = device.stats
        self.add_counter(f"{label}.injected",
                         lambda: stats.counter("injected").count)
        self.add_counter(
            f"{label}.injected_transient",
            lambda: stats.counter("injected_transient").count)
        self.add_counter(f"{label}.straggled",
                         lambda: stats.counter("straggled").count)

    # -- sampling -----------------------------------------------------------
    def sample(self, now: Optional[float] = None) -> None:
        """Snapshot every registered metric immediately."""
        when = self.sim.now if now is None else now
        for name, probe in self._probes:
            self.series[name].record(when, float(probe()))
        self.samples_taken += 1

    def start(self) -> None:
        """Start the sampler process (idempotent)."""
        if self.running:
            return
        self.running = True
        self.sim.process(self._loop(), name=self.name)

    def _loop(self):
        sim = self.sim
        while True:
            self.sample(sim.now)
            if sim.queue_length == 0:
                # Nothing else scheduled: the workload has drained, so
                # stop instead of keeping an idle simulation alive.
                break
            yield sim.timeout(self.interval)
        self.running = False

    def __repr__(self) -> str:
        return (f"<Telemetry {self.name!r} interval={self.interval:g}s "
                f"metrics={len(self.series)} "
                f"samples={self.samples_taken}>")
