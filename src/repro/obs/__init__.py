"""``repro.obs`` — end-to-end request tracing and telemetry.

Three pieces (DESIGN.md §7):

* **Spans** (:mod:`repro.obs.spans`) — request-lifecycle phase spans
  with parent/child causality: client → server (classify / dispatch /
  stage / complete-from-memory) → node → controller → block layer →
  drive (queue / seek / rotate / transfer / cache-hit). Phase spans tile
  their parent, so :mod:`repro.obs.attribution` decomposes any request
  latency exactly.
* **Telemetry** (:mod:`repro.obs.telemetry`) — a scheduler-driven
  sampler snapshotting registered gauges/counters into ring buffers at a
  simulated-time interval.
* **Exporters** (:mod:`repro.obs.export`) — Chrome trace-event JSON
  (Perfetto-viewable), a JSONL event log, a Prometheus-style text dump,
  and the ``python -m repro.obs.report`` summary CLI.

Zero overhead off
-----------------
Observability is *ambient*: instrumented components capture
:func:`current` at construction time. The default context is the
module-level :data:`OBS_OFF` sentinel whose ``enabled`` flag is false,
so every hook in the hot path reduces to one pre-computed boolean test —
no span objects, no dict traffic, no simulator events. The default path
is bit-identical to the uninstrumented stack (pinned by
``tests/test_obs_overhead.py`` and the ``obs_overhead`` bench workload).

Enabling looks like::

    from repro import obs

    with obs.activated(obs.ObsContext(telemetry_interval=0.05)) as ctx:
        sim = Simulator()
        ...build the stack and run the workload...
    ctx.spans.close_open(sim.now)
    export_chrome_trace(ctx, "trace.json")

Span recording never creates simulator events and never consumes
randomness, so even a traced run's simulated series are bit-identical to
an untraced run. Telemetry sampling *does* schedule its own timeouts
(results are unchanged; the kernel event stream is not).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, List, Optional, Tuple

from repro.obs.sketch import QuantileSketch
from repro.obs.spans import Span, SpanRecorder, span_trees
from repro.obs.telemetry import Telemetry, TimeSeries

__all__ = [
    "OBS_OFF",
    "ObsContext",
    "QuantileSketch",
    "Span",
    "SpanRecorder",
    "Telemetry",
    "TimeSeries",
    "activated",
    "current",
    "span_trees",
]

#: Annotation key carrying the (trace_id, span_id) parent reference a
#: layer should hang its spans off. Layers overwrite it as the request
#: descends, so each layer's spans nest under the layer above.
SPAN_KEY = "obs.span"


class _NullObs:
    """The off sentinel: one shared instance, ``enabled`` false.

    Components cache ``current().enabled`` at construction; every hook
    site guards on that boolean, so the sentinel's methods are never on
    the hot path — they exist only so defensive calls are harmless.
    """

    __slots__ = ()
    enabled = False
    spans = None
    telemetry_interval: Optional[float] = None

    def telemetry_for(self, sim: Any) -> None:
        return None

    def __repr__(self) -> str:
        return "<obs OFF>"


#: The module-level no-op sentinel — the default ambient context.
OBS_OFF = _NullObs()


class ObsContext:
    """An enabled observability context: span recorder + telemetry config.

    Parameters
    ----------
    span_capacity:
        Maximum retained spans (overflow counted in ``spans.dropped``).
    span_reserved:
        Optional per-category span quotas, e.g. ``{"client": 50_000}``
        — reserved categories keep recording at capacity while
        unreserved (disk-phase) spans are the ones shed. See
        :class:`~repro.obs.spans.SpanRecorder`.
    telemetry_interval:
        Simulated seconds between telemetry samples; ``None`` disables
        the sampler (spans only).
    telemetry_capacity:
        Ring-buffer length per telemetry metric.
    """

    enabled = True

    def __init__(self, span_capacity: Optional[int] = 1_000_000,
                 telemetry_interval: Optional[float] = None,
                 telemetry_capacity: Optional[int] = 4096,
                 span_reserved: Optional[dict] = None):
        self.spans = SpanRecorder(capacity=span_capacity,
                                  reserved=span_reserved)
        self.telemetry_interval = telemetry_interval
        self.telemetry_capacity = telemetry_capacity
        #: One Telemetry per simulator seen (a sweep builds many sims).
        self.telemetries: List[Tuple[Any, Telemetry]] = []
        #: Telemetry series shipped back by fabric workers (DESIGN.md
        #: §10): ``{"name", "kind", "samples": [[t, v], ...]}`` dicts,
        #: names already prefixed with their worker tag.
        self.remote_series: List[dict] = []

    def telemetry_for(self, sim: Any) -> Optional[Telemetry]:
        """The (lazily created) sampler bound to ``sim``.

        Returns ``None`` when telemetry is disabled; callers guard on
        that, so spans-only tracing schedules nothing.
        """
        if self.telemetry_interval is None:
            return None
        for known_sim, telemetry in self.telemetries:
            if known_sim is sim:
                return telemetry
        telemetry = Telemetry(sim, interval=self.telemetry_interval,
                              capacity=self.telemetry_capacity)
        self.telemetries.append((sim, telemetry))
        return telemetry

    # -- span plumbing shared by the instrumented layers --------------------
    def begin_child(self, request: Any, name: str, category: str,
                    now: float, args: Optional[dict] = None) -> Span:
        """Open a span under the request's current parent reference.

        Without a reference (an uninstrumented caller drove this layer
        directly) the span roots a fresh trace — the tree is simply
        shorter, never broken.
        """
        ref = request.annotations.get(SPAN_KEY)
        if ref is None:
            return self.spans.begin(name, category, now, args=args)
        return self.spans.begin(name, category, now, trace_id=ref[0],
                                parent_id=ref[1], args=args)

    def link(self, request: Any, span: Span) -> None:
        """Make ``span`` the parent for layers below this one."""
        request.annotations[SPAN_KEY] = (span.trace_id, span.span_id)

    def instant_for(self, request: Any, name: str, category: str,
                    now: float, args: Optional[dict] = None) -> Span:
        """Record a zero-duration marker under the request's parent ref."""
        ref = request.annotations.get(SPAN_KEY)
        if ref is None:
            return self.spans.instant(name, category, now, args=args)
        return self.spans.instant(name, category, now, trace_id=ref[0],
                                  parent_id=ref[1], args=args)

    # -- cross-process shipping (DESIGN.md §10) ------------------------------
    def pack_payload(self) -> dict:
        """This context's spans + telemetry as one JSON-safe payload.

        The fabric worker calls this after running a traced point; the
        payload rides back inside the result message's ``obs`` field
        and is merged into the coordinator-side context with
        :meth:`ingest_payload`.
        """
        series = []
        for _, telemetry in self.telemetries:
            for ts in telemetry.series.values():
                series.append({
                    "name": ts.name,
                    "kind": ts.kind,
                    "samples": [[t, v] for t, v in ts.samples()],
                })
        return {
            "spans": self.spans.pack(),
            "dropped": self.spans.dropped,
            "dropped_by_category": dict(self.spans.dropped_by_category),
            "series": series,
        }

    def ingest_payload(self, payload: dict, worker: int) -> int:
        """Merge one worker's :meth:`pack_payload` into this context.

        Spans are remapped onto this context's id space tagged with
        ``worker``; worker-side capacity drops are carried over into
        the local drop counters (so the merged trace reports total
        shed, not just local shed); telemetry series land in
        :attr:`remote_series` under a ``w{worker}.`` name prefix.
        Returns the number of spans retained.
        """
        kept = self.spans.ingest(payload.get("spans") or [], worker=worker)
        self.spans.dropped += payload.get("dropped", 0)
        for category, shed in (payload.get("dropped_by_category")
                               or {}).items():
            self.spans.dropped_by_category[category] = \
                self.spans.dropped_by_category.get(category, 0) + shed
        for series in payload.get("series") or []:
            self.remote_series.append({
                "name": f"w{worker}.{series['name']}",
                "kind": series.get("kind", "gauge"),
                "samples": [tuple(sample)
                            for sample in series.get("samples", [])],
            })
        return kept

    def __repr__(self) -> str:
        return (f"<ObsContext spans={len(self.spans)} "
                f"telemetry={self.telemetry_interval}>")


#: The ambient context captured by components at construction time.
_ACTIVE: Any = OBS_OFF


def current() -> Any:
    """The ambient observability context (default: :data:`OBS_OFF`)."""
    return _ACTIVE


@contextmanager
def activated(context: ObsContext):
    """Make ``context`` ambient for the duration of the ``with`` block.

    Components built inside the block capture it; components built
    outside stay dark. Nesting restores the previous context on exit.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = context
    try:
        yield context
    finally:
        _ACTIVE = previous
