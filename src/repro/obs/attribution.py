"""Latency attribution: decompose request latency from phase spans.

The instrumented layers open **phase** spans that are pairwise disjoint
in time within one client trace (server phases tile the root; device
phases tile the server's direct phase; read-ahead fetches live in their
own traces). Mapping each phase name to a component therefore yields an
exact decomposition::

    latency = queue + seek + rotation + transfer + staging
              + cache-hit + other

with ``other`` the residual the instrumentation does not break out
(host CPU charges, controller admission, bus transfers). This is what
``ext_latency_breakdown`` consumes instead of ad-hoc counter
accounting, and what ``python -m repro.obs.report`` renders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.obs.spans import Span

__all__ = ["Attribution", "COMPONENTS", "PHASE_COMPONENTS", "attribute"]

#: Phase span name → latency component. Names absent from this map
#: (structural spans like ``disk.request``, marks, fetch spans) carry no
#: weight — they would double-count their children.
PHASE_COMPONENTS: Dict[str, str] = {
    "blk.queue": "queue",
    "disk.queue": "queue",
    "disk.seek": "seek",
    "disk.rotate": "rotation",
    "disk.transfer": "transfer",
    "disk.complete": "transfer",
    "disk.cachehit": "cache-hit",
    "disk.wce": "cache-hit",
    "server.stage": "staging",
    "server.dispatchq": "staging",
    "server.copy": "staging",
    "server.memhit": "staging",
    "ctl.port": "queue",
    "fault.straggle": "other",
}

#: Render order for reports.
COMPONENTS = ("queue", "seek", "rotation", "transfer", "staging",
              "cache-hit", "other")

#: Server phases that mean "serviced directly from memory" (§5.5): the
#: staged data was already filled when the request arrived. ``stage``
#: and ``dispatchq`` phases block on an in-flight or future disk fetch,
#: so they belong to the paper's requires-disk-I/O category.
_STAGED_PHASES = frozenset({"server.memhit", "server.copy"})


@dataclass
class Attribution:
    """Aggregate latency decomposition over a set of client traces."""

    requests: int = 0
    total_latency_s: float = 0.0
    #: component → summed seconds over all attributed requests.
    component_s: Dict[str, float] = field(default_factory=dict)
    #: client traces whose server phases were all staging phases.
    staged_requests: int = 0

    def mean_ms(self, component: str) -> float:
        """Mean milliseconds per request spent in ``component``."""
        if not self.requests:
            return 0.0
        return self.component_s.get(component, 0.0) / self.requests * 1e3

    @property
    def mean_latency_ms(self) -> float:
        """Mean end-to-end request latency in milliseconds."""
        if not self.requests:
            return 0.0
        return self.total_latency_s / self.requests * 1e3

    def share(self, component: str) -> float:
        """Fraction of total latency attributed to ``component``."""
        if self.total_latency_s <= 0:
            return 0.0
        return self.component_s.get(component, 0.0) / self.total_latency_s

    @property
    def staged_fraction(self) -> float:
        """Share of requests completed from the buffered set."""
        if not self.requests:
            return 0.0
        return self.staged_requests / self.requests

    def reconciles(self, epsilon: float = 1e-9) -> bool:
        """Do the component sums add back up to total latency?

        ``other`` absorbs the un-instrumented residual by construction,
        so this only fails if phases overlapped (double counting) —
        the invariant ``tests/test_obs_spans.py`` pins.
        """
        assigned = sum(self.component_s.values())
        return assigned <= self.total_latency_s * (1.0 + epsilon) + epsilon

    def __repr__(self) -> str:
        parts = ", ".join(f"{c}={self.mean_ms(c):.3f}ms"
                          for c in COMPONENTS
                          if self.component_s.get(c, 0.0) > 0.0)
        return f"<Attribution n={self.requests} {parts}>"


def attribute(spans: Iterable[Span], category: str = "client",
              since: Optional[float] = None) -> Attribution:
    """Decompose every completed ``category`` root trace in ``spans``.

    ``since`` restricts to traces whose root *completed* at or after
    the given simulated time — the warm-up exclusion used by
    ``ext_latency_breakdown``. Filtering on completion matches the
    counter- and sampler-based measurement this replaces (samples are
    taken when a request finishes), so requests in flight across the
    warm-up boundary still count toward the measured window.
    """
    roots: Dict[int, Span] = {}
    members: Dict[int, List[Span]] = {}
    for span in spans:
        if span.parent_id is None and span.category == category:
            roots[span.trace_id] = span
        members.setdefault(span.trace_id, []).append(span)

    report = Attribution()
    for trace_id, root in roots.items():
        if root.end is None:
            continue  # request still in flight at export time
        if since is not None and root.end < since:
            continue
        report.requests += 1
        report.total_latency_s += root.duration
        staged = True
        saw_server_phase = False
        for span in members[trace_id]:
            if span is root or span.end is None:
                continue
            component = PHASE_COMPONENTS.get(span.name)
            if component is not None:
                report.component_s[component] = (
                    report.component_s.get(component, 0.0) + span.duration)
            if span.category == "server":
                saw_server_phase = True
                if span.name not in _STAGED_PHASES:
                    staged = False
        if staged and saw_server_phase:
            report.staged_requests += 1
    assigned = sum(report.component_s.values())
    if report.total_latency_s > assigned:
        report.component_s["other"] = (
            report.component_s.get("other", 0.0)
            + report.total_latency_s - assigned)
    return report
