"""Exporters: Chrome trace JSON, JSONL event log, Prometheus text.

* :func:`export_chrome_trace` — the Chrome trace-event format (load the
  file in Perfetto / ``chrome://tracing``): one complete (``"X"``) event
  per span, one instant (``"i"``) per marker, one lane (``tid``) per
  trace so a request's phases stack visually.
* :func:`export_jsonl` — a line-delimited event log carrying the same
  spans plus telemetry series and run metadata; the input format of
  ``python -m repro.obs.report``.
* :func:`export_prometheus` — a Prometheus text-format dump of the last
  telemetry sample per metric (plus any stats registries passed in).
* :func:`validate_chrome_trace` — the minimal schema check CI runs on
  every traced smoke figure.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterable, List, Optional, Tuple, Union

from repro.obs.spans import Span

__all__ = [
    "export_chrome_trace",
    "export_jsonl",
    "export_prometheus",
    "read_jsonl",
    "validate_chrome_trace",
]

_US = 1e6  # chrome trace timestamps are microseconds


def _chrome_events(spans: Iterable[Span]) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    for span in spans:
        end = span.end if span.end is not None else span.start
        # Spans ingested from fabric workers carry a "worker" arg; the
        # merged trace maps each worker to its own pid lane so Perfetto
        # groups the fleet by process. Locally recorded spans keep pid 1.
        pid = 1
        if span.args:
            worker = span.args.get("worker")
            if isinstance(worker, int):
                pid = worker + 1
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": span.category,
            "ts": span.start * _US,
            "pid": pid,
            "tid": span.trace_id,
            "id": span.span_id,
        }
        if end == span.start and span.category in ("mark", "fault"):
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = (end - span.start) * _US
        args: Dict[str, Any] = dict(span.args) if span.args else {}
        if span.parent_id is not None:
            args["parent"] = span.parent_id
        if args:
            event["args"] = args
        events.append(event)
    return events


def export_chrome_trace(context: Any, path: Union[str, IO[str]],
                        meta: Optional[Dict[str, Any]] = None
                        ) -> Dict[str, Any]:
    """Write an ``ObsContext``'s spans as Chrome trace-event JSON.

    Returns the payload dict (also what ``validate_chrome_trace``
    checks). ``meta`` lands in ``otherData`` alongside span/drop counts.
    """
    recorder = context.spans
    other: Dict[str, Any] = {
        "spans": len(recorder.spans),
        "dropped": recorder.dropped,
    }
    if meta:
        other.update(meta)
    payload = {
        "traceEvents": _chrome_events(recorder.spans),
        "displayTimeUnit": "ms",
        "otherData": other,
    }
    if isinstance(path, str):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.write("\n")
    else:
        json.dump(payload, path)
    return payload


def validate_chrome_trace(payload: Any) -> List[str]:
    """Minimal schema check; returns a list of violations (empty = ok)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            problems.append(f"{where}: missing name")
        phase = event.get("ph")
        if phase not in ("X", "i"):
            problems.append(f"{where}: ph must be 'X' or 'i', got {phase!r}")
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"{where}: ts must be a number")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append(f"{where}: X event needs dur >= 0")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: {key} must be an int")
        if len(problems) >= 20:
            problems.append("... further violations suppressed")
            break
    return problems


# -- JSONL event log ---------------------------------------------------------

def export_jsonl(context: Any, path: Union[str, IO[str]],
                 meta: Optional[Dict[str, Any]] = None) -> int:
    """Write spans + telemetry series as line-delimited JSON.

    First line is a ``meta`` record (span/drop counts plus caller
    metadata), then one ``span`` line per span, then one ``series`` line
    per telemetry metric. Returns the number of lines written.
    """
    recorder = context.spans
    header: Dict[str, Any] = {
        "type": "meta",
        "spans": len(recorder.spans),
        "dropped": recorder.dropped,
    }
    if meta:
        header.update(meta)
    lines = [json.dumps(header, sort_keys=True)]
    for span in recorder.spans:
        record: Dict[str, Any] = {
            "type": "span",
            "id": span.span_id,
            "trace": span.trace_id,
            "name": span.name,
            "cat": span.category,
            "start": span.start,
        }
        if span.parent_id is not None:
            record["parent"] = span.parent_id
        if span.end is not None:
            record["end"] = span.end
        if span.args:
            record["args"] = span.args
        lines.append(json.dumps(record, sort_keys=True))
    for _sim, telemetry in getattr(context, "telemetries", []):
        for name, series in telemetry.series.items():
            lines.append(json.dumps({
                "type": "series",
                "name": name,
                "kind": series.kind,
                "samples": [[t, v] for t, v in series.samples()],
            }, sort_keys=True))
    for series in getattr(context, "remote_series", None) or []:
        lines.append(json.dumps({
            "type": "series",
            "name": series["name"],
            "kind": series.get("kind", "gauge"),
            "samples": [[t, v] for t, v in series.get("samples", [])],
        }, sort_keys=True))
    text = "\n".join(lines) + "\n"
    if isinstance(path, str):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        path.write(text)
    return len(lines)


def read_jsonl(path: str) -> Tuple[Dict[str, Any], List[Span],
                                   List[Dict[str, Any]]]:
    """Parse a JSONL event log back into ``(meta, spans, series)``.

    Spans come back as real :class:`~repro.obs.spans.Span` objects so
    the report CLI and :func:`repro.obs.attribution.attribute` work on
    exported files exactly as on live recorders.
    """
    meta: Dict[str, Any] = {}
    spans: List[Span] = []
    series: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{line_number}: bad JSON: {exc}") from None
            kind = record.get("type")
            if kind == "meta":
                meta = record
            elif kind == "span":
                span = Span(record["id"], record["trace"],
                            record.get("parent"), record["name"],
                            record["cat"], record["start"],
                            record.get("args"))
                span.end = record.get("end")
                spans.append(span)
            elif kind == "series":
                series.append(record)
    return meta, spans, series


# -- Prometheus text dump ----------------------------------------------------

def _prom_name(name: str) -> str:
    cleaned = "".join(c if c.isalnum() or c == "_" else "_"
                      for c in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return f"repro_{cleaned}"


def export_prometheus(context: Any, path: Union[str, IO[str]],
                      registries: Optional[Dict[str, Any]] = None,
                      extra: Optional[Iterable[Tuple[str, str, float]]]
                      = None) -> int:
    """Write the final telemetry samples in Prometheus text format.

    ``registries`` optionally adds ``{prefix: StatsRegistry}`` snapshots
    (counters and gauges) to the dump; ``extra`` adds pre-computed
    ``(name, kind, value)`` rows — the fabric coordinator uses it to
    surface per-worker cache and dispatch metrics in the fleet dump.
    Series shipped back by fabric workers (``context.remote_series``)
    are included alongside local telemetry. Returns the number of
    samples written.
    """
    lines: List[str] = []
    count = 0
    for _sim, telemetry in getattr(context, "telemetries", []):
        for name, series in telemetry.series.items():
            last = series.last
            if last is None:
                continue
            metric = _prom_name(name)
            lines.append(f"# TYPE {metric} {series.kind}")
            lines.append(f"{metric} {last[1]:g}")
            count += 1
    for series in getattr(context, "remote_series", None) or []:
        samples = series.get("samples")
        if not samples:
            continue
        metric = _prom_name(series["name"])
        lines.append(f"# TYPE {metric} {series.get('kind', 'gauge')}")
        lines.append(f"{metric} {samples[-1][1]:g}")
        count += 1
    for prefix, registry in (registries or {}).items():
        for name, value in registry.snapshot().items():
            metric = _prom_name(f"{prefix}.{name}")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {value:g}")
            count += 1
    for name, kind, value in extra or []:
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} {kind}")
        lines.append(f"{metric} {value:g}")
        count += 1
    text = "\n".join(lines) + ("\n" if lines else "")
    if isinstance(path, str):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        path.write(text)
    return count
