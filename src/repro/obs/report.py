"""``python -m repro.obs.report`` — summarise a JSONL event log.

Reads a file written by :func:`repro.obs.export.export_jsonl` and
prints a per-run summary: run metadata (span/drop counts plus whatever
the exporter attached), a per-category span table, the latency
attribution table (:func:`repro.obs.attribution.attribute` run over the
reconstructed spans), and a telemetry digest (gauges: mean/max, counters:
total + mean rate). ``--format json`` emits the same tables as one
machine-readable JSON document (see :func:`summarise`), so CI and
controllers consume reports without scraping text.

The ``slo`` subcommand evaluates a declarative SLO spec
(:mod:`repro.obs.slo`) against a trace and/or a runner ``--json``
report and exits non-zero on violation — the machine-checkable gate
form of "hedged p99 beats round-robin p99".

Usage::

    python -m repro.obs.report trace.json.jsonl
    python -m repro.obs.report --category readahead trace.json.jsonl
    python -m repro.obs.report --format json trace.json.jsonl
    python -m repro.obs.report slo \\
        --spec repro.experiments.ext_fleet:SLO_SMOKE \\
        --runner-json fleet.json --figure ext-fleet
    python -m repro.obs.report slo --spec slo.json trace.json.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, IO, Iterable, List, Optional

from repro.obs.attribution import COMPONENTS, attribute
from repro.obs.export import read_jsonl
from repro.obs.spans import Span

__all__ = ["main", "render", "summarise"]


def _table(rows: List[List[str]], out: IO[str]) -> None:
    if not rows:
        return
    widths = [max(len(row[i]) for row in rows)
              for i in range(len(rows[0]))]
    for index, row in enumerate(rows):
        cells = [cell.ljust(width) if j == 0 else cell.rjust(width)
                 for j, (cell, width) in enumerate(zip(row, widths))]
        out.write("  " + "  ".join(cells).rstrip() + "\n")
        if index == 0:
            out.write("  " + "  ".join("-" * w for w in widths) + "\n")


def _span_table(spans: Iterable[Span], out: IO[str]) -> None:
    stats: Dict[str, List[float]] = {}
    for span in spans:
        bucket = stats.setdefault(span.category, [0.0, 0.0])
        bucket[0] += 1
        bucket[1] += span.duration
    rows = [["category", "spans", "total s"]]
    for category in sorted(stats):
        count, total = stats[category]
        rows.append([category, f"{int(count)}", f"{total:.6f}"])
    out.write("spans by category\n")
    _table(rows, out)


def _attribution_table(spans: List[Span], category: str,
                       out: IO[str]) -> None:
    report = attribute(spans, category=category)
    out.write(f"latency attribution ({category!r} traces)\n")
    if not report.requests:
        out.write("  no completed traces\n")
        return
    rows = [["component", "mean ms", "share"]]
    for component in COMPONENTS:
        rows.append([component, f"{report.mean_ms(component):.4f}",
                     f"{report.share(component) * 100:.1f}%"])
    rows.append(["total", f"{report.mean_latency_ms:.4f}", "100.0%"])
    _table(rows, out)
    out.write(f"  requests={report.requests} "
              f"staged={report.staged_fraction * 100:.1f}% "
              f"reconciles={report.reconciles()}\n")


def _readahead_join_table(spans: List[Span], out: IO[str]) -> None:
    """Join ``readahead`` fetch spans back to the client requests they
    unblocked (server tags both sides: the fetch span carries an
    ``unblocked`` count, each unblocked request's phase span carries the
    fetch's ``fetch_trace`` id) and amortise the fetch cost over them —
    the full §5.5 cost picture for coalesced fetches."""
    fetches = [span for span in spans if span.category == "readahead"]
    if not fetches:
        return
    joined: Dict[int, List[Span]] = {}
    for span in spans:
        trace = (span.args or {}).get("fetch_trace")
        if trace is not None:
            joined.setdefault(trace, []).append(span)
    fetch_s = sum(span.duration for span in fetches)
    unblocked = sum(int((span.args or {}).get("unblocked", 0))
                    for span in fetches)
    joined_spans = sum(len(members) for members in joined.values())
    wait_s = sum(span.duration for members in joined.values()
                 for span in members)
    rows = [["metric", "value"],
            ["fetches", f"{len(fetches)}"],
            ["fetch total s", f"{fetch_s:.6f}"],
            ["unblocked requests", f"{unblocked}"],
            ["unblocked / fetch", f"{unblocked / len(fetches):.2f}"],
            ["joined client spans", f"{joined_spans}"],
            ["client wait total s", f"{wait_s:.6f}"]]
    if unblocked:
        rows.append(["fetch ms / unblocked",
                     f"{fetch_s * 1e3 / unblocked:.4f}"])
    out.write("readahead fetch join\n")
    _table(rows, out)


def _series_table(series: List[Dict[str, Any]], out: IO[str]) -> None:
    if not series:
        return
    out.write("telemetry\n")
    rows = [["metric", "kind", "samples", "mean", "max/last"]]
    for record in sorted(series, key=lambda r: r.get("name", "")):
        samples = record.get("samples") or []
        values = [v for _t, v in samples]
        kind = record.get("kind", "gauge")
        if kind == "counter":
            # mean rate over the sampled window + final total
            rate = 0.0
            if len(samples) >= 2 and samples[-1][0] > samples[0][0]:
                rate = ((samples[-1][1] - samples[0][1])
                        / (samples[-1][0] - samples[0][0]))
            rows.append([record["name"], kind, f"{len(samples)}",
                         f"{rate:.3f}/s", f"{values[-1]:g}"
                         if values else "-"])
        else:
            mean = sum(values) / len(values) if values else 0.0
            peak = max(values) if values else 0.0
            rows.append([record["name"], kind, f"{len(samples)}",
                         f"{mean:.3f}", f"{peak:g}"])
    _table(rows, out)


def render(meta: Dict[str, Any], spans: List[Span],
           series: List[Dict[str, Any]], category: str = "client",
           out: Optional[IO[str]] = None) -> None:
    """Print the full report for one parsed event log."""
    out = out or sys.stdout
    out.write("run\n")
    for key in sorted(meta):
        if key == "type":
            continue
        out.write(f"  {key}: {meta[key]}\n")
    dropped = meta.get("dropped", 0)
    if dropped:
        out.write(f"  WARNING: {dropped} spans dropped at capacity — "
                  "totals undercount\n")
    if spans:
        _span_table(spans, out)
        _attribution_table(spans, category, out)
        _readahead_join_table(spans, out)
    _series_table(series, out)


def summarise(meta: Dict[str, Any], spans: List[Span],
              series: List[Dict[str, Any]],
              category: str = "client") -> Dict[str, Any]:
    """Every table of :func:`render` as one JSON-safe document.

    The ``--format json`` payload: run metadata, per-category span
    counts/totals, the latency attribution breakdown, the read-ahead
    fetch join, and a telemetry digest keyed by metric name.
    """
    summary: Dict[str, Any] = {
        "run": {key: value for key, value in meta.items()
                if key != "type"},
    }
    by_category: Dict[str, Dict[str, float]] = {}
    for span in spans:
        bucket = by_category.setdefault(
            span.category, {"spans": 0, "total_s": 0.0})
        bucket["spans"] += 1
        bucket["total_s"] += span.duration
    summary["spans_by_category"] = by_category

    report = attribute(spans, category=category) if spans else None
    if report is not None and report.requests:
        summary["attribution"] = {
            "category": category,
            "requests": report.requests,
            "mean_latency_ms": report.mean_latency_ms,
            "staged_fraction": report.staged_fraction,
            "reconciles": report.reconciles(),
            "components": {
                component: {"mean_ms": report.mean_ms(component),
                            "share": report.share(component)}
                for component in COMPONENTS},
        }
    else:
        summary["attribution"] = None

    fetches = [span for span in spans if span.category == "readahead"]
    if fetches:
        joined: Dict[int, int] = {}
        wait_s = 0.0
        for span in spans:
            trace = (span.args or {}).get("fetch_trace")
            if trace is not None:
                joined[trace] = joined.get(trace, 0) + 1
                wait_s += span.duration
        unblocked = sum(int((span.args or {}).get("unblocked", 0))
                        for span in fetches)
        summary["readahead_join"] = {
            "fetches": len(fetches),
            "fetch_total_s": sum(span.duration for span in fetches),
            "unblocked_requests": unblocked,
            "joined_client_spans": sum(joined.values()),
            "client_wait_total_s": wait_s,
        }
    else:
        summary["readahead_join"] = None

    telemetry: Dict[str, Dict[str, Any]] = {}
    for record in series:
        samples = record.get("samples") or []
        values = [value for _t, value in samples]
        digest: Dict[str, Any] = {
            "kind": record.get("kind", "gauge"),
            "samples": len(samples),
            "mean": sum(values) / len(values) if values else 0.0,
            "max": max(values) if values else 0.0,
            "last": values[-1] if values else None,
        }
        if digest["kind"] == "counter" and len(samples) >= 2 \
                and samples[-1][0] > samples[0][0]:
            digest["mean_rate"] = ((samples[-1][1] - samples[0][1])
                                   / (samples[-1][0] - samples[0][0]))
        telemetry[record.get("name", "")] = digest
    summary["telemetry"] = telemetry
    return summary


def _slo_main(argv: List[str]) -> int:
    """The ``slo`` subcommand: evaluate a spec, exit 1 on violation."""
    from repro.obs.slo import evaluate, load_spec
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report slo",
        description="Evaluate a declarative SLO spec against a trace "
                    "and/or a runner --json report; exits 1 when any "
                    "objective is violated.")
    parser.add_argument("trace", nargs="?",
                        help="JSONL event log (spans feed latency "
                        "objectives, series feed burn-rate objectives)")
    parser.add_argument("--spec", required=True,
                        help="SLO spec: a JSON file path or "
                        "module:ATTRIBUTE (e.g. "
                        "repro.experiments.ext_fleet:SLO_SMOKE)")
    parser.add_argument("--runner-json", dest="runner_json",
                        metavar="PATH",
                        help="runner --json output providing result "
                        "series for series_min/series_max objectives")
    parser.add_argument("--figure", help="figure id inside --runner-json"
                        " (required with it)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="verdict output format")
    arguments = parser.parse_args(argv)
    if bool(arguments.runner_json) != bool(arguments.figure):
        parser.error("--runner-json and --figure go together")
    if not arguments.trace and not arguments.runner_json:
        parser.error("need a trace file and/or --runner-json")
    try:
        spec = load_spec(arguments.spec)
    except (OSError, ValueError) as exc:
        print(f"error: bad SLO spec: {exc}", file=sys.stderr)
        return 2
    spans: List[Span] = []
    telemetry: List[Dict[str, Any]] = []
    series_map: Dict[str, Dict[Any, float]] = {}
    if arguments.trace:
        try:
            _meta, spans, telemetry = read_jsonl(arguments.trace)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if arguments.runner_json:
        try:
            with open(arguments.runner_json, encoding="utf-8") as handle:
                figures = json.load(handle)["figures"]
            series_map = figures[arguments.figure]["series"]
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot read series for figure "
                  f"{arguments.figure!r} from {arguments.runner_json}: "
                  f"{exc!r}", file=sys.stderr)
            return 2
    report = evaluate(spec, spans=spans, series=series_map,
                      telemetry=telemetry)
    if arguments.format == "json":
        json.dump(report.to_dict(), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        report.render(sys.stdout)
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "slo":
        return _slo_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarise a repro.obs JSONL event log "
                    "(subcommand 'slo': evaluate an SLO spec).")
    parser.add_argument("path", help="JSONL file from export_jsonl "
                        "(runner --trace-out writes PATH.jsonl)")
    parser.add_argument("--category", default="client",
                        help="root-span category to attribute "
                        "(default: client)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="text tables (default) or one JSON "
                        "document with the same content")
    arguments = parser.parse_args(argv)
    try:
        meta, spans, series = read_jsonl(arguments.path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if arguments.format == "json":
            json.dump(summarise(meta, spans, series,
                                category=arguments.category),
                      sys.stdout, indent=2, sort_keys=True)
            sys.stdout.write("\n")
        else:
            render(meta, spans, series, category=arguments.category)
    except BrokenPipeError:  # e.g. piped into head; not an error
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI test
    sys.exit(main())
