"""Pluggable event-core backends for the simulator kernel.

The kernel's pending-event queue — a priority queue ordered by
``(when, seq)`` with FIFO semantics for equal timestamps — plus the
Timeout/Event free-lists and the untraced dispatch loop live behind one
small *core* API, so the data structure and the hot loop can be swapped
without touching :class:`repro.sim.engine.Simulator` or any event
semantics:

``compiled``
    :mod:`repro.sim._eventcore`, a C extension compiled at install time
    (``setup.py`` marks it *optional*: a build without a C compiler
    still installs, minus this backend). The heap is an array of C
    structs — no per-event tuple, no rich comparisons — and the drive
    loop, free-list recycling and the pooled ``timeout()`` factory run
    in C, calling back into Python only for generator resumes and the
    cold paths.

``calendar``
    :class:`CalendarCore`, a pure-Python calendar queue. O(1) amortized
    enqueue/dequeue instead of ``heapq``'s O(log n), plus a same-instant
    batch fast path and an inlined resume fast path in its drive loop.
    The default whenever the compiled core is unavailable.

``heapq``
    :class:`HeapqCore`, the original ``heapq`` kernel kept verbatim as
    the readable reference implementation.

All three are pinned to bit-identical event streams (and to repeated
:meth:`Simulator.step` calls) by ``tests/test_sim_kernel_equivalence.py``
and ``tests/test_eventcore_fifo.py``.

Selection is automatic (compiled > calendar > heapq) and can be forced
with the ``REPRO_EVENTCORE`` environment variable or the ``backend=``
argument of :class:`~repro.sim.engine.Simulator`. Forcing an
unavailable backend raises immediately with a clear message.

Calendar-queue bucket math
--------------------------
The calendar queue (R. Brown, CACM 1988) maps a timestamp to a *day*
``day = int(when / width)`` and stores it in bucket ``day & (nbuckets-1)``
of a circular array — one *year* is ``nbuckets * width`` seconds.
Dequeueing scans forward from the current day, taking bucket heads that
belong to the day under the cursor; a full fruitless year falls back to
a direct min search over all bucket heads (the classic guard against
sparse queues). Buckets hold at most one *entry* per distinct timestamp
— ``[when, first_seq, events]`` with the events list in push (seq)
order — so equal-time FIFO needs no per-event sequence comparisons and
same-instant bursts (disk completions, bus grants) are one entry. The
queue resizes (and re-estimates ``width`` as 3x the mean gap between
adjacent distinct pending timestamps) when the entry count outgrows
``2 * nbuckets`` or shrinks below a quarter of it, keeping buckets O(1)
long on average.

On top of the textbook structure, :class:`CalendarCore` keeps the few
earliest entries *outside* the calendar in a small sorted front buffer
(``_front``), so the near-empty queues that dominate kernel workloads
(one or two processes sleeping on their next timeouts) are served
entirely from tiny-list operations — no day math, no bucket touch, no
scan. See the class docstring for the invariants.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import Any, List, Optional, Tuple

from repro.sim.events import Event, Process, Timeout

__all__ = [
    "BACKENDS",
    "POOL_LIMIT",
    "CalendarCore",
    "HeapqCore",
    "SweepArena",
    "available_backends",
    "backend_token",
    "compiled_available",
    "make_core",
    "resolve_backend",
    "sweep_arena",
]

try:  # CPython: exact liveness check for free-list recycling.
    from sys import getrefcount as _getrefcount
except ImportError:  # pragma: no cover - PyPy etc: never recycle
    def _getrefcount(_obj: Any) -> int:
        return -1

try:  # The optional C extension (setup.py ext_modules, optional=True).
    from repro.sim import _eventcore as _compiled
except ImportError:  # pragma: no cover - exercised by the no-compiler CI leg
    _compiled = None

#: Upper bound on each free-list; reuse is immediate, so a small cap
#: suffices and bounds worst-case retained memory.
POOL_LIMIT = 1024

#: Recognized backend names, in automatic-selection preference order.
BACKENDS = ("compiled", "calendar", "heapq")

#: Environment variable forcing a specific backend.
ENV_VAR = "REPRO_EVENTCORE"


def compiled_available() -> bool:
    """True when the C extension imported successfully."""
    return _compiled is not None


def available_backends() -> Tuple[str, ...]:
    """The backends usable in this interpreter, preference order."""
    if _compiled is not None:
        return BACKENDS
    return ("calendar", "heapq")


def resolve_backend(name: Optional[str] = None) -> str:
    """Resolve ``name`` (or ``$REPRO_EVENTCORE``, or automatic) to a
    concrete backend name, validating availability.

    Automatic selection prefers ``compiled`` over ``calendar`` over
    ``heapq``. An explicit request for an unavailable backend raises
    ``RuntimeError`` (not a silent fallback): a forced backend is a
    correctness/benchmark pin and must never degrade quietly.
    """
    if name is None:
        name = os.environ.get(ENV_VAR) or None
    if name is None:
        return "compiled" if _compiled is not None else "calendar"
    if name not in BACKENDS:
        raise ValueError(
            f"unknown event-core backend {name!r}: pick one of "
            f"{'/'.join(BACKENDS)} (via REPRO_EVENTCORE or "
            f"Simulator(backend=...))")
    if name == "compiled" and _compiled is None:
        raise RuntimeError(
            "event-core backend 'compiled' was requested but the "
            "repro.sim._eventcore extension is not importable — build it "
            "with `pip install .` (needs a C compiler) or drop "
            "REPRO_EVENTCORE to fall back to the calendar backend")
    return name


def backend_token(name: Optional[str] = None) -> str:
    """Stable identity of the active backend for cache fingerprints.

    Includes the compiled module's version so a rebuilt extension with
    changed semantics can never be served stale sweep-cache entries
    (``repro.experiments.executor.code_fingerprint_for`` mixes this
    token into every point's cache key).
    """
    backend = resolve_backend(name)
    if backend == "compiled":
        return f"compiled/{getattr(_compiled, '__version__', '0')}"
    return backend


def make_core(sim: Any, backend: Optional[str] = None) -> Any:
    """Build the event core for ``sim``; see :func:`resolve_backend`.

    With the sweep arena active (:func:`sweep_arena`), the new core
    inherits the previously built core's free-lists, so back-to-back
    simulators in one worker process start with warm pools.
    """
    backend = resolve_backend(backend)
    if backend == "compiled":
        core = _compiled.EventCore(sim, POOL_LIMIT)
    elif backend == "calendar":
        core = CalendarCore(sim)
    else:
        core = HeapqCore(sim)
    arena = _ARENA
    if arena.active:
        arena.adopt(core, sim)
    return core


#: Environment switch for the sweep arena (``1`` enables it without a
#: code change — what the pool's worker initializer and fabric workers
#: rely on being cheap to check).
ARENA_ENV_VAR = "REPRO_SWEEP_ARENA"


class SweepArena:
    """Carries event free-lists across simulators in one process.

    The free-lists (``timeout_pool`` / ``event_pool``) are per-core, so
    every new :class:`~repro.sim.engine.Simulator` used to start cold
    and re-allocate its way up to ``POOL_LIMIT`` pooled objects. A
    sweep worker builds one simulator per point — hundreds per process
    — so that warm-up is pure waste. The arena, when enabled, moves the
    previously built core's pooled objects into each new core at
    construction time (:func:`make_core`), rebinding each object's
    ``sim`` reference (pooled factories never touch ``.sim``, and
    ``events.py`` hard-rejects events bound to a foreign simulator).

    Safety: an object enters a pool only when the drive loop proved it
    unreferenced (``getrefcount == 2``) and reset it, so the pool list
    is its sole owner and moving it between cores cannot alias live
    state. Stealing from a simulator that is still alive merely leaves
    it with cold pools. Determinism is untouched — pooling only changes
    *allocation*, never event order (the PR 6 equivalence suites run
    with and without warm pools).

    The arena is **off by default**: in-process runs (tests, traced
    figures) keep their per-simulator pools. Sweep workers — the
    fabric's and the local pool's — enable it at startup;
    ``REPRO_SWEEP_ARENA=1`` forces it anywhere.
    """

    __slots__ = ("_enabled", "_source")

    def __init__(self) -> None:
        self._enabled = False
        #: the most recently adopted core (strong ref: it holds the
        #: warm pools until the next simulator claims them; one retained
        #: core per process is the cost of the reuse).
        self._source: Any = None

    @property
    def active(self) -> bool:
        return self._enabled or os.environ.get(ARENA_ENV_VAR) == "1"

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        """Turn the arena off and drop the retained core."""
        self._enabled = False
        self._source = None

    def adopt(self, core: Any, sim: Any) -> None:
        """Move the retained core's pools into ``core`` (for ``sim``)."""
        if getattr(sim, "trace", None) is not None:
            # Traced runs take the reference path and never recycle:
            # donated objects would strand there and break the traced
            # "pools stay empty" pin. Skip the sim entirely — the warm
            # chain continues from the last untraced core.
            return
        source = self._source
        self._source = core
        if source is None or source is core:
            return
        for name in ("timeout_pool", "event_pool"):
            source_pool = getattr(source, name)
            target_pool = getattr(core, name)
            room = POOL_LIMIT - len(target_pool)
            if room <= 0 or not source_pool:
                del source_pool[:]
                continue
            moved = source_pool[:room]
            # In-place mutation throughout: the compiled core exposes
            # its pools as read-only members backed by real lists.
            del source_pool[:]
            for recycled in moved:
                recycled.sim = sim
            target_pool.extend(moved)


_ARENA = SweepArena()


def sweep_arena() -> SweepArena:
    """The process-wide sweep arena singleton."""
    return _ARENA


class HeapqCore:
    """Reference backend: the original ``heapq`` kernel, kept verbatim.

    The heap holds ``(when, seq, event)`` tuples; ``seq`` is a global
    push counter that makes equal-time ordering FIFO and deterministic.
    ``drive`` is the exact pre-backend ``Simulator.run`` hot loop
    (same-timestamp batching, direct sole-waiter resume, refcount-gated
    free-list recycling) operating on core-local state.
    """

    backend = "heapq"

    __slots__ = ("sim", "_heap", "_sequence", "timeout_pool", "event_pool")

    def __init__(self, sim: Any):
        self.sim = sim
        self._heap: List[Tuple[float, int, Event]] = []
        self._sequence = 0
        #: free-lists of processed, provably-unreferenced events
        self.timeout_pool: List[Timeout] = []
        self.event_pool: List[Event] = []

    # -- queue primitives -------------------------------------------------
    def push(self, when: float, event: Event) -> None:
        """Insert ``event`` at ``when`` behind all earlier pushes."""
        self._sequence = sequence = self._sequence + 1
        heappush(self._heap, (when, sequence, event))

    def pop(self) -> Tuple[float, Event]:
        """Remove and return ``(when, event)`` for the earliest event."""
        when, _seq, event = heappop(self._heap)
        return when, event

    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` when empty."""
        heap = self._heap
        return heap[0][0] if heap else float("inf")

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def sequence(self) -> int:
        """Total events ever pushed (the FIFO tie-break counter)."""
        return self._sequence

    # -- pooled factories -------------------------------------------------
    def timeout(self, delay: float, value: Any = None,
                name: str = "") -> Timeout:
        """Create an event that fires ``delay`` seconds from now.

        The dominant call shape (``sim.timeout(d)`` with no value and no
        name) draws from the timeout free-list when recycled instances
        are available, skipping object allocation entirely.
        """
        pool = self.timeout_pool
        if pool and value is None and not name:
            if delay < 0:
                raise ValueError(f"negative timeout delay: {delay}")
            timeout = pool.pop()
            # Recycled instances were reset on entry to the pool
            # (no callbacks, no waiter, value None, ok True, name "").
            timeout.delay = delay
            timeout._state = 1  # Event.TRIGGERED
            self._sequence = sequence = self._sequence + 1
            heappush(self._heap, (self.sim.now + delay, sequence, timeout))
            return timeout
        return Timeout(self.sim, delay, value=value, name=name)

    def event(self, name: str = "") -> Event:
        """Create a pending :class:`Event`, recycling when possible."""
        pool = self.event_pool
        if pool:
            event = pool.pop()
            # Pool entries are reset on entry (no callbacks, no waiter,
            # value None, ok True); only name and state need setting.
            event.name = name
            event._state = 0  # Event.PENDING
            return event
        return Event(self.sim, name=name)

    def wakeup(self, process: Process, name: str) -> Event:
        """Schedule an already-triggered event that direct-resumes
        ``process`` on the next kernel step (bootstrap / interrupt)."""
        pool = self.event_pool
        if pool:
            event = pool.pop()
            event.name = name
            event._state = 1  # Event.TRIGGERED
        else:
            event = Event(self.sim, name=name)
            event._state = 1
        event._sole_waiter = process
        self._sequence = sequence = self._sequence + 1
        heappush(self._heap, (self.sim.now, sequence, event))
        return event

    # -- hot loop ---------------------------------------------------------
    def drive(self, until: Optional[float]) -> None:
        """Dispatch events (to ``until``, inclusive); untraced runs only.

        This is the pre-backend ``Simulator.run`` loop verbatim: events
        sharing the head timestamp drain in one inner batch, the
        single-waiter case resumes directly from the loop, and processed
        ``Timeout``/``Event`` instances whose only reference is the
        loop's are recycled through the free-lists.
        """
        sim = self.sim
        heap = self._heap
        pop = heappop
        getref = _getrefcount
        tpool = self.timeout_pool
        epool = self.event_pool
        limit = POOL_LIMIT
        # sim._failures keeps its identity until _raise_orphans swaps it
        # (and _raise_orphans is only entered when it is non-empty), so a
        # local alias is safe as long as it is re-bound after each call.
        failures = sim._failures
        if until is None:
            while heap:
                when, _seq, event = pop(heap)
                sim.now = when
                while True:
                    waiter = event._sole_waiter
                    if waiter is not None and not event.callbacks:
                        # Direct resume (inlined fast path of
                        # Event._process_callbacks).
                        event._sole_waiter = None
                        event._state = 2  # Event.PROCESSED
                        waiter._resume(event)
                        # Inlined recycle: class test first so
                        # non-poolable events skip the refcount call.
                        cls = event.__class__
                        if cls is Timeout:
                            if getref(event) == 2 and len(tpool) < limit:
                                # Only the loop local + getrefcount's
                                # argument reference it: recyclable.
                                event._value = None
                                event._ok = True
                                event.name = ""
                                tpool.append(event)
                        elif cls is Event:
                            if getref(event) == 2 and len(epool) < limit:
                                event._value = None
                                event._ok = True
                                event.name = ""
                                epool.append(event)
                    else:
                        event._process_callbacks()
                    if failures:
                        # Checked per event, not per batch: a waiter
                        # must be able to absorb a failure *before*
                        # the failed process's own completion event
                        # (same instant) clears its waiter slot.
                        sim._raise_orphans()
                        failures = sim._failures
                    if heap and heap[0][0] == when:
                        event = pop(heap)[2]
                    else:
                        break
            return

        while heap and heap[0][0] <= until:
            when, _seq, event = pop(heap)
            sim.now = when
            while True:
                waiter = event._sole_waiter
                if waiter is not None and not event.callbacks:
                    event._sole_waiter = None
                    event._state = 2  # Event.PROCESSED
                    waiter._resume(event)
                    cls = event.__class__
                    if cls is Timeout:
                        if getref(event) == 2 and len(tpool) < limit:
                            event._value = None
                            event._ok = True
                            event.name = ""
                            tpool.append(event)
                    elif cls is Event:
                        if getref(event) == 2 and len(epool) < limit:
                            event._value = None
                            event._ok = True
                            event.name = ""
                            epool.append(event)
                else:
                    event._process_callbacks()
                if failures:
                    sim._raise_orphans()
                    failures = sim._failures
                if heap and heap[0][0] == when:
                    event = pop(heap)[2]
                else:
                    break

    def __repr__(self) -> str:
        return f"<HeapqCore pending={len(self._heap)} seq={self._sequence}>"


#: Smallest calendar the queue ever shrinks to.
_MIN_BUCKETS = 8
#: Entries held in the sorted front buffer before the calendar engages.
_FRONT_MAX = 4

#: "Run to drain" sentinel for the drive horizon.
_INF = float("inf")


class CalendarCore:
    """Pure-Python calendar-queue backend (the no-compiler default).

    See the module docstring for the bucket math. Three structural fast
    paths give it its edge over :class:`HeapqCore` on kernel workloads:

    * **a sorted front buffer** — the up-to-``_FRONT_MAX`` earliest
      entries live *outside* the calendar in ``_front``, a tiny
      when-ascending list (the classic front-cache variant, widened).
      The near-empty queues that dominate kernel workloads (one or two
      processes sleeping on their next timeouts) are served entirely
      from list ops on this buffer: no day math, no bucket touch, no
      scan. The calendar proper only engages beyond four distinct
      pending timestamps;
    * **one entry per distinct timestamp** — a same-instant burst is a
      single entry whose events list is already in FIFO order, so
      draining a batch is an index walk, and an event pushed at the
      instant being drained appends straight onto the live batch;
    * **an inlined resume fast path in ``drive``** — the dominant
      dispatch shape (sole waiter, successful trigger, started process,
      no pending interrupts) resumes the generator without going
      through ``Process._resume``'s frame, falling back to the exact
      reference method for every cold case.

    Front-buffer invariants: ``_front`` is empty only when the whole
    structure is empty; its entries are strictly when-ascending; and
    every calendar entry's timestamp is *strictly greater* than every
    front timestamp (equal-time pushes merge into the matching front
    entry, and new timestamps beyond the front only enter the front
    while the calendar is empty). Strictness is what makes
    :meth:`_insert_entry` — used to spill the front's last entry when
    the buffer overflows — merge-free.

    ``drive`` dispatches a *detached* entry (``_size`` still counts its
    events), so a resize triggered by a push mid-batch can never
    duplicate the live entry; an exception propagating mid-batch
    re-installs the unprocessed tail at the buffer's head.
    """

    backend = "calendar"

    __slots__ = ("sim", "_buckets", "_nbuckets", "_mask", "_width",
                 "_inv_width", "_day", "_size", "_nentries", "_sequence",
                 "_front", "_active_when", "_active_batch", "timeout_pool",
                 "event_pool")

    def __init__(self, sim: Any):
        self.sim = sim
        self._nbuckets = _MIN_BUCKETS
        self._mask = self._nbuckets - 1
        self._buckets: List[List[list]] = [[] for _ in range(self._nbuckets)]
        self._width = 1.0
        self._inv_width = 1.0
        #: unmasked bucket number the dequeue cursor is on
        self._day = 0
        #: pending events (exact: maintained per push / per dispatch)
        self._size = 0
        #: live ``[when, seq, events]`` entries across all buckets
        #: (front-buffer entries are *not* counted: they are detached)
        self._nentries = 0
        self._sequence = 0
        #: the earliest pending entries, sorted, detached from the
        #: calendar (never rebound: mutated in place)
        self._front: List[list] = []
        #: timestamp of the batch ``drive`` is draining (else None)
        self._active_when: Any = None
        self._active_batch: Optional[List[Event]] = None
        #: free-lists of processed, provably-unreferenced events
        self.timeout_pool: List[Timeout] = []
        self.event_pool: List[Event] = []

    # -- queue primitives -------------------------------------------------
    def push(self, when: float, event: Event) -> None:
        """Insert ``event`` at ``when`` behind all earlier pushes.

        The entry payload (``entry[2]``) is the bare event in the
        dominant one-event-per-timestamp case — one list allocation per
        push, same as ``heapq``'s tuple — and is promoted to a list on
        the first same-timestamp merge.
        """
        self._sequence = sequence = self._sequence + 1
        if when == self._active_when:
            # Same-instant tail: joins the batch being drained, exactly
            # where (when, seq) order would have popped it next.
            self._active_batch.append(event)
            self._size += 1
            return
        front = self._front
        if front:
            last = front[-1]
            last_when = last[0]
            if when > last_when:
                if self._nentries or len(front) >= _FRONT_MAX:
                    self._calendar_insert(when, sequence, event)
                else:
                    front.append([when, sequence, event])
            elif when == last_when:
                payload = last[2]
                if type(payload) is list:
                    payload.append(event)
                else:
                    last[2] = [payload, event]
            else:
                self._front_insert(front, when, sequence, event)
        else:
            front.append([when, sequence, event])
        self._size += 1

    def _front_insert(self, front: List[list], when: float,
                      sequence: int, event: Event) -> None:
        """Insert below the front's last entry (already ruled out),
        merging on equal timestamps and spilling the buffer's last
        entry to the calendar on overflow."""
        for index in range(len(front) - 2, -1, -1):
            entry = front[index]
            entry_when = entry[0]
            if entry_when == when:
                payload = entry[2]
                if type(payload) is list:
                    payload.append(event)
                else:
                    entry[2] = [payload, event]
                return
            if entry_when < when:
                front.insert(index + 1, [when, sequence, event])
                break
        else:
            front.insert(0, [when, sequence, event])
        if len(front) > _FRONT_MAX:
            self._insert_entry(front.pop())

    def _calendar_insert(self, when: float, sequence: int,
                         event: Event) -> None:
        """Insert behind the front buffer (``when > _front[-1][0]``)."""
        day = int(when * self._inv_width)
        bucket = self._buckets[day & self._mask]
        if bucket:
            tail = bucket[-1]
            tail_when = tail[0]
            if tail_when == when:          # merge into existing entry
                payload = tail[2]
                if type(payload) is list:
                    payload.append(event)
                else:
                    tail[2] = [payload, event]
                return
            if tail_when < when:           # monotone append (common)
                bucket.append([when, sequence, event])
            elif not self._insert_sorted(bucket, when, sequence, event):
                return
        else:
            bucket.append([when, sequence, event])
        if self._nentries == 0 or day < self._day:
            self._day = day
        self._nentries += 1
        if self._nentries > 2 * self._nbuckets:
            self._rebuild(self._nbuckets * 2)

    @staticmethod
    def _insert_sorted(bucket: List[list], when: float,
                       sequence: int, event: Event) -> bool:
        """Out-of-order insert keeping the bucket sorted by ``when``;
        merges with an equal-time entry. Returns True when a new entry
        was created. Buckets stay O(1) long, so the backwards walk
        beats bisect's per-probe key indirection. The caller already
        ruled out the last entry."""
        for index in range(len(bucket) - 2, -1, -1):
            entry = bucket[index]
            entry_when = entry[0]
            if entry_when == when:
                payload = entry[2]
                if type(payload) is list:
                    payload.append(event)
                else:
                    entry[2] = [payload, event]
                return False
            if entry_when < when:
                bucket.insert(index + 1, [when, sequence, event])
                return True
        bucket.insert(0, [when, sequence, event])
        return True

    def _find_min(self) -> Tuple[List[list], list]:
        """(bucket, head entry) of the earliest *calendar* entry.

        Caller guarantees at least one entry exists. Scans forward from
        the day cursor; a fruitless full year falls back to a direct
        min search over all bucket heads (sparse-queue guard).
        """
        buckets = self._buckets
        mask = self._mask
        inv_width = self._inv_width
        day = self._day
        scanned = 0
        nbuckets = self._nbuckets
        while True:
            bucket = buckets[day & mask]
            if bucket:
                head = bucket[0]
                if int(head[0] * inv_width) == day:
                    self._day = day
                    return bucket, head
            day += 1
            scanned += 1
            if scanned >= nbuckets:
                best_bucket = None
                best_when = None
                for bucket in buckets:
                    if bucket:
                        head_when = bucket[0][0]
                        if best_when is None or head_when < best_when:
                            best_when = head_when
                            best_bucket = bucket
                self._day = int(best_when * inv_width)
                return best_bucket, best_bucket[0]

    def _insert_entry(self, entry: list) -> None:
        """Attach a detached entry (a spilled front-buffer tail) to the
        calendar.

        Merge-free by the front-buffer invariant: every calendar
        timestamp is strictly greater than every front timestamp, so a
        spilled entry never collides.
        """
        when = entry[0]
        day = int(when * self._inv_width)
        bucket = self._buckets[day & self._mask]
        if not bucket or bucket[-1][0] < when:
            bucket.append(entry)
        else:
            index = len(bucket) - 1
            while index > 0 and bucket[index - 1][0] > when:
                index -= 1
            bucket.insert(index, entry)
        if self._nentries == 0 or day < self._day:
            self._day = day
        self._nentries += 1
        if self._nentries > 2 * self._nbuckets:
            self._rebuild(self._nbuckets * 2)

    def _rebuild(self, nbuckets: int) -> None:
        """Re-bucket every calendar entry into ``nbuckets`` buckets,
        re-estimating the bucket width as 3x the mean gap between
        adjacent distinct pending timestamps (the classic
        calendar-queue heuristic). Front-buffer entries are detached
        and unaffected."""
        entries = [entry for bucket in self._buckets for entry in bucket]
        entries.sort(key=lambda entry: entry[0])
        if len(entries) > 1:
            span = entries[-1][0] - entries[0][0]
            if span > 0.0:
                width = 3.0 * span / (len(entries) - 1)
                self._width = width
                self._inv_width = 1.0 / width
        self._nbuckets = nbuckets
        self._mask = mask = nbuckets - 1
        inv_width = self._inv_width
        self._buckets = buckets = [[] for _ in range(nbuckets)]
        for entry in entries:
            buckets[int(entry[0] * inv_width) & mask].append(entry)
        if entries:
            self._day = int(entries[0][0] * inv_width)

    def _maybe_shrink(self) -> None:
        if (self._nentries < self._nbuckets >> 2
                and self._nbuckets > _MIN_BUCKETS):
            self._rebuild(self._nbuckets >> 1)

    def pop(self) -> Tuple[float, Event]:
        """Remove and return ``(when, event)`` for the earliest event.

        The reference path used by ``step()`` and traced runs; never
        recycles, never batches.
        """
        front = self._front
        if not front:
            raise IndexError("pop from an empty event core")
        entry = front[0]
        payload = entry[2]
        self._size -= 1
        if type(payload) is list:
            event = payload.pop(0)
            if payload:
                return entry[0], event
        else:
            event = payload
            entry[2] = None
        del front[0]
        if not front and self._nentries:
            # Refill the buffer with the earliest calendar entry.
            bucket, nxt = self._find_min()
            del bucket[0]
            self._nentries -= 1
            front.append(nxt)
            self._maybe_shrink()
        return entry[0], event

    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` when empty."""
        front = self._front
        return front[0][0] if front else float("inf")

    def __len__(self) -> int:
        return self._size

    @property
    def sequence(self) -> int:
        """Total events ever pushed (the FIFO tie-break counter)."""
        return self._sequence

    # -- pooled factories -------------------------------------------------
    def timeout(self, delay: float, value: Any = None,
                name: str = "") -> Timeout:
        """Create an event firing ``delay`` seconds from now (pooled).

        The pooled fast path inlines ``push``'s front-buffer branches
        (one call frame fewer on the kernel's hottest allocation site);
        the out-of-order and calendar-resident cases and the cold
        branches defer to the real methods.
        """
        pool = self.timeout_pool
        if pool and value is None and not name:
            if delay < 0:
                raise ValueError(f"negative timeout delay: {delay}")
            timeout = pool.pop()
            # Recycled instances were reset on entry to the pool
            # (no callbacks, no waiter, value None, ok True, name "").
            timeout.delay = delay
            timeout._state = 1  # Event.TRIGGERED
            self._sequence = sequence = self._sequence + 1
            when = self.sim.now + delay
            if when == self._active_when:
                self._active_batch.append(timeout)
                self._size += 1
                return timeout
            front = self._front
            if front:
                last = front[-1]
                last_when = last[0]
                if when > last_when:
                    if self._nentries or len(front) >= _FRONT_MAX:
                        self._calendar_insert(when, sequence, timeout)
                    else:
                        front.append([when, sequence, timeout])
                elif when == last_when:
                    payload = last[2]
                    if type(payload) is list:
                        payload.append(timeout)
                    else:
                        last[2] = [payload, timeout]
                else:
                    self._front_insert(front, when, sequence, timeout)
            else:
                front.append([when, sequence, timeout])
            self._size += 1
            return timeout
        return Timeout(self.sim, delay, value=value, name=name)

    def event(self, name: str = "") -> Event:
        """Create a pending :class:`Event`, recycling when possible."""
        pool = self.event_pool
        if pool:
            event = pool.pop()
            # Pool entries are reset on entry (no callbacks, no waiter,
            # value None, ok True); only name and state need setting.
            event.name = name
            event._state = 0  # Event.PENDING
            return event
        return Event(self.sim, name=name)

    def wakeup(self, process: Process, name: str) -> Event:
        """Pooled, already-triggered direct-resume event at ``now``."""
        pool = self.event_pool
        if pool:
            event = pool.pop()
            event.name = name
            event._state = 1  # Event.TRIGGERED
        else:
            event = Event(self.sim, name=name)
            event._state = 1
        event._sole_waiter = process
        self.push(self.sim.now, event)
        return event

    # -- hot loop ---------------------------------------------------------
    def drive(self, until: Optional[float]) -> None:
        """Dispatch events (to ``until``, inclusive); untraced runs only.

        Semantically identical to :meth:`HeapqCore.drive` (pinned by the
        equivalence suite); structurally it detaches the front buffer's
        head — one timestamp's FIFO batch — per outer iteration,
        *refilling the buffer from the calendar first* when it empties,
        so pushes from resumed processes always compare against the
        true remaining minimum. The refill scan is inlined (no
        per-batch method calls), and single-event batches — the
        dominant case — skip the live-batch machinery entirely: a
        same-instant push during such a dispatch simply becomes the new
        buffer head at the same timestamp, which the next iteration
        dispatches in unchanged ``(when, seq)`` order.
        """
        sim = self.sim
        getref = _getrefcount
        tpool = self.timeout_pool
        epool = self.event_pool
        limit = POOL_LIMIT
        min_buckets = _MIN_BUCKETS
        front = self._front  # never rebound: safe to hoist
        # Locals for every name the per-event path would otherwise look
        # up as a global, and +inf as the "run to drain" sentinel so
        # the horizon is one float compare per batch.
        list_cls = list
        timeout_cls = Timeout
        event_cls = Event
        if until is None:
            until = _INF
        failures = sim._failures
        # The buffer is empty only when the whole structure is (pushes
        # land in it first and the refill below immediately replenishes
        # it), so it doubles as the drain condition.
        while front:
            entry = front[0]
            when = entry[0]
            if when > until:
                break
            del front[0]
            if not front and self._nentries:
                # Inlined calendar refill (pushes from dispatched
                # processes can rebuild the calendar, so its locals
                # are read fresh each time).
                buckets = self._buckets
                mask = self._mask
                inv_width = self._inv_width
                day = self._day
                scanned = 0
                nbuckets = self._nbuckets
                while True:
                    bucket = buckets[day & mask]
                    if bucket:
                        nxt = bucket[0]
                        if int(nxt[0] * inv_width) == day:
                            self._day = day
                            break
                    day += 1
                    scanned += 1
                    if scanned >= nbuckets:
                        bucket = None
                        best_when = None
                        for candidate in buckets:
                            if candidate:
                                head_when = candidate[0][0]
                                if best_when is None or head_when < best_when:
                                    best_when = head_when
                                    bucket = candidate
                        nxt = bucket[0]
                        self._day = int(best_when * inv_width)
                        break
                del bucket[0]
                front.append(nxt)
                self._nentries = nentries = self._nentries - 1
                if nentries < nbuckets >> 2 and nbuckets > min_buckets:
                    self._rebuild(nbuckets >> 1)
            event = entry[2]
            sim.now = when
            if type(event) is not list_cls:
                # Single-event entry (bare payload): no live-batch
                # state, no unwind protection needed (the one event is
                # consumed up front; an exception leaves nothing
                # stranded). ``event`` is the only reference left once
                # the entry slot is cleared — the recycle check needs
                # that sole custody.
                entry[2] = None
                self._size -= 1
                waiter = event._sole_waiter
                if waiter is not None and not event.callbacks:
                    event._sole_waiter = None
                    event._state = 2  # Event.PROCESSED
                    if (not waiter._interrupts and event._ok
                            and waiter._started):
                        # Inlined Process._resume fast path: an ok
                        # trigger into a started, uninterrupted
                        # process. Anything colder falls back to the
                        # reference method.
                        waiter._waiting_on = None
                        try:
                            target = waiter._send(event._value)
                        except StopIteration as stop:
                            waiter._finish(True, stop.value)
                        except BaseException as exc:  # noqa: BLE001
                            waiter._finish(False, exc)
                        else:
                            try:
                                target_state = target._state
                            except AttributeError:
                                trigger = event_cls(sim)
                                trigger._ok = False
                                trigger._value = TypeError(
                                    f"process {waiter.name!r} yielded "
                                    f"non-event {target!r}; yield "
                                    f"Event/Timeout/Process")
                                waiter._resume(trigger)
                            else:
                                if target_state == 2:
                                    # Already processed: delivering it
                                    # through _resume is exactly the
                                    # reference loop's
                                    # ``trigger = target; continue``.
                                    waiter._resume(target)
                                elif (target._sole_waiter is None
                                        and not target.callbacks):
                                    waiter._waiting_on = target
                                    target._sole_waiter = waiter
                                else:
                                    waiter._waiting_on = target
                                    target.callbacks.append(
                                        waiter._resume)
                    else:
                        waiter._resume(event)
                    cls = event.__class__
                    if cls is timeout_cls:
                        if getref(event) == 2 and len(tpool) < limit:
                            event._value = None
                            event._ok = True
                            event.name = ""
                            tpool.append(event)
                    elif cls is event_cls:
                        if getref(event) == 2 and len(epool) < limit:
                            event._value = None
                            event._ok = True
                            event.name = ""
                            epool.append(event)
                else:
                    event._process_callbacks()
                if failures:
                    # Per event, not per batch: a waiter must be able
                    # to absorb a failure *before* the failed
                    # process's own completion event (same instant)
                    # clears its waiter slot.
                    sim._raise_orphans()
                    failures = sim._failures
            else:
                batch = event
                self._active_when = when
                self._active_batch = batch
                index = 0
                try:
                    length = len(batch)
                    while index < length:
                        event = batch[index]
                        # Clear the slot so the batch holds no
                        # reference: the recycle check must see the
                        # loop local as the only remaining referent.
                        batch[index] = None
                        index += 1
                        self._size -= 1
                        waiter = event._sole_waiter
                        if waiter is not None and not event.callbacks:
                            event._sole_waiter = None
                            event._state = 2  # Event.PROCESSED
                            if (not waiter._interrupts and event._ok
                                    and waiter._started):
                                waiter._waiting_on = None
                                try:
                                    target = waiter._send(event._value)
                                except StopIteration as stop:
                                    waiter._finish(True, stop.value)
                                except BaseException as exc:  # noqa: BLE001
                                    waiter._finish(False, exc)
                                else:
                                    try:
                                        target_state = target._state
                                    except AttributeError:
                                        trigger = event_cls(sim)
                                        trigger._ok = False
                                        trigger._value = TypeError(
                                            f"process {waiter.name!r} "
                                            f"yielded non-event "
                                            f"{target!r}; yield "
                                            f"Event/Timeout/Process")
                                        waiter._resume(trigger)
                                    else:
                                        if target_state == 2:
                                            waiter._resume(target)
                                        elif (target._sole_waiter is None
                                                and not target.callbacks):
                                            waiter._waiting_on = target
                                            target._sole_waiter = waiter
                                        else:
                                            waiter._waiting_on = target
                                            target.callbacks.append(
                                                waiter._resume)
                            else:
                                waiter._resume(event)
                            cls = event.__class__
                            if cls is timeout_cls:
                                if (getref(event) == 2
                                        and len(tpool) < limit):
                                    event._value = None
                                    event._ok = True
                                    event.name = ""
                                    tpool.append(event)
                            elif cls is event_cls:
                                if (getref(event) == 2
                                        and len(epool) < limit):
                                    event._value = None
                                    event._ok = True
                                    event.name = ""
                                    epool.append(event)
                        else:
                            event._process_callbacks()
                        if failures:
                            sim._raise_orphans()
                            failures = sim._failures
                        length = len(batch)
                finally:
                    self._active_when = None
                    self._active_batch = None
                    if index != len(batch):
                        # Exception propagating mid-batch: the
                        # unprocessed tail (still the minimum) goes
                        # back to the buffer's head — exactly like
                        # the reference loop leaves same-instant
                        # events on the heap — spilling on overflow.
                        del batch[:index]
                        front.insert(0, entry)
                        if len(front) > _FRONT_MAX:
                            self._insert_entry(front.pop())

    def __repr__(self) -> str:
        return (f"<CalendarCore pending={self._size} "
                f"buckets={self._nbuckets} width={self._width:g} "
                f"seq={self._sequence}>")
