"""Discrete-event simulation kernel.

A small, self-contained, generator-based discrete-event simulator in the
style of simpy, purpose-built for the storage models in this package.

Public surface:

* :class:`~repro.sim.engine.Simulator` — the event loop and clock.
* :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`,
  :class:`~repro.sim.events.Process`, :class:`~repro.sim.events.AnyOf`,
  :class:`~repro.sim.events.AllOf` — things processes ``yield``.
* :class:`~repro.sim.resources.Resource`, :class:`~repro.sim.resources.Store`,
  :class:`~repro.sim.resources.Pipe` — contention primitives.
* :mod:`~repro.sim.stats` — counters, time-weighted gauges, latency samplers.
* :mod:`~repro.sim.trace` — optional structured event tracing.
* :mod:`~repro.sim.microbench` — kernel micro-workloads for events/sec
  tracking (``BENCH_engine.json``).

Example
-------
>>> from repro.sim import Simulator
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(worker(sim, "a", 2.0))
>>> _ = sim.process(worker(sim, "b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from repro.sim.engine import Simulator, SimulationError
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.sim.resources import Pipe, Resource, Store
from repro.sim.stats import (
    Counter,
    Histogram,
    IntervalRate,
    LatencySampler,
    StatsRegistry,
    TimeWeightedGauge,
)
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Event",
    "Histogram",
    "Interrupt",
    "IntervalRate",
    "LatencySampler",
    "Pipe",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "StatsRegistry",
    "Store",
    "TimeWeightedGauge",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
