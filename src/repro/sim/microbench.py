"""Kernel micro-workloads with known event counts.

Each workload returns the number of kernel events it pushes through the
simulator, so callers can convert wall time into events/sec. They are
used both by ``benchmarks/test_kernel_micro.py`` (pytest-benchmark
timings) and by ``python -m repro.experiments.bench`` (the
``BENCH_engine.json`` emitter that tracks the kernel's performance
trajectory across PRs).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Tuple

from repro.sim.engine import Simulator

__all__ = [
    "WORKLOADS",
    "events_per_second",
    "timeout_churn",
    "event_chain",
    "process_fanout",
]


def timeout_churn(n: int = 50_000) -> int:
    """One process yielding ``n`` back-to-back timeouts.

    The pure ``Timeout``-resume path: one heap pop + one generator
    resume per event. Returns the event count.
    """
    sim = Simulator()

    def ticker(sim):
        for _ in range(n):
            yield sim.timeout(0.001)

    sim.process(ticker(sim))
    sim.run()
    assert sim.now > 0.99 * n * 0.001
    return n


def event_chain(n: int = 25_000) -> int:
    """Producer/consumer pair handing values through bare events.

    Exercises ``Event.succeed`` + multi-process wake-ups (two processes
    interleaving on the heap). Returns the event count (~2 per round).
    """
    sim = Simulator()
    holder = [None]

    def producer(sim):
        for _ in range(n):
            event = sim.event()
            holder[0] = event
            yield sim.timeout(0.0005)
            event.succeed(42)

    def consumer(sim):
        yield sim.timeout(0.001)
        for _ in range(n):
            yield holder[0]

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    return 2 * n


def process_fanout(n: int = 5_000) -> int:
    """Spawn ``n`` short-lived processes joined by a parent.

    Stresses process bootstrap/finish and ``AllOf`` conditions.
    Returns an approximate event count (bootstrap + timeout + finish).
    """
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(0.001)
        return 1

    def parent(sim):
        children = [sim.process(worker(sim)) for _ in range(n)]
        values = yield sim.all_of(children)
        assert len(values) == n

    sim.process(parent(sim))
    sim.run()
    return 3 * n


#: name -> zero-argument workload returning its event count.
WORKLOADS: Dict[str, Callable[[], int]] = {
    "timeout_churn": timeout_churn,
    "event_chain": event_chain,
    "process_fanout": process_fanout,
}


def events_per_second(workload: Callable[[], int],
                      repeats: int = 3) -> Tuple[float, int]:
    """(best events/sec over ``repeats`` runs, events per run)."""
    best = 0.0
    events = 0
    for _ in range(repeats):
        start = time.perf_counter()
        events = workload()
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, events / elapsed)
    return best, events
