"""Structured tracing for simulations.

Tracing is opt-in: the default simulator runs with ``trace=None`` and pays
nothing. A :class:`Tracer` collects bounded, typed records that tests and
debugging sessions can filter.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Iterable, List, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes
    ----------
    time:
        Simulated time of the record.
    source:
        Component name emitting the record ("kernel", "disk0", ...).
    kind:
        Event kind ("issue", "complete", "seek", "hit", "evict", ...).
    detail:
        Free-form payload; kept small (ids and numbers, not objects).
    """

    time: float
    source: str
    kind: str
    detail: Any = None


class Tracer:
    """Bounded in-memory trace buffer with optional live sinks.

    Parameters
    ----------
    capacity:
        Maximum records retained (oldest dropped first). ``None`` keeps all;
        only use unbounded capacity in short tests.
    kinds:
        Optional whitelist of record kinds to retain.

    ``dropped`` counts every record the buffer did not keep — kind-
    filtered records *and* oldest records evicted at capacity (the
    eviction was previously silent). The obs report surfaces it so a
    truncated trace is never mistaken for a complete one.
    """

    def __init__(self, capacity: Optional[int] = 100_000,
                 kinds: Optional[Iterable[str]] = None):
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._capacity = capacity
        self._kinds = set(kinds) if kinds is not None else None
        self._sinks: List[Callable[[TraceRecord], None]] = []
        self.dropped = 0
        self.kernel_steps = 0

    def add_sink(self, sink: Callable[[TraceRecord], None]) -> None:
        """Register a callable invoked for every retained record."""
        self._sinks.append(sink)

    def emit(self, time: float, source: str, kind: str,
             detail: Any = None) -> None:
        """Record one entry (filtered by the kind whitelist)."""
        if self._kinds is not None and kind not in self._kinds:
            self.dropped += 1
            return
        record = TraceRecord(time=time, source=source, kind=kind,
                             detail=detail)
        if self._capacity is not None \
                and len(self._records) == self._capacity:
            # deque(maxlen=...) evicts the oldest silently; count it.
            self.dropped += 1
        self._records.append(record)
        for sink in self._sinks:
            sink(record)

    def kernel(self, time: float, event: Any) -> None:
        """Hook called by the simulator on every processed event."""
        self.kernel_steps += 1

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def records(self, source: Optional[str] = None,
                kind: Optional[str] = None) -> List[TraceRecord]:
        """Retained records, optionally filtered by source and kind."""
        out = []
        for record in self._records:
            if source is not None and record.source != source:
                continue
            if kind is not None and record.kind != kind:
                continue
            out.append(record)
        return out

    def last(self, kind: Optional[str] = None) -> Optional[TraceRecord]:
        """Most recent (optionally kind-filtered) record, or None."""
        if kind is None:
            return self._records[-1] if self._records else None
        for record in reversed(self._records):
            if record.kind == kind:
                return record
        return None

    def clear(self) -> None:
        """Drop all retained records."""
        self._records.clear()
        self.dropped = 0

    def __repr__(self) -> str:
        capacity = "∞" if self._capacity is None else self._capacity
        return (f"<Tracer records={len(self._records)}/{capacity} "
                f"dropped={self.dropped} "
                f"kernel_steps={self.kernel_steps}>")
