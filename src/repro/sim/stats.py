"""Metric collection for simulations.

All metrics are pull-based and cheap to update: experiments run millions of
events, so per-sample work is a couple of float ops. Aggregation happens at
report time.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Histogram",
    "IntervalRate",
    "LatencySampler",
    "StatsRegistry",
    "TimeWeightedGauge",
]


class Counter:
    """A monotonically increasing count with an optional byte payload."""

    __slots__ = ("name", "count", "total_bytes")

    def __init__(self, name: str = ""):
        self.name = name
        self.count = 0
        self.total_bytes = 0

    def add(self, nbytes: int = 0) -> None:
        """Record one occurrence carrying ``nbytes`` bytes."""
        self.count += 1
        self.total_bytes += nbytes

    def merge(self, other: "Counter") -> None:
        """Fold another counter into this one."""
        self.count += other.count
        self.total_bytes += other.total_bytes

    def throughput(self, elapsed: float) -> float:
        """Bytes per second over ``elapsed`` seconds."""
        return self.total_bytes / elapsed if elapsed > 0 else 0.0

    def rate(self, elapsed: float) -> float:
        """Occurrences per second over ``elapsed`` seconds."""
        return self.count / elapsed if elapsed > 0 else 0.0

    def __repr__(self) -> str:
        return f"<Counter {self.name!r} n={self.count} bytes={self.total_bytes}>"


class TimeWeightedGauge:
    """Tracks a level over time and reports its time-weighted mean.

    Used for queue depths, memory in use, dispatch-set occupancy.
    """

    __slots__ = ("name", "_level", "_last_time", "_area", "_start",
                 "max_level", "min_level")

    def __init__(self, name: str = "", start_time: float = 0.0,
                 level: float = 0.0):
        self.name = name
        self._level = level
        self._last_time = start_time
        self._start = start_time
        self._area = 0.0
        self.max_level = level
        self.min_level = level

    @property
    def level(self) -> float:
        """Current instantaneous level."""
        return self._level

    def set(self, now: float, level: float) -> None:
        """Move the gauge to ``level`` at simulated time ``now``."""
        if now < self._last_time:
            raise ValueError(
                f"gauge time going backwards: {now} < {self._last_time}")
        self._area += self._level * (now - self._last_time)
        self._last_time = now
        self._level = level
        self.max_level = max(self.max_level, level)
        self.min_level = min(self.min_level, level)

    def adjust(self, now: float, delta: float) -> None:
        """Add ``delta`` to the level at time ``now``."""
        self.set(now, self._level + delta)

    def mean(self, now: Optional[float] = None) -> float:
        """Time-weighted mean level from start to ``now`` (default: last)."""
        end = self._last_time if now is None else now
        span = end - self._start
        if span <= 0:
            return self._level
        area = self._area + self._level * (end - self._last_time)
        return area / span

    def merge(self, other: "TimeWeightedGauge") -> None:
        """Fold another gauge's observation window into this one.

        Shards observe independent windows, so the merged gauge reports
        the duration-weighted mean of the two windows, the summed
        instantaneous level (shards track disjoint populations), and the
        combined extrema. Internally the windows are laid end to end —
        ``mean()`` stays exact without keeping per-window history.
        """
        span_self = self._last_time - self._start
        span_other = other._last_time - other._start
        area_self = self.mean() * span_self
        area_other = other.mean() * span_other
        self._start = 0.0
        self._last_time = span_self + span_other
        self._area = area_self + area_other
        self._level += other._level
        self.max_level = max(self.max_level, other.max_level)
        self.min_level = min(self.min_level, other.min_level)

    def __repr__(self) -> str:
        return f"<Gauge {self.name!r} level={self._level:g}>"


class LatencySampler:
    """Streaming latency statistics: count/mean/variance/min/max + reservoir.

    Keeps a bounded reservoir for percentile estimates so memory stays flat
    even over millions of samples (simple systematic thinning: once full,
    every k-th sample replaces a slot round-robin — adequate for the smooth
    latency distributions here and fully deterministic).

    Passing ``sketch`` (a relative accuracy in (0, 1)) upgrades the
    percentile path to a :class:`repro.obs.sketch.QuantileSketch`: every
    sample is ingested, :meth:`percentile` answers from the sketch with
    that guaranteed relative-error bound (the reservoir's thinning error
    is unbounded), and :meth:`merge` folds sketches exactly. The default
    keeps the reservoir-only behaviour bit-identical.
    """

    __slots__ = ("name", "count", "_mean", "_m2", "min", "max",
                 "_reservoir", "_capacity", "_stride", "_cursor",
                 "_sketch")

    def __init__(self, name: str = "", reservoir: int = 4096,
                 sketch: Optional[float] = None):
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._reservoir: List[float] = []
        self._capacity = reservoir
        self._stride = 1
        self._cursor = 0
        if sketch is None:
            self._sketch = None
        else:
            # Deferred import: repro.obs is a higher layer and samplers
            # are built on every simulator whether or not anyone asks
            # for sketched percentiles.
            from repro.obs.sketch import QuantileSketch
            self._sketch = QuantileSketch(relative_accuracy=sketch)

    def observe(self, value: float) -> None:
        """Record one latency sample (seconds).

        Runs once or twice per simulated request; the locals avoid
        re-loading each slot between the Welford updates.
        """
        self.count = count = self.count + 1
        delta = value - self._mean
        self._mean = mean = self._mean + delta / count
        self._m2 += delta * (value - mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self._sketch is not None:
            self._sketch.add(value)
        reservoir = self._reservoir
        if len(reservoir) < self._capacity:
            reservoir.append(value)
        else:
            if self.count % self._stride == 0:
                self._reservoir[self._cursor] = value
                self._cursor += 1
                if self._cursor >= self._capacity:
                    self._cursor = 0
                    self._stride = min(self._stride * 2, 1 << 20)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance of all samples."""
        return self._m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def percentile(self, q: float) -> float:
        """Approximate q-quantile (q in [0, 1]).

        From the sketch (guaranteed relative error) when one was
        requested at construction, else from the reservoir.
        """
        if self._sketch is not None:
            return self._sketch.quantile(q)
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def merge(self, other: "LatencySampler") -> None:
        """Fold another sampler into this one (parallel-shard reduce).

        Count/mean/variance combine exactly (Chan et al.'s parallel
        Welford update); the reservoirs concatenate and, when over
        capacity, thin by deterministic even-spaced selection — no
        randomness, so sweep-executor merges are reproducible regardless
        of shard arrival order being pinned upstream.
        """
        if other.count == 0:
            return
        if self._sketch is not None and other._sketch is not None:
            self._sketch.merge(other._sketch)
        elif self._sketch is not None or other._sketch is not None:
            raise ValueError(
                "cannot merge a sketched sampler with a reservoir-only "
                "one: percentiles would silently lose their bound")
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            self._reservoir = list(other._reservoir)
            self._cursor = 0
            self._stride = other._stride
            return
        n1, n2 = self.count, other.count
        total = n1 + n2
        delta = other._mean - self._mean
        self._mean += delta * n2 / total
        self._m2 += other._m2 + delta * delta * n1 * n2 / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        combined = self._reservoir + other._reservoir
        if len(combined) > self._capacity:
            step = len(combined) / self._capacity
            combined = [combined[int(i * step)]
                        for i in range(self._capacity)]
        self._reservoir = combined
        self._cursor = 0
        self._stride = max(self._stride, other._stride)

    def __repr__(self) -> str:
        return (f"<LatencySampler {self.name!r} n={self.count} "
                f"mean={self.mean * 1e3:.3f}ms>")


class Histogram:
    """Fixed-bucket histogram with explicit upper bounds."""

    __slots__ = ("name", "bounds", "counts", "overflow")

    def __init__(self, bounds: Iterable[float], name: str = ""):
        self.name = name
        self.bounds = sorted(bounds)
        if not self.bounds:
            raise ValueError("histogram needs at least one bound")
        self.counts = [0] * len(self.bounds)
        self.overflow = 0

    def observe(self, value: float) -> None:
        """Count ``value`` into its bucket (bounds are inclusive uppers)."""
        index = bisect_left(self.bounds, value)
        if index >= len(self.bounds):
            self.overflow += 1
        else:
            self.counts[index] += 1

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram into this one (bounds must match)."""
        if self.bounds != other.bounds:
            raise ValueError(
                f"histogram bounds differ: {self.bounds} vs {other.bounds}")
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.overflow += other.overflow

    @property
    def total(self) -> int:
        """Total observations including overflow."""
        return sum(self.counts) + self.overflow

    def as_rows(self) -> List[Tuple[float, int]]:
        """(upper_bound, count) rows, plus (inf, overflow) if nonzero."""
        rows = list(zip(self.bounds, self.counts))
        if self.overflow:
            rows.append((math.inf, self.overflow))
        return rows


class IntervalRate:
    """Windowed throughput: bytes recorded per fixed interval.

    Used to drop warm-up intervals and to check steady state.
    """

    __slots__ = ("interval", "_windows", "_current_start")

    def __init__(self, interval: float = 1.0):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self._windows: Dict[int, int] = {}
        self._current_start = 0.0

    def record(self, now: float, nbytes: int) -> None:
        """Attribute ``nbytes`` to the window containing ``now``."""
        window = int(now / self.interval)
        self._windows[window] = self._windows.get(window, 0) + nbytes

    def rates(self) -> List[Tuple[float, float]]:
        """(window_start_time, bytes_per_second) for every touched window."""
        return [(w * self.interval, b / self.interval)
                for w, b in sorted(self._windows.items())]

    def steady_rate(self, skip_windows: int = 1) -> float:
        """Mean rate after dropping the first ``skip_windows`` windows."""
        rows = self.rates()[skip_windows:]
        if not rows:
            return 0.0
        return sum(rate for _start, rate in rows) / len(rows)

    def merge(self, other: "IntervalRate") -> None:
        """Fold another tracker into this one (intervals must match)."""
        if self.interval != other.interval:
            raise ValueError(
                f"intervals differ: {self.interval} vs {other.interval}")
        for window, nbytes in other._windows.items():
            self._windows[window] = self._windows.get(window, 0) + nbytes


class StatsRegistry:
    """A named bag of metrics so components can expose them uniformly."""

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, TimeWeightedGauge] = {}
        self.latencies: Dict[str, LatencySampler] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def gauge(self, name: str, start_time: float = 0.0) -> TimeWeightedGauge:
        """Get or create the named gauge."""
        if name not in self.gauges:
            self.gauges[name] = TimeWeightedGauge(name, start_time=start_time)
        return self.gauges[name]

    def latency(self, name: str) -> LatencySampler:
        """Get or create the named latency sampler."""
        if name not in self.latencies:
            self.latencies[name] = LatencySampler(name)
        return self.latencies[name]

    def merge(self, other: "StatsRegistry") -> None:
        """Fold another registry into this one, by metric name.

        The shard-reduce path for parallel sweeps: every primitive knows
        how to merge itself, and names absent on this side are created
        empty first — so merging onto a fresh registry equals a copy.
        Registries round-trip through pickle (the executor boundary), so
        ``merge`` works identically on locally built and unpickled
        shards (pinned by ``tests/test_stats_merge.py``).
        """
        for name, counter in other.counters.items():
            self.counter(name).merge(counter)
        for name, gauge in other.gauges.items():
            self.gauge(name).merge(gauge)
        for name, sampler in other.latencies.items():
            self.latency(name).merge(sampler)

    def snapshot(self) -> Dict[str, float]:
        """Flat name→value view for quick assertions and reports."""
        out: Dict[str, float] = {}
        for name, counter in self.counters.items():
            out[f"{name}.count"] = counter.count
            out[f"{name}.bytes"] = counter.total_bytes
        for name, gauge in self.gauges.items():
            out[f"{name}.level"] = gauge.level
            out[f"{name}.mean"] = gauge.mean()
        for name, sampler in self.latencies.items():
            out[f"{name}.n"] = sampler.count
            out[f"{name}.mean"] = sampler.mean
        return out
