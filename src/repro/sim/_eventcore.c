/* Compiled event core for the repro.sim kernel.
 *
 * One opaque EventCore object per Simulator holding the timestamped
 * pending-event heap, the Timeout/Event free-lists and the untraced
 * dispatch loop -- the C twin of the pure-Python backends in
 * repro/sim/eventcore.py (HeapqCore is the semantic reference; the
 * equivalence suite pins all backends to bit-identical event streams).
 *
 * Design notes:
 *
 * - The heap is an array of C structs {when, seq, ev}: no per-event
 *   tuple allocation and no rich comparisons.  `seq` is the global push
 *   counter, so equal-time ordering is FIFO and deterministic, exactly
 *   like the (when, seq, event) tuples of the heapq reference.
 *
 * - Event/Process fields are read and written through the slot offsets
 *   of their member descriptors, captured once from the Python classes
 *   at first use.  All event classes inherit Event's __slots__, so the
 *   offsets are valid for every subclass; objects whose type is not an
 *   Event subclass (duck-typed yields) fall back to generic attribute
 *   access with the exact semantics of Process._resume.
 *
 * - drive() mirrors the Python hot loop branch for branch: batched
 *   same-timestamp drain, inlined sole-waiter resume (generator send
 *   straight from C), refcount-gated free-list recycling.  After the
 *   pop this code owns the only C reference, so Py_REFCNT(ev) == 1 is
 *   the same sole-custody proof as getrefcount(event) == 2 in Python
 *   (loop local + getrefcount argument).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

#define EVENTCORE_VERSION "1"

/* ---------------------------------------------------------------- caches */

static int caches_ready = 0;

static PyObject *EventClass = NULL;     /* repro.sim.events.Event */
static PyObject *TimeoutClass = NULL;   /* repro.sim.events.Timeout */
static PyObject *ProcessClass = NULL;   /* repro.sim.events.Process */

/* Event slots (shared by every subclass). */
static Py_ssize_t off_ev_name = -1;
static Py_ssize_t off_ev_callbacks = -1;
static Py_ssize_t off_ev_value = -1;
static Py_ssize_t off_ev_ok = -1;
static Py_ssize_t off_ev_state = -1;
static Py_ssize_t off_ev_sole_waiter = -1;
/* Timeout slot. */
static Py_ssize_t off_to_delay = -1;
/* Process slots. */
static Py_ssize_t off_pr_send = -1;
static Py_ssize_t off_pr_waiting_on = -1;
static Py_ssize_t off_pr_interrupts = -1;
static Py_ssize_t off_pr_started = -1;
/* Simulator slots. */
static Py_ssize_t off_sim_now = -1;
static Py_ssize_t off_sim_failures = -1;

static PyObject *int_zero = NULL;       /* the small-int singletons the  */
static PyObject *int_one = NULL;        /* Python kernel stores in _state */
static PyObject *int_two = NULL;
static PyObject *empty_string = NULL;

static PyObject *s_resume = NULL;            /* "_resume" */
static PyObject *s_finish = NULL;            /* "_finish" */
static PyObject *s_process_callbacks = NULL; /* "_process_callbacks" */
static PyObject *s_raise_orphans = NULL;     /* "_raise_orphans" */
static PyObject *s_state = NULL;             /* "_state" */
static PyObject *s_sole_waiter = NULL;       /* "_sole_waiter" */
static PyObject *s_callbacks = NULL;         /* "callbacks" */
static PyObject *s_waiting_on = NULL;        /* "_waiting_on" */
static PyObject *s_append = NULL;            /* "append" */
static PyObject *s_value = NULL;             /* "value" */

#define SLOT(ob, off) (*(PyObject **)((char *)(ob) + (off)))

/* Store `v` (a borrowed ref) into a slot, replacing the old value. */
static inline void
slot_store(PyObject *ob, Py_ssize_t off, PyObject *v)
{
    PyObject *old = SLOT(ob, off);
    Py_INCREF(v);
    SLOT(ob, off) = v;
    Py_XDECREF(old);
}

static Py_ssize_t
slot_offset(PyObject *cls, const char *name)
{
    PyObject *descr = PyObject_GetAttrString(cls, name);
    Py_ssize_t off;

    if (descr == NULL)
        return -1;
    if (Py_TYPE(descr) != &PyMemberDescr_Type) {
        PyErr_Format(PyExc_TypeError,
                     "%S.%s is not a __slots__ member descriptor",
                     cls, name);
        Py_DECREF(descr);
        return -1;
    }
    off = ((PyMemberDescrObject *)descr)->d_member->offset;
    Py_DECREF(descr);
    return off;
}

static int
ensure_caches(void)
{
    PyObject *events_mod = NULL, *engine_mod = NULL, *sim_cls = NULL;

    if (caches_ready)
        return 0;

    events_mod = PyImport_ImportModule("repro.sim.events");
    if (events_mod == NULL)
        goto error;
    EventClass = PyObject_GetAttrString(events_mod, "Event");
    TimeoutClass = PyObject_GetAttrString(events_mod, "Timeout");
    ProcessClass = PyObject_GetAttrString(events_mod, "Process");
    if (EventClass == NULL || TimeoutClass == NULL || ProcessClass == NULL)
        goto error;

    engine_mod = PyImport_ImportModule("repro.sim.engine");
    if (engine_mod == NULL)
        goto error;
    sim_cls = PyObject_GetAttrString(engine_mod, "Simulator");
    if (sim_cls == NULL)
        goto error;

    if ((off_ev_name = slot_offset(EventClass, "name")) < 0 ||
        (off_ev_callbacks = slot_offset(EventClass, "callbacks")) < 0 ||
        (off_ev_value = slot_offset(EventClass, "_value")) < 0 ||
        (off_ev_ok = slot_offset(EventClass, "_ok")) < 0 ||
        (off_ev_state = slot_offset(EventClass, "_state")) < 0 ||
        (off_ev_sole_waiter = slot_offset(EventClass, "_sole_waiter")) < 0 ||
        (off_to_delay = slot_offset(TimeoutClass, "delay")) < 0 ||
        (off_pr_send = slot_offset(ProcessClass, "_send")) < 0 ||
        (off_pr_waiting_on = slot_offset(ProcessClass, "_waiting_on")) < 0 ||
        (off_pr_interrupts = slot_offset(ProcessClass, "_interrupts")) < 0 ||
        (off_pr_started = slot_offset(ProcessClass, "_started")) < 0 ||
        (off_sim_now = slot_offset(sim_cls, "now")) < 0 ||
        (off_sim_failures = slot_offset(sim_cls, "_failures")) < 0)
        goto error;

    int_zero = PyLong_FromLong(0);
    int_one = PyLong_FromLong(1);
    int_two = PyLong_FromLong(2);
    empty_string = PyUnicode_InternFromString("");
    s_resume = PyUnicode_InternFromString("_resume");
    s_finish = PyUnicode_InternFromString("_finish");
    s_process_callbacks = PyUnicode_InternFromString("_process_callbacks");
    s_raise_orphans = PyUnicode_InternFromString("_raise_orphans");
    s_state = PyUnicode_InternFromString("_state");
    s_sole_waiter = PyUnicode_InternFromString("_sole_waiter");
    s_callbacks = PyUnicode_InternFromString("callbacks");
    s_waiting_on = PyUnicode_InternFromString("_waiting_on");
    s_append = PyUnicode_InternFromString("append");
    s_value = PyUnicode_InternFromString("value");
    if (int_zero == NULL || int_one == NULL || int_two == NULL ||
        empty_string == NULL || s_resume == NULL || s_finish == NULL ||
        s_process_callbacks == NULL || s_raise_orphans == NULL ||
        s_state == NULL || s_sole_waiter == NULL || s_callbacks == NULL ||
        s_waiting_on == NULL || s_append == NULL || s_value == NULL)
        goto error;

    Py_DECREF(events_mod);
    Py_DECREF(engine_mod);
    Py_DECREF(sim_cls);
    caches_ready = 1;
    return 0;

error:
    Py_XDECREF(events_mod);
    Py_XDECREF(engine_mod);
    Py_XDECREF(sim_cls);
    return -1;
}

/* ------------------------------------------------------------- EventCore */

typedef struct {
    double when;
    unsigned long long seq;
    PyObject *ev;               /* owned */
} heapnode;

typedef struct {
    PyObject_HEAD
    PyObject *sim;              /* owned; part of the sim<->core cycle */
    heapnode *heap;
    Py_ssize_t len;
    Py_ssize_t cap;
    unsigned long long sequence;
    Py_ssize_t pool_limit;
    PyObject *timeout_pool;     /* owned list */
    PyObject *event_pool;       /* owned list */
} EventCoreObject;

static int
heap_push(EventCoreObject *self, double when, PyObject *ev)
{
    heapnode *h;
    Py_ssize_t pos, parent;
    unsigned long long seq;

    if (self->len == self->cap) {
        Py_ssize_t newcap = self->cap ? self->cap * 2 : 64;
        heapnode *grown = PyMem_Realloc(self->heap,
                                        (size_t)newcap * sizeof(heapnode));
        if (grown == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        self->heap = grown;
        self->cap = newcap;
    }
    seq = ++self->sequence;
    h = self->heap;
    pos = self->len++;
    while (pos > 0) {
        parent = (pos - 1) >> 1;
        /* seq is globally increasing: a fresh push can never order
         * before an equal-time node already in the heap. */
        if (when < h[parent].when) {
            h[pos] = h[parent];
            pos = parent;
        }
        else
            break;
    }
    h[pos].when = when;
    h[pos].seq = seq;
    h[pos].ev = ev;
    Py_INCREF(ev);
    return 0;
}

/* Caller guarantees len > 0; returns the heap's (owned) reference. */
static PyObject *
heap_pop_ev(EventCoreObject *self, double *when_out)
{
    heapnode *h = self->heap;
    PyObject *ev = h[0].ev;
    Py_ssize_t n, pos, child;

    *when_out = h[0].when;
    n = --self->len;
    if (n > 0) {
        heapnode last = h[n];
        pos = 0;
        for (;;) {
            child = 2 * pos + 1;
            if (child >= n)
                break;
            if (child + 1 < n &&
                (h[child + 1].when < h[child].when ||
                 (h[child + 1].when == h[child].when &&
                  h[child + 1].seq < h[child].seq)))
                child++;
            if (h[child].when < last.when ||
                (h[child].when == last.when && h[child].seq < last.seq)) {
                h[pos] = h[child];
                pos = child;
            }
            else
                break;
        }
        h[pos] = last;
    }
    return ev;
}

/* `not x` for the callbacks/_interrupts fields (always a list or None
 * in the kernel; generic truth test kept as a fallback). */
static inline int
is_falsy(PyObject *ob)
{
    if (ob == Py_None)
        return 1;
    if (PyList_CheckExact(ob))
        return PyList_GET_SIZE(ob) == 0;
    return PyObject_IsTrue(ob) == 0;
}

static int
set_now(PyObject *sim, double when)
{
    PyObject *f = PyFloat_FromDouble(when);
    PyObject *old;

    if (f == NULL)
        return -1;
    old = SLOT(sim, off_sim_now);
    SLOT(sim, off_sim_now) = f;
    Py_XDECREF(old);
    return 0;
}

/* Register `waiter` on a yielded target through generic attribute
 * access -- the cold path for duck-typed (non-Event) yields, with the
 * exact branch structure of Process._resume. */
static int
register_generic(PyObject *sim, PyObject *waiter, PyObject *target)
{
    PyObject *tstate = PyObject_GetAttr(target, s_state);

    if (tstate == NULL) {
        PyObject *trigger, *msg, *exc, *name, *r;
        if (!PyErr_ExceptionMatches(PyExc_AttributeError))
            return -1;
        PyErr_Clear();
        /* Failing trigger event with the reference TypeError. */
        name = SLOT(waiter, off_ev_name);
        msg = PyUnicode_FromFormat(
            "process %R yielded non-event %R; yield Event/Timeout/Process",
            name, target);
        if (msg == NULL)
            return -1;
        exc = PyObject_CallOneArg(PyExc_TypeError, msg);
        Py_DECREF(msg);
        if (exc == NULL)
            return -1;
        trigger = PyObject_CallOneArg(EventClass, sim);
        if (trigger == NULL) {
            Py_DECREF(exc);
            return -1;
        }
        slot_store(trigger, off_ev_ok, Py_False);
        slot_store(trigger, off_ev_value, exc);
        Py_DECREF(exc);
        r = PyObject_CallMethodObjArgs(waiter, s_resume, trigger, NULL);
        Py_DECREF(trigger);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        return 0;
    }

    {
        int processed = PyObject_RichCompareBool(tstate, int_two, Py_EQ);
        Py_DECREF(tstate);
        if (processed < 0)
            return -1;
        if (processed) {
            PyObject *r = PyObject_CallMethodObjArgs(waiter, s_resume,
                                                     target, NULL);
            if (r == NULL)
                return -1;
            Py_DECREF(r);
            return 0;
        }
    }
    {
        PyObject *tsw = PyObject_GetAttr(target, s_sole_waiter);
        PyObject *tcb;
        int empty_cbs;
        if (tsw == NULL)
            return -1;
        tcb = PyObject_GetAttr(target, s_callbacks);
        if (tcb == NULL) {
            Py_DECREF(tsw);
            return -1;
        }
        empty_cbs = is_falsy(tcb);
        if (tsw == Py_None && empty_cbs) {
            slot_store(waiter, off_pr_waiting_on, target);
            if (PyObject_SetAttr(target, s_sole_waiter, waiter) < 0)
                goto generic_error;
        }
        else {
            PyObject *resume = PyObject_GetAttr(waiter, s_resume);
            PyObject *r;
            if (resume == NULL)
                goto generic_error;
            slot_store(waiter, off_pr_waiting_on, target);
            r = PyObject_CallMethodObjArgs(tcb, s_append, resume, NULL);
            Py_DECREF(resume);
            if (r == NULL)
                goto generic_error;
            Py_DECREF(r);
        }
        Py_DECREF(tsw);
        Py_DECREF(tcb);
        return 0;
    generic_error:
        Py_DECREF(tsw);
        Py_DECREF(tcb);
        return -1;
    }
}

/* Dispatch one popped event (borrowed ref; caller owns it).  Mirrors
 * the inlined loop body of the Python backends' drive(). */
static int
dispatch_event(EventCoreObject *self, PyObject *sim, PyObject *ev)
{
    PyObject *waiter = SLOT(ev, off_ev_sole_waiter);
    PyObject *callbacks = SLOT(ev, off_ev_callbacks);
    PyTypeObject *cls;

    if (waiter == Py_None || !is_falsy(callbacks)) {
        /* Reference path: Event._process_callbacks(). */
        PyObject *r = PyObject_CallMethodNoArgs(ev, s_process_callbacks);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        return 0;
    }

    Py_INCREF(waiter);
    slot_store(ev, off_ev_sole_waiter, Py_None);
    slot_store(ev, off_ev_state, int_two);          /* Event.PROCESSED */

    if (is_falsy(SLOT(waiter, off_pr_interrupts)) &&
        SLOT(ev, off_ev_ok) == Py_True &&
        SLOT(waiter, off_pr_started) == Py_True) {
        /* Inlined Process._resume fast path: an ok trigger into a
         * started, uninterrupted process. */
        PyObject *send = SLOT(waiter, off_pr_send);
        PyObject *val = SLOT(ev, off_ev_value);
        PyObject *target;

        slot_store(waiter, off_pr_waiting_on, Py_None);
        Py_INCREF(send);
        Py_INCREF(val);
        target = PyObject_CallOneArg(send, val);
        Py_DECREF(send);
        Py_DECREF(val);

        if (target == NULL) {
            PyObject *etype, *evalue, *etb, *ok, *finish_val, *r;
            int stopped = PyErr_ExceptionMatches(PyExc_StopIteration);
            PyErr_Fetch(&etype, &evalue, &etb);
            PyErr_NormalizeException(&etype, &evalue, &etb);
            if (etb != NULL && evalue != NULL)
                PyException_SetTraceback(evalue, etb);
            if (stopped) {
                ok = Py_True;
                finish_val = PyObject_GetAttr(evalue, s_value);
                if (finish_val == NULL) {
                    Py_XDECREF(etype);
                    Py_XDECREF(evalue);
                    Py_XDECREF(etb);
                    goto error;
                }
            }
            else {
                /* `except BaseException as exc` in the reference. */
                ok = Py_False;
                finish_val = evalue;
                Py_XINCREF(finish_val);
            }
            Py_XDECREF(etype);
            Py_XDECREF(evalue);
            Py_XDECREF(etb);
            r = PyObject_CallMethodObjArgs(waiter, s_finish, ok,
                                           finish_val, NULL);
            Py_XDECREF(finish_val);
            if (r == NULL)
                goto error;
            Py_DECREF(r);
        }
        else if (PyObject_TypeCheck(target, (PyTypeObject *)EventClass)) {
            PyObject *tstate = SLOT(target, off_ev_state);
            if (tstate == int_two) {
                /* Already processed: delivering it through _resume is
                 * exactly the reference loop's `trigger = target`. */
                PyObject *r = PyObject_CallMethodObjArgs(waiter, s_resume,
                                                         target, NULL);
                if (r == NULL) {
                    Py_DECREF(target);
                    goto error;
                }
                Py_DECREF(r);
            }
            else {
                PyObject *tsw = SLOT(target, off_ev_sole_waiter);
                PyObject *tcb = SLOT(target, off_ev_callbacks);
                if (tsw == Py_None && is_falsy(tcb)) {
                    slot_store(waiter, off_pr_waiting_on, target);
                    slot_store(target, off_ev_sole_waiter, waiter);
                }
                else {
                    PyObject *resume = PyObject_GetAttr(waiter, s_resume);
                    if (resume == NULL) {
                        Py_DECREF(target);
                        goto error;
                    }
                    slot_store(waiter, off_pr_waiting_on, target);
                    if (PyList_CheckExact(tcb)) {
                        if (PyList_Append(tcb, resume) < 0) {
                            Py_DECREF(resume);
                            Py_DECREF(target);
                            goto error;
                        }
                        Py_DECREF(resume);
                    }
                    else {
                        PyObject *r = PyObject_CallMethodObjArgs(
                            tcb, s_append, resume, NULL);
                        Py_DECREF(resume);
                        if (r == NULL) {
                            Py_DECREF(target);
                            goto error;
                        }
                        Py_DECREF(r);
                    }
                }
            }
            Py_DECREF(target);
        }
        else {
            int st = register_generic(sim, waiter, target);
            Py_DECREF(target);
            if (st < 0)
                goto error;
        }
    }
    else {
        /* Cold shapes: the complete reference method. */
        PyObject *r = PyObject_CallMethodObjArgs(waiter, s_resume, ev, NULL);
        if (r == NULL)
            goto error;
        Py_DECREF(r);
    }
    Py_DECREF(waiter);

    /* Free-list recycling: exact class match first, then sole custody
     * (the caller's reference is the only one left). */
    cls = Py_TYPE(ev);
    if (cls == (PyTypeObject *)TimeoutClass) {
        if (Py_REFCNT(ev) == 1 &&
            PyList_GET_SIZE(self->timeout_pool) < self->pool_limit) {
            slot_store(ev, off_ev_value, Py_None);
            slot_store(ev, off_ev_ok, Py_True);
            slot_store(ev, off_ev_name, empty_string);
            if (PyList_Append(self->timeout_pool, ev) < 0)
                return -1;
        }
    }
    else if (cls == (PyTypeObject *)EventClass) {
        if (Py_REFCNT(ev) == 1 &&
            PyList_GET_SIZE(self->event_pool) < self->pool_limit) {
            slot_store(ev, off_ev_value, Py_None);
            slot_store(ev, off_ev_ok, Py_True);
            slot_store(ev, off_ev_name, empty_string);
            if (PyList_Append(self->event_pool, ev) < 0)
                return -1;
        }
    }
    return 0;

error:
    Py_DECREF(waiter);
    return -1;
}

/* ------------------------------------------------------------ tp methods */

static int
core_init(EventCoreObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *sim;
    Py_ssize_t pool_limit;
    static char *kwlist[] = {"sim", "pool_limit", NULL};

    if (!PyArg_ParseTupleAndKeywords(args, kwds, "On:EventCore", kwlist,
                                     &sim, &pool_limit))
        return -1;
    if (ensure_caches() < 0)
        return -1;
    Py_INCREF(sim);
    Py_XSETREF(self->sim, sim);
    self->pool_limit = pool_limit;
    if (self->timeout_pool == NULL) {
        self->timeout_pool = PyList_New(0);
        if (self->timeout_pool == NULL)
            return -1;
    }
    if (self->event_pool == NULL) {
        self->event_pool = PyList_New(0);
        if (self->event_pool == NULL)
            return -1;
    }
    return 0;
}

static int
core_traverse(EventCoreObject *self, visitproc visit, void *arg)
{
    Py_ssize_t i;

    Py_VISIT(self->sim);
    Py_VISIT(self->timeout_pool);
    Py_VISIT(self->event_pool);
    for (i = 0; i < self->len; i++)
        Py_VISIT(self->heap[i].ev);
    return 0;
}

static int
core_clear(EventCoreObject *self)
{
    Py_ssize_t i, n = self->len;

    self->len = 0;
    for (i = 0; i < n; i++)
        Py_CLEAR(self->heap[i].ev);
    Py_CLEAR(self->sim);
    Py_CLEAR(self->timeout_pool);
    Py_CLEAR(self->event_pool);
    return 0;
}

static void
core_dealloc(EventCoreObject *self)
{
    PyObject_GC_UnTrack(self);
    core_clear(self);
    PyMem_Free(self->heap);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static Py_ssize_t
core_length(EventCoreObject *self)
{
    return self->len;
}

static PyObject *
core_push(EventCoreObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    double when;

    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "push() takes exactly 2 arguments (when, event)");
        return NULL;
    }
    when = PyFloat_AsDouble(args[0]);
    if (when == -1.0 && PyErr_Occurred())
        return NULL;
    if (heap_push(self, when, args[1]) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
core_pop(EventCoreObject *self, PyObject *Py_UNUSED(ignored))
{
    double when;
    PyObject *ev, *when_obj, *result;

    if (self->len == 0) {
        PyErr_SetString(PyExc_IndexError, "pop from an empty event core");
        return NULL;
    }
    ev = heap_pop_ev(self, &when);
    when_obj = PyFloat_FromDouble(when);
    if (when_obj == NULL) {
        Py_DECREF(ev);
        return NULL;
    }
    result = PyTuple_New(2);
    if (result == NULL) {
        Py_DECREF(when_obj);
        Py_DECREF(ev);
        return NULL;
    }
    PyTuple_SET_ITEM(result, 0, when_obj);
    PyTuple_SET_ITEM(result, 1, ev);
    return result;
}

static PyObject *
core_peek(EventCoreObject *self, PyObject *Py_UNUSED(ignored))
{
    return PyFloat_FromDouble(self->len ? self->heap[0].when : Py_HUGE_VAL);
}

static PyObject *
core_timeout(EventCoreObject *self, PyObject *const *args, Py_ssize_t nargs,
             PyObject *kwnames)
{
    PyObject *delay_obj = NULL, *value = NULL, *name = NULL;
    Py_ssize_t nkw = kwnames ? PyTuple_GET_SIZE(kwnames) : 0;
    Py_ssize_t i;

    if (nargs >= 1)
        delay_obj = args[0];
    if (nargs >= 2)
        value = args[1];
    if (nargs >= 3)
        name = args[2];
    if (nargs > 3) {
        PyErr_SetString(PyExc_TypeError, "timeout() takes at most 3 arguments");
        return NULL;
    }
    for (i = 0; i < nkw; i++) {
        PyObject *key = PyTuple_GET_ITEM(kwnames, i);
        PyObject *kv = args[nargs + i];
        if (PyUnicode_CompareWithASCIIString(key, "value") == 0)
            value = kv;
        else if (PyUnicode_CompareWithASCIIString(key, "name") == 0)
            name = kv;
        else if (PyUnicode_CompareWithASCIIString(key, "delay") == 0)
            delay_obj = kv;
        else {
            PyErr_Format(PyExc_TypeError,
                         "timeout() got an unexpected keyword argument %R",
                         key);
            return NULL;
        }
    }
    if (delay_obj == NULL) {
        PyErr_SetString(PyExc_TypeError,
                        "timeout() missing required argument: 'delay'");
        return NULL;
    }

    if (PyList_GET_SIZE(self->timeout_pool) > 0 &&
        (value == NULL || value == Py_None) &&
        (name == NULL || name == Py_None ||
         (PyUnicode_CheckExact(name) && PyUnicode_GET_LENGTH(name) == 0))) {
        /* Pooled fast path: the dominant sim.timeout(d) call shape. */
        double delay = PyFloat_AsDouble(delay_obj);
        double now;
        PyObject *timeout;
        Py_ssize_t last;

        if (delay == -1.0 && PyErr_Occurred())
            return NULL;
        if (delay < 0) {
            PyErr_Format(PyExc_ValueError, "negative timeout delay: %S",
                         delay_obj);
            return NULL;
        }
        now = PyFloat_AsDouble(SLOT(self->sim, off_sim_now));
        if (now == -1.0 && PyErr_Occurred())
            return NULL;
        last = PyList_GET_SIZE(self->timeout_pool) - 1;
        timeout = PyList_GET_ITEM(self->timeout_pool, last);
        Py_INCREF(timeout);
        if (PyList_SetSlice(self->timeout_pool, last, last + 1, NULL) < 0) {
            Py_DECREF(timeout);
            return NULL;
        }
        /* Recycled instances were reset on entry to the pool (no
         * callbacks, no waiter, value None, ok True, name ""). */
        slot_store(timeout, off_to_delay, delay_obj);
        slot_store(timeout, off_ev_state, int_one);  /* Event.TRIGGERED */
        if (heap_push(self, now + delay, timeout) < 0) {
            Py_DECREF(timeout);
            return NULL;
        }
        return timeout;
    }

    return PyObject_CallFunctionObjArgs(
        TimeoutClass, self->sim, delay_obj,
        value ? value : Py_None,
        name ? name : empty_string, NULL);
}

/* Pop the last pool entry (caller checked non-empty); returns owned. */
static PyObject *
pool_pop(PyObject *pool)
{
    Py_ssize_t last = PyList_GET_SIZE(pool) - 1;
    PyObject *ev = PyList_GET_ITEM(pool, last);

    Py_INCREF(ev);
    if (PyList_SetSlice(pool, last, last + 1, NULL) < 0) {
        Py_DECREF(ev);
        return NULL;
    }
    return ev;
}

static PyObject *
core_event(EventCoreObject *self, PyObject *const *args, Py_ssize_t nargs,
           PyObject *kwnames)
{
    PyObject *name = NULL;
    Py_ssize_t nkw = kwnames ? PyTuple_GET_SIZE(kwnames) : 0;

    if (nargs >= 1)
        name = args[0];
    if (nargs > 1 || nkw > 1 ||
        (nkw == 1 && (nargs == 1 || PyUnicode_CompareWithASCIIString(
                          PyTuple_GET_ITEM(kwnames, 0), "name") != 0))) {
        PyErr_SetString(PyExc_TypeError,
                        "event() takes one optional argument: name");
        return NULL;
    }
    if (nkw == 1)
        name = args[nargs];
    if (name == NULL)
        name = empty_string;

    if (PyList_GET_SIZE(self->event_pool) > 0) {
        PyObject *ev = pool_pop(self->event_pool);
        if (ev == NULL)
            return NULL;
        slot_store(ev, off_ev_name, name);
        slot_store(ev, off_ev_state, int_zero);      /* Event.PENDING */
        return ev;
    }
    return PyObject_CallFunctionObjArgs(EventClass, self->sim, name, NULL);
}

static PyObject *
core_wakeup(EventCoreObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *process, *name, *ev;
    double now;

    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "wakeup() takes exactly 2 arguments (process, name)");
        return NULL;
    }
    process = args[0];
    name = args[1];

    if (PyList_GET_SIZE(self->event_pool) > 0) {
        ev = pool_pop(self->event_pool);
        if (ev == NULL)
            return NULL;
        slot_store(ev, off_ev_name, name);
    }
    else {
        ev = PyObject_CallFunctionObjArgs(EventClass, self->sim, name, NULL);
        if (ev == NULL)
            return NULL;
    }
    slot_store(ev, off_ev_state, int_one);           /* Event.TRIGGERED */
    slot_store(ev, off_ev_sole_waiter, process);
    now = PyFloat_AsDouble(SLOT(self->sim, off_sim_now));
    if (now == -1.0 && PyErr_Occurred()) {
        Py_DECREF(ev);
        return NULL;
    }
    if (heap_push(self, now, ev) < 0) {
        Py_DECREF(ev);
        return NULL;
    }
    return ev;
}

static PyObject *
core_drive(EventCoreObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    double until;
    PyObject *sim = self->sim;

    if (nargs == 0 || args[0] == Py_None)
        until = Py_HUGE_VAL;
    else {
        until = PyFloat_AsDouble(args[0]);
        if (until == -1.0 && PyErr_Occurred())
            return NULL;
    }

    while (self->len) {
        double when = self->heap[0].when;
        PyObject *ev;

        if (when > until)
            break;
        ev = heap_pop_ev(self, &when);
        if (set_now(sim, when) < 0) {
            Py_DECREF(ev);
            return NULL;
        }
        for (;;) {
            PyObject *fails;

            if (dispatch_event(self, sim, ev) < 0) {
                Py_DECREF(ev);
                return NULL;
            }
            /* Checked per event, not per batch: a waiter must be able
             * to absorb a failure before the failed process's own
             * completion event (same instant) clears its waiter. */
            fails = SLOT(sim, off_sim_failures);
            if (!is_falsy(fails)) {
                PyObject *r = PyObject_CallMethodNoArgs(sim,
                                                        s_raise_orphans);
                if (r == NULL) {
                    Py_DECREF(ev);
                    return NULL;
                }
                Py_DECREF(r);
            }
            Py_DECREF(ev);
            if (self->len && self->heap[0].when == when) {
                double ignored;
                ev = heap_pop_ev(self, &ignored);
            }
            else
                break;
        }
    }
    Py_RETURN_NONE;
}

static PyObject *
core_sequence_get(EventCoreObject *self, void *Py_UNUSED(closure))
{
    return PyLong_FromUnsignedLongLong(self->sequence);
}

static PyObject *
core_repr(EventCoreObject *self)
{
    return PyUnicode_FromFormat("<EventCore pending=%zd seq=%llu>",
                                self->len, self->sequence);
}

static PyMethodDef core_methods[] = {
    {"push", (PyCFunction)(void (*)(void))core_push, METH_FASTCALL,
     "push(when, event)\n\nInsert event at `when` behind all earlier pushes."},
    {"pop", (PyCFunction)core_pop, METH_NOARGS,
     "pop() -> (when, event)\n\nRemove and return the earliest event."},
    {"peek", (PyCFunction)core_peek, METH_NOARGS,
     "peek() -> float\n\nTime of the next event, or inf when empty."},
    {"timeout", (PyCFunction)(void (*)(void))core_timeout,
     METH_FASTCALL | METH_KEYWORDS,
     "timeout(delay, value=None, name='') -> Timeout\n\n"
     "Pooled timeout factory (see HeapqCore.timeout)."},
    {"event", (PyCFunction)(void (*)(void))core_event,
     METH_FASTCALL | METH_KEYWORDS,
     "event(name='') -> Event\n\nPooled pending-event factory."},
    {"wakeup", (PyCFunction)(void (*)(void))core_wakeup, METH_FASTCALL,
     "wakeup(process, name) -> Event\n\n"
     "Pooled, already-triggered direct-resume event at now."},
    {"drive", (PyCFunction)(void (*)(void))core_drive, METH_FASTCALL,
     "drive(until)\n\nDispatch events (to `until`, inclusive); the\n"
     "untraced hot loop (batching, inline resume, recycling)."},
    {NULL, NULL, 0, NULL}
};

static PyMemberDef core_members[] = {
    {"sim", T_OBJECT_EX, offsetof(EventCoreObject, sim), READONLY,
     "Owning simulator."},
    {"timeout_pool", T_OBJECT_EX, offsetof(EventCoreObject, timeout_pool),
     READONLY, "Free-list of recycled Timeout instances."},
    {"event_pool", T_OBJECT_EX, offsetof(EventCoreObject, event_pool),
     READONLY, "Free-list of recycled Event instances."},
    {NULL, 0, 0, 0, NULL}
};

static PyGetSetDef core_getset[] = {
    {"sequence", (getter)core_sequence_get, NULL,
     "Total events ever pushed (the FIFO tie-break counter).", NULL},
    {NULL, NULL, NULL, NULL, NULL}
};

static PySequenceMethods core_as_sequence = {
    .sq_length = (lenfunc)core_length,
};

static PyTypeObject EventCoreType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._eventcore.EventCore",
    .tp_basicsize = sizeof(EventCoreObject),
    .tp_dealloc = (destructor)core_dealloc,
    .tp_repr = (reprfunc)core_repr,
    .tp_as_sequence = &core_as_sequence,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled event core: pending-event heap, free-lists and\n"
              "the untraced dispatch loop, behind the same API as the\n"
              "pure-Python backends in repro.sim.eventcore.",
    .tp_traverse = (traverseproc)core_traverse,
    .tp_clear = (inquiry)core_clear,
    .tp_methods = core_methods,
    .tp_members = core_members,
    .tp_getset = core_getset,
    .tp_init = (initproc)core_init,
    .tp_new = PyType_GenericNew,
};

/* ---------------------------------------------------------------- module */

static struct PyModuleDef eventcore_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._eventcore",
    .m_doc = "Compiled event-core backend for the simulator kernel.",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__eventcore(void)
{
    PyObject *module, *backend;

    if (PyType_Ready(&EventCoreType) < 0)
        return NULL;
    backend = PyUnicode_InternFromString("compiled");
    if (backend == NULL)
        return NULL;
    if (PyDict_SetItemString(EventCoreType.tp_dict, "backend", backend) < 0) {
        Py_DECREF(backend);
        return NULL;
    }
    Py_DECREF(backend);

    module = PyModule_Create(&eventcore_module);
    if (module == NULL)
        return NULL;
    Py_INCREF(&EventCoreType);
    if (PyModule_AddObject(module, "EventCore",
                           (PyObject *)&EventCoreType) < 0) {
        Py_DECREF(&EventCoreType);
        Py_DECREF(module);
        return NULL;
    }
    if (PyModule_AddStringConstant(module, "__version__",
                                   EVENTCORE_VERSION) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
