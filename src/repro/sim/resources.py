"""Contention primitives: Resource, Store, Pipe.

These model the queueing points in a storage stack:

* :class:`Resource` — a counted semaphore (e.g. a disk head, a tag queue).
* :class:`Store` — a FIFO buffer of items (e.g. a request queue).
* :class:`Pipe` — a byte pipe with finite bandwidth (e.g. a SATA link).
"""

from __future__ import annotations

import typing
from collections import deque
from typing import Any, Callable, Optional

from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator

__all__ = ["Pipe", "Resource", "Store"]


class Resource:
    """A semaphore with ``capacity`` slots and a FIFO wait queue.

    Usage pattern inside a process::

        grant = resource.request()
        yield grant
        try:
            ...  # hold the resource
        finally:
            resource.release()
    """

    __slots__ = ("sim", "capacity", "name", "_in_use", "_waiters",
                 "_grant_name")

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[Event] = deque()
        #: precomputed once — request() runs once per grant, and the
        #: f-string per call was measurable across millions of requests
        self._grant_name = f"grant:{name}"

    @property
    def in_use(self) -> int:
        """Number of currently-held slots."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of processes waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that fires when a slot is granted."""
        grant = self.sim.event(self._grant_name)
        if self._in_use < self.capacity:
            self._in_use += 1
            grant.succeed(self)
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Free one slot, waking the longest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError(f"release() on idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot straight to the next waiter.
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1

    def __repr__(self) -> str:
        return (f"<Resource {self.name!r} {self._in_use}/{self.capacity}"
                f" queued={len(self._waiters)}>")


class Store:
    """A FIFO buffer of items with optional capacity.

    ``put`` blocks when the store is full; ``get`` blocks when empty.
    An optional ``priority`` key on get is intentionally *not* provided:
    scheduling policies live in the disk/host layers, not the kernel.
    """

    __slots__ = ("sim", "capacity", "name", "_items", "_getters",
                 "_putters", "_put_name", "_get_name")

    def __init__(self, sim: "Simulator", capacity: Optional[int] = None,
                 name: str = ""):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()
        self._put_name = f"put:{name}"
        self._get_name = f"get:{name}"

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of buffered items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Return an event that fires once ``item`` is accepted."""
        done = self.sim.event(self._put_name)
        if self._getters:
            # Direct hand-off: never buffers, preserves FIFO.
            self._getters.popleft().succeed(item)
            done.succeed(item)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            done.succeed(item)
        else:
            self._putters.append((done, item))
        return done

    def get(self) -> Event:
        """Return an event that fires with the oldest item."""
        want = self.sim.event(self._get_name)
        if self._items:
            want.succeed(self._items.popleft())
            self._admit_waiting_putter()
        else:
            self._getters.append(want)
        return want

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; returns None when empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        self._admit_waiting_putter()
        return item

    def _admit_waiting_putter(self) -> None:
        if self._putters and (
                self.capacity is None or len(self._items) < self.capacity):
            done, item = self._putters.popleft()
            self._items.append(item)
            done.succeed(item)

    def __repr__(self) -> str:
        cap = "inf" if self.capacity is None else str(self.capacity)
        return f"<Store {self.name!r} {len(self._items)}/{cap}>"


class Pipe:
    """A shared byte pipe with a fixed bandwidth in bytes/second.

    Transfers are serialised FIFO: a transfer of ``nbytes`` holds the pipe
    for ``nbytes / bandwidth`` seconds. This deliberately models a
    store-and-forward link (SATA, PCI-X burst) rather than fair sharing;
    fair sharing at these timescales gives the same aggregate numbers but
    costs far more events.
    """

    __slots__ = ("sim", "bandwidth", "per_transfer_overhead", "name",
                 "_lock", "bytes_moved", "transfers", "busy_time")

    def __init__(self, sim: "Simulator", bandwidth: float,
                 per_transfer_overhead: float = 0.0, name: str = ""):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if per_transfer_overhead < 0:
            raise ValueError("per_transfer_overhead must be >= 0")
        self.sim = sim
        self.bandwidth = float(bandwidth)
        self.per_transfer_overhead = float(per_transfer_overhead)
        self.name = name
        self._lock = Resource(sim, capacity=1, name=f"pipe:{name}")
        self.bytes_moved = 0
        self.transfers = 0
        self.busy_time = 0.0

    def transfer_time(self, nbytes: int) -> float:
        """Pure service time for ``nbytes`` (no queueing)."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        return self.per_transfer_overhead + nbytes / self.bandwidth

    def transfer(self, nbytes: int):
        """Process generator: move ``nbytes`` through the pipe.

        Usage: ``yield from pipe.transfer(nbytes)`` or
        ``yield sim.process(pipe.transfer(nbytes))``.
        """
        grant = self._lock.request()
        yield grant
        try:
            # Inlined transfer_time(): one transfer per disk request.
            if nbytes < 0:
                raise ValueError(f"negative transfer size: {nbytes}")
            service = self.per_transfer_overhead + nbytes / self.bandwidth
            yield self.sim.timeout(service)
            self.bytes_moved += nbytes
            self.transfers += 1
            self.busy_time += service
        finally:
            self._lock.release()

    @property
    def utilization_to(self) -> Callable[[float], float]:
        """Return a function mapping elapsed seconds → utilisation fraction."""
        def util(elapsed: float) -> float:
            return self.busy_time / elapsed if elapsed > 0 else 0.0
        return util

    def __repr__(self) -> str:
        return (f"<Pipe {self.name!r} {self.bandwidth / 1e6:.0f} MB/s "
                f"moved={self.bytes_moved}>")
