"""Event primitives for the discrete-event kernel.

Everything a process can ``yield`` is an :class:`Event`. An event moves
through three states:

* *pending* — created, not yet triggered;
* *triggered* — scheduled on the simulator's event heap with a value;
* *processed* — callbacks ran, waiting processes resumed.

Events are single-shot: triggering a triggered event raises
:class:`EventAlreadyTriggered`.
"""

from __future__ import annotations

import typing
from typing import Any, Callable, Generator, Iterable, Optional

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Event",
    "EventAlreadyTriggered",
    "Interrupt",
    "Process",
    "ProcessGenerator",
    "Timeout",
]

#: Type of the generator a :class:`Process` runs.
ProcessGenerator = Generator["Event", Any, Any]


class EventAlreadyTriggered(RuntimeError):
    """Raised when an event is triggered (succeed/fail) more than once."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the interrupter's reason object.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Optional label used in tracing and ``repr``.
    """

    __slots__ = ("sim", "name", "callbacks", "_value", "_ok", "_state")

    PENDING = 0
    TRIGGERED = 1
    PROCESSED = 2

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        #: callables invoked with the event when it is processed
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = Event.PENDING

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._state >= Event.TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have run and waiters resumed."""
        return self._state == Event.PROCESSED

    @property
    def ok(self) -> bool:
        """True when the event succeeded (valid only once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (result or exception)."""
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self._state != Event.PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._state = Event.TRIGGERED
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception, raised in waiting processes."""
        if self._state != Event.PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = Event.TRIGGERED
        self.sim._schedule(self, delay)
        return self

    # -- kernel hook ---------------------------------------------------------
    def _process_callbacks(self) -> None:
        """Run callbacks exactly once; called by the simulator core.

        Hot path: the overwhelmingly common case is a single waiter (one
        process blocked on one event), so that case dispatches directly
        without iterating.
        """
        self._state = 2  # Event.PROCESSED
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            if len(callbacks) == 1:
                callbacks[0](self)
            else:
                for callback in callbacks:
                    callback(self)

    def __repr__(self) -> str:
        state = {0: "pending", 1: "triggered", 2: "processed"}[self._state]
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    ``__init__`` bypasses :meth:`Event.__init__` and sets the slots
    directly: experiments create tens of millions of timeouts, and the
    default display name (``timeout(<delay>)``) is now computed lazily in
    ``__repr__`` instead of eagerly formatting a string per instance.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 name: str = ""):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.sim = sim
        self.name = name
        self.callbacks = []
        self._value = value
        self._ok = True
        self._state = 1  # Event.TRIGGERED
        self.delay = delay
        sim._schedule(self, delay)

    def __repr__(self) -> str:
        state = {0: "pending", 1: "triggered", 2: "processed"}[self._state]
        label = f" {self.name!r}" if self.name else f" ({self.delay:g}s)"
        return f"<{type(self).__name__}{label} {state}>"


class Process(Event):
    """A running generator; itself an event that fires when it returns.

    The process's value is the generator's return value; an uncaught
    exception inside the generator fails the process event (and propagates
    to the simulator if nobody is waiting).
    """

    __slots__ = ("generator", "_waiting_on", "_interrupts", "_started")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError(
                f"process() needs a generator, got {type(generator).__name__}"
            )
        super().__init__(sim, name=name or getattr(
            generator, "__name__", "process"))
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        self._interrupts: list[Interrupt] = []
        self._started = False
        # Bootstrap: resume on the next kernel step. The name is static:
        # one bootstrap exists per process (millions per experiment), and
        # the owning process is recoverable from the callback.
        bootstrap = Event(sim, name="init")
        bootstrap.callbacks.append(self._resume)
        bootstrap._ok = True
        bootstrap._state = Event.TRIGGERED
        sim._schedule(bootstrap, 0.0)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == Event.PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a finished process is a no-op.
        """
        if not self.is_alive:
            return
        self._interrupts.append(Interrupt(cause))
        if self._waiting_on is not None:
            target, self._waiting_on = self._waiting_on, None
            # Detach: the process no longer cares about that event.
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        wakeup = Event(self.sim, name=f"interrupt:{self.name}")
        wakeup.callbacks.append(self._resume)
        wakeup._ok = True
        wakeup._state = Event.TRIGGERED
        self.sim._schedule(wakeup, 0.0)

    # -- kernel stepping ----------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        """Advance the generator with the trigger's value or exception.

        This runs once per process wake-up — millions of times per
        experiment point — so the generator and its bound ``send`` are
        cached in locals and state constants are compared as plain ints.
        """
        self._waiting_on = None
        generator = self.generator
        send = generator.send
        while True:
            try:
                if self._interrupts and self._started:
                    # Interrupts can only be thrown into a generator that
                    # has reached its first yield; ones arriving earlier
                    # wait for the wakeup after the bootstrap resume.
                    interrupt = self._interrupts.pop(0)
                    target = generator.throw(interrupt)
                elif trigger._ok:
                    if self._started:
                        target = send(trigger._value)
                    else:
                        target = send(None)
                        self._started = True
                else:
                    target = generator.throw(trigger._value)
            except StopIteration as stop:
                self._finish(True, stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - process failure
                self._finish(False, exc)
                return

            if not isinstance(target, Event):
                exc = TypeError(
                    f"process {self.name!r} yielded non-event "
                    f"{target!r}; yield Event/Timeout/Process"
                )
                trigger = Event(self.sim)
                trigger._ok = False
                trigger._value = exc
                continue
            if target._state == 2:  # Event.PROCESSED
                # Already done: loop immediately with its value.
                trigger = target
                continue
            self._waiting_on = target
            target.callbacks.append(self._resume)
            return

    def _finish(self, ok: bool, value: Any) -> None:
        if self._state != Event.PENDING:
            return
        self._ok = ok
        self._value = value
        self._state = Event.TRIGGERED
        if not ok:
            self.sim._register_failure(self)
        self.sim._schedule(self, 0.0)


class Condition(Event):
    """Base for composite events over a set of child events."""

    __slots__ = ("events", "_pending_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event],
                 name: str = ""):
        super().__init__(sim, name=name)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise ValueError("condition mixes events from simulators")
        self._pending_count = 0
        for event in self.events:
            if event.processed:
                self._child_done(event)
            else:
                self._pending_count += 1
                event.callbacks.append(self._child_done)
        self._check_initial()

    def _check_initial(self) -> None:
        """Trigger immediately if the condition already holds."""
        raise NotImplementedError

    def _child_done(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events if e.triggered and e._ok}


class AllOf(Condition):
    """Fires when *all* child events have fired; value maps event→value.

    Fails fast with the first child failure.
    """

    __slots__ = ()

    def _check_initial(self) -> None:
        if not self.events and self._state == Event.PENDING:
            self.succeed({})

    def _child_done(self, event: Event) -> None:
        if self._state != Event.PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._pending_count -= 1
        if self._pending_count <= 0:
            self.succeed(self._collect())


class AnyOf(Condition):
    """Fires when *any* child event fires; value maps fired event→value."""

    __slots__ = ()

    def _check_initial(self) -> None:
        if self._state == Event.PENDING:
            done = [e for e in self.events if e.processed]
            if done:
                self.succeed({e: e._value for e in done})
            elif not self.events:
                self.succeed({})

    def _child_done(self, event: Event) -> None:
        if self._state != Event.PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed({event: event._value})
