"""Event primitives for the discrete-event kernel.

Everything a process can ``yield`` is an :class:`Event`. An event moves
through three states:

* *pending* — created, not yet triggered;
* *triggered* — scheduled on the simulator's event heap with a value;
* *processed* — callbacks ran, waiting processes resumed.

Events are single-shot: triggering a triggered event raises
:class:`EventAlreadyTriggered`.
"""

from __future__ import annotations

import typing
from typing import Any, Callable, Generator, Iterable, Optional

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Event",
    "EventAlreadyTriggered",
    "Interrupt",
    "Process",
    "ProcessGenerator",
    "Timeout",
]

#: Type of the generator a :class:`Process` runs.
ProcessGenerator = Generator["Event", Any, Any]


class EventAlreadyTriggered(RuntimeError):
    """Raised when an event is triggered (succeed/fail) more than once."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the interrupter's reason object.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    Waiter registration has two tiers. The overwhelmingly common case —
    exactly one :class:`Process` blocked on the event — is stored in the
    ``_sole_waiter`` slot, which the kernel dispatches *directly* (no
    callback-list append, no list copy, no indirection through a bound
    method). Everything else (conditions, external observers, second and
    later waiters) goes on the ``callbacks`` list. Dispatch order is
    registration order: the sole waiter registered first, so it always
    resumes before the callbacks run.

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Optional label used in tracing and ``repr``.
    """

    __slots__ = ("sim", "name", "callbacks", "_value", "_ok", "_state",
                 "_sole_waiter")

    PENDING = 0
    TRIGGERED = 1
    PROCESSED = 2

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        #: callables invoked with the event when it is processed
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = Event.PENDING
        #: the single Process resumed directly by the kernel (fast path)
        self._sole_waiter: Optional["Process"] = None

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._state >= Event.TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have run and waiters resumed."""
        return self._state == Event.PROCESSED

    @property
    def ok(self) -> bool:
        """True when the event succeeded (valid only once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (result or exception)."""
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``.

        The delay handling is inlined (rather than delegated to
        ``Simulator._schedule``) because grants, store hand-offs and
        completion events all funnel through here with ``delay=0``;
        ``sim._push`` is the active event core's bound push method.
        """
        if self._state != 0:  # Event.PENDING
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._state = 1  # Event.TRIGGERED
        sim = self.sim
        if delay:
            if delay < 0:
                raise ValueError(f"negative schedule delay: {delay}")
            when = sim.now + delay
        else:
            when = sim.now
        sim._push(when, self)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception, raised in waiting processes."""
        if self._state != Event.PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = Event.TRIGGERED
        self.sim._schedule(self, delay)
        return self

    # -- kernel hook ---------------------------------------------------------
    def _process_callbacks(self) -> None:
        """Resume waiters exactly once; called by the simulator core.

        Hot path: the overwhelmingly common case is a single process
        blocked on the event, held in ``_sole_waiter`` and resumed
        directly — no list copy, no iteration, no bound-method
        indirection. The callbacks list (conditions, observers, extra
        waiters) runs afterwards, preserving registration order.
        ``Simulator.run`` inlines the sole-waiter branch; this method is
        the complete reference used by ``step()`` and the slow paths.
        """
        self._state = 2  # Event.PROCESSED
        waiter = self._sole_waiter
        if waiter is not None:
            self._sole_waiter = None
            waiter._resume(self)
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            if len(callbacks) == 1:
                callbacks[0](self)
            else:
                for callback in callbacks:
                    callback(self)

    def __repr__(self) -> str:
        state = {0: "pending", 1: "triggered", 2: "processed"}[self._state]
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    ``__init__`` bypasses :meth:`Event.__init__` and sets the slots
    directly: experiments create tens of millions of timeouts, and the
    default display name (``timeout(<delay>)``) is now computed lazily in
    ``__repr__`` instead of eagerly formatting a string per instance.

    Instances may additionally be *recycled* through the simulator's
    timeout free-list (see ``Simulator.timeout``): the kernel's run loop
    returns a processed timeout to the pool only when it can prove no
    user code still references it, so a held reference never observes
    reuse.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 name: str = ""):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.sim = sim
        self.name = name
        self.callbacks = []
        self._value = value
        self._ok = True
        self._state = 1  # Event.TRIGGERED
        self._sole_waiter = None
        self.delay = delay
        # Direct core push (delay already validated above).
        sim._push(sim.now + delay, self)

    def __repr__(self) -> str:
        state = {0: "pending", 1: "triggered", 2: "processed"}[self._state]
        label = f" {self.name!r}" if self.name else f" ({self.delay:g}s)"
        return f"<{type(self).__name__}{label} {state}>"


class Process(Event):
    """A running generator; itself an event that fires when it returns.

    The process's value is the generator's return value; an uncaught
    exception inside the generator fails the process event (and propagates
    to the simulator if nobody is waiting).
    """

    __slots__ = ("generator", "_send", "_waiting_on", "_interrupts",
                 "_started")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError(
                f"process() needs a generator, got {type(generator).__name__}"
            )
        # Inlined Event.__init__ (one Process per request, millions per
        # experiment; the super() call and the name getattr were
        # measurable when a name is supplied, as all hot paths do).
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self.callbacks = []
        self._value = None
        self._ok = True
        self._state = 0  # Event.PENDING
        self._sole_waiter = None
        self.generator = generator
        #: the generator's bound ``send``, captured once — re-creating
        #: the bound-method object on every wake-up is an allocation on
        #: the kernel's hottest path.
        self._send = generator.send
        self._waiting_on: Optional[Event] = None
        #: created lazily on the first interrupt (rare path)
        self._interrupts: Optional[list[Interrupt]] = None
        self._started = False
        # Bootstrap: resume on the next kernel step via a pooled,
        # already-triggered wakeup event that direct-resumes this
        # process. The name is static: one bootstrap exists per process
        # and the owning process is recoverable from the waiter slot.
        sim._wakeup(self, "init")

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == 0  # Event.PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a finished process is a no-op.
        """
        if not self.is_alive:
            return
        if self._interrupts is None:
            self._interrupts = []
        self._interrupts.append(Interrupt(cause))
        if self._waiting_on is not None:
            target, self._waiting_on = self._waiting_on, None
            # Detach: the process no longer cares about that event.
            if target._sole_waiter is self:
                target._sole_waiter = None
            else:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self.sim._wakeup(self, f"interrupt:{self.name}")

    # -- kernel stepping ----------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        """Advance the generator with the trigger's value or exception.

        This runs once per process wake-up — millions of times per
        experiment point — so the bound ``send`` captured at construction
        is loaded from its slot (no per-resume bound-method allocation)
        and state constants are compared as plain ints. ``throw`` stays a
        lazy attribute load: it only runs on the rare interrupt/failure
        paths.
        """
        self._waiting_on = None
        send = self._send
        while True:
            try:
                if self._interrupts and self._started:
                    # Interrupts can only be thrown into a generator that
                    # has reached its first yield; ones arriving earlier
                    # wait for the wakeup after the bootstrap resume.
                    interrupt = self._interrupts.pop(0)
                    target = self.generator.throw(interrupt)
                elif trigger._ok:
                    if self._started:
                        target = send(trigger._value)
                    else:
                        target = send(None)
                        self._started = True
                else:
                    target = self.generator.throw(trigger._value)
            except StopIteration as stop:
                self._finish(True, stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - process failure
                self._finish(False, exc)
                return

            # The ``_state`` load doubles as the type check: every Event
            # has the slot, and a non-event yield raises AttributeError
            # (zero-cost try on 3.11 — cheaper than an isinstance call
            # on this per-yield path).
            try:
                if target._state == 2:  # Event.PROCESSED
                    # Already done: loop immediately with its value.
                    trigger = target
                    continue
            except AttributeError:
                exc = TypeError(
                    f"process {self.name!r} yielded non-event "
                    f"{target!r}; yield Event/Timeout/Process"
                )
                trigger = Event(self.sim)
                trigger._ok = False
                trigger._value = exc
                continue
            self._waiting_on = target
            # First waiter on a virgin event: take the direct-resume
            # slot (the kernel dispatches it without touching the
            # callbacks list). Later registrants keep FIFO order by
            # appending behind it.
            if target._sole_waiter is None and not target.callbacks:
                target._sole_waiter = self
            else:
                target.callbacks.append(self._resume)
            return

    def _finish(self, ok: bool, value: Any) -> None:
        if self._state != 0:  # Event.PENDING
            return
        self._ok = ok
        self._value = value
        self._state = 1  # Event.TRIGGERED
        sim = self.sim
        if not ok:
            sim._register_failure(self)
        # Direct core push (sim._schedule(self, 0.0) minus validation).
        sim._push(sim.now, self)


class Condition(Event):
    """Base for composite events over a set of child events."""

    __slots__ = ("events", "_pending_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event],
                 name: str = ""):
        super().__init__(sim, name=name)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise ValueError("condition mixes events from simulators")
        self._pending_count = 0
        for event in self.events:
            if event.processed:
                self._child_done(event)
            else:
                self._pending_count += 1
                event.callbacks.append(self._child_done)
        self._check_initial()

    def _check_initial(self) -> None:
        """Trigger immediately if the condition already holds."""
        raise NotImplementedError

    def _child_done(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events if e.triggered and e._ok}


class AllOf(Condition):
    """Fires when *all* child events have fired; value maps event→value.

    Fails fast with the first child failure.
    """

    __slots__ = ()

    def _check_initial(self) -> None:
        if not self.events and self._state == Event.PENDING:
            self.succeed({})

    def _child_done(self, event: Event) -> None:
        if self._state != Event.PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._pending_count -= 1
        if self._pending_count <= 0:
            self.succeed(self._collect())


class AnyOf(Condition):
    """Fires when *any* child event fires; value maps fired event→value."""

    __slots__ = ()

    def _check_initial(self) -> None:
        if self._state == Event.PENDING:
            done = [e for e in self.events if e.processed]
            if done:
                self.succeed({e: e._value for e in done})
            elif not self.events:
                self.succeed({})

    def _child_done(self, event: Event) -> None:
        if self._state != Event.PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed({event: event._value})
