"""The simulator core: clock, event heap, and run loop.

The ``run()`` loop is the hottest code in the repository — every
experiment point pushes millions of events through it — so it trades a
little repetition for speed:

* the heap, ``heappop`` and the free-lists are bound to locals outside
  the loop, and the tracing branch is hoisted out of the no-trace path
  entirely;
* events sharing the head timestamp drain in one inner batch (one
  ``self.now`` store and one ``until`` comparison per batch — disk
  completions and bus grants cluster at identical instants; the cheap
  failures check stays per-event so same-instant waiters absorb
  failures exactly as the per-event reference loop would);
* the single-waiter case (one process blocked on one event) dispatches
  *directly* from the pop loop via the event's ``_sole_waiter`` slot,
  skipping the callback-list machinery;
* processed ``Timeout``/bootstrap events are recycled through bounded
  free-lists instead of being reallocated, but only when
  ``sys.getrefcount`` proves no user code still holds them — a held
  reference never observes reuse, and traced runs never recycle at all.

Per-event work is inlined rather than delegated to
:meth:`Simulator.step`, which remains the readable single-step reference
implementation (``tests/test_sim_kernel_equivalence.py`` pins the two
paths to identical traces).
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Any, Iterable, Optional

from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Process,
    ProcessGenerator,
    Timeout,
)

__all__ = ["Simulator", "SimulationError"]

try:  # CPython: exact liveness check for free-list recycling.
    from sys import getrefcount as _getrefcount
except ImportError:  # pragma: no cover - PyPy etc: never recycle
    def _getrefcount(_obj: Any) -> int:
        return -1

#: Upper bound on each free-list; reuse is immediate, so a small cap
#: suffices and bounds worst-case retained memory.
_POOL_LIMIT = 1024


class SimulationError(RuntimeError):
    """An unhandled exception escaped a process with no waiter."""


class Simulator:
    """Discrete-event simulator with a float-seconds clock.

    Events scheduled for the same instant are processed in FIFO order of
    scheduling, which makes runs deterministic.

    Parameters
    ----------
    start_time:
        Initial clock value in seconds (default ``0.0``).
    trace:
        Optional :class:`repro.sim.trace.Tracer` receiving kernel records.
    """

    __slots__ = ("now", "trace", "_heap", "_sequence", "_failures",
                 "_active", "_timeout_pool", "_event_pool")

    def __init__(self, start_time: float = 0.0, trace: Any = None):
        self.now: float = float(start_time)
        self.trace = trace
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._failures: list[Process] = []
        self._active = True
        #: free-lists of processed, provably-unreferenced events
        self._timeout_pool: list[Timeout] = []
        self._event_pool: list[Event] = []

    # -- factory helpers -----------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a pending :class:`Event` owned by this simulator.

        Draws from the event free-list when recycled instances are
        available: completion events (one per request in every device
        layer) and bare synchronisation events are the second-hottest
        allocation site after timeouts.
        """
        pool = self._event_pool
        if pool:
            event = pool.pop()
            # Pool entries are reset on entry (no callbacks, no waiter,
            # value None, ok True); only name and state need setting.
            event.name = name
            event._state = 0  # Event.PENDING
            return event
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None,
                name: str = "") -> Timeout:
        """Create an event that fires ``delay`` seconds from now.

        The dominant call shape (``sim.timeout(d)`` with no value and no
        name) draws from the simulator's timeout free-list when recycled
        instances are available, skipping object allocation entirely.
        """
        pool = self._timeout_pool
        if pool and value is None and not name:
            if delay < 0:
                raise ValueError(f"negative timeout delay: {delay}")
            timeout = pool.pop()
            # Recycled instances were reset on entry to the pool
            # (no callbacks, no waiter, value None, ok True, name "").
            timeout.delay = delay
            timeout._state = 1  # Event.TRIGGERED
            self._sequence = sequence = self._sequence + 1
            heappush(self._heap, (self.now + delay, sequence, timeout))
            return timeout
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start ``generator`` as a process; returns the joinable Process."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event], name: str = "") -> AllOf:
        """Event that fires when every event in ``events`` has fired."""
        return AllOf(self, events, name=name)

    def any_of(self, events: Iterable[Event], name: str = "") -> AnyOf:
        """Event that fires when the first of ``events`` fires."""
        return AnyOf(self, events, name=name)

    # -- kernel internals ------------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        """Place a triggered event on the heap ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative schedule delay: {delay}")
        self._sequence = sequence = self._sequence + 1
        heappush(self._heap, (self.now + delay, sequence, event))

    def _wakeup(self, process: Process, name: str) -> Event:
        """Schedule an already-triggered event that direct-resumes
        ``process`` on the next kernel step (bootstrap / interrupt).

        Draws from the event free-list when possible — process bootstrap
        is one of the kernel's hottest allocation sites.
        """
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.name = name
            event._state = 1  # Event.TRIGGERED
        else:
            event = Event(self, name=name)
            event._state = 1
        event._sole_waiter = process
        self._sequence = sequence = self._sequence + 1
        heappush(self._heap, (self.now, sequence, event))
        return event

    def _register_failure(self, process: Process) -> None:
        """Remember a failed process so unhandled errors surface in run()."""
        self._failures.append(process)

    # -- running ----------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        """Number of triggered-but-unprocessed events."""
        return len(self._heap)

    @property
    def idle(self) -> bool:
        """True when no events remain — the drain condition self-
        terminating housekeeping loops (server GC, the observability
        telemetry sampler) test before rescheduling themselves."""
        return not self._heap

    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` when idle."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it).

        This is the readable reference path: no batching, no free-list
        recycling, one event per call. ``run()`` must stay semantically
        equivalent to repeated ``step()`` calls (pinned by
        ``tests/test_sim_kernel_equivalence.py``).
        """
        when, _seq, event = heapq.heappop(self._heap)
        self.now = when
        if self.trace is not None:
            self.trace.kernel(self.now, event)
        event._process_callbacks()
        self._raise_orphans()

    def _raise_orphans(self) -> None:
        """Raise for failed processes whose exception nobody consumed."""
        if not self._failures:
            return
        failures, self._failures = self._failures, []
        for process in failures:
            # A waiter registered during callback processing absorbs it.
            if process.callbacks or process._sole_waiter is not None:
                continue
            raise SimulationError(
                f"unhandled exception in process {process.name!r}"
            ) from process.value

    def _recycle(self, event: Event) -> None:
        """Return a processed, dispatch-complete event to its free-list.

        Caller guarantees: state is PROCESSED, no waiter, no callbacks,
        and (via ``sys.getrefcount``) no outstanding user references.
        """
        cls = event.__class__
        if cls is Timeout:
            pool = self._timeout_pool
        elif cls is Event:
            pool = self._event_pool
        else:
            return
        if len(pool) < _POOL_LIMIT:
            event._value = None
            event._ok = True
            event.name = ""
            pool.append(event)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or the clock passes ``until``.

        Returns the final clock value.

        ``until`` semantics (pinned by ``tests/test_sim_run_until.py``):

        * Events scheduled *exactly at* ``until`` **are** processed; the
          loop only stops at the first event strictly later than
          ``until``. Equal-time events keep their FIFO order.
        * When the heap drains before ``until`` (or holds only later
          events), the clock is still advanced exactly to ``until`` —
          ``run(until=t)`` always returns with ``now == t`` when
          ``t >= now`` at entry, even if nothing fired.
        * ``until`` earlier than the current clock raises ``ValueError``.

        This is the kernel's hot loop; see the module docstring for the
        fast paths (same-timestamp batching, direct resume, free-list
        recycling). All of them preserve the observable ``(time, seq)``
        FIFO order; events a dispatched process schedules at the current
        instant join the tail of the running batch exactly as they would
        have been popped next by the per-event loop.
        """
        heap = self._heap
        pop = heappop
        trace = self.trace
        getref = _getrefcount
        tpool = self._timeout_pool
        epool = self._event_pool
        limit = _POOL_LIMIT
        # self._failures keeps its identity until _raise_orphans swaps it
        # (and _raise_orphans is only entered when it is non-empty), so a
        # local alias is safe as long as it is re-bound after each call.
        failures = self._failures
        if until is None:
            if trace is None:
                while heap:
                    when, _seq, event = pop(heap)
                    self.now = when
                    while True:
                        waiter = event._sole_waiter
                        if waiter is not None and not event.callbacks:
                            # Direct resume (inlined fast path of
                            # Event._process_callbacks).
                            event._sole_waiter = None
                            event._state = 2  # Event.PROCESSED
                            waiter._resume(event)
                            # Inlined _recycle: class test first so
                            # non-poolable events skip the refcount call.
                            cls = event.__class__
                            if cls is Timeout:
                                if getref(event) == 2 and len(tpool) < limit:
                                    # Only the loop local + getrefcount's
                                    # argument reference it: recyclable.
                                    event._value = None
                                    event._ok = True
                                    event.name = ""
                                    tpool.append(event)
                            elif cls is Event:
                                if getref(event) == 2 and len(epool) < limit:
                                    event._value = None
                                    event._ok = True
                                    event.name = ""
                                    epool.append(event)
                        else:
                            event._process_callbacks()
                        if failures:
                            # Checked per event, not per batch: a waiter
                            # must be able to absorb a failure *before*
                            # the failed process's own completion event
                            # (same instant) clears its waiter slot.
                            self._raise_orphans()
                            failures = self._failures
                        if heap and heap[0][0] == when:
                            event = pop(heap)[2]
                        else:
                            break
            else:
                while heap:
                    when, _seq, event = pop(heap)
                    self.now = when
                    trace.kernel(when, event)
                    event._process_callbacks()
                    if self._failures:
                        self._raise_orphans()
            return self.now

        if until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        if trace is None:
            while heap and heap[0][0] <= until:
                when, _seq, event = pop(heap)
                self.now = when
                while True:
                    waiter = event._sole_waiter
                    if waiter is not None and not event.callbacks:
                        event._sole_waiter = None
                        event._state = 2  # Event.PROCESSED
                        waiter._resume(event)
                        cls = event.__class__
                        if cls is Timeout:
                            if getref(event) == 2 and len(tpool) < limit:
                                event._value = None
                                event._ok = True
                                event.name = ""
                                tpool.append(event)
                        elif cls is Event:
                            if getref(event) == 2 and len(epool) < limit:
                                event._value = None
                                event._ok = True
                                event.name = ""
                                epool.append(event)
                    else:
                        event._process_callbacks()
                    if failures:
                        self._raise_orphans()
                        failures = self._failures
                    if heap and heap[0][0] == when:
                        event = pop(heap)[2]
                    else:
                        break
        else:
            while heap and heap[0][0] <= until:
                when, _seq, event = pop(heap)
                self.now = when
                trace.kernel(when, event)
                event._process_callbacks()
                if self._failures:
                    self._raise_orphans()
        if until > self.now:
            self.now = until
        return self.now

    def run_until_event(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` is processed; return its value.

        Raises the event's exception if it failed, or ``TimeoutError`` if
        ``limit`` seconds of simulated time pass first.
        """
        while not event.processed:
            if not self._heap:
                raise SimulationError(
                    f"simulation drained before {event!r} fired"
                )
            if limit is not None and self._heap[0][0] > limit:
                raise TimeoutError(
                    f"{event!r} not processed by simulated t={limit}"
                )
            self.step()
        if not event.ok:
            raise event.value
        return event.value

    def __repr__(self) -> str:
        return f"<Simulator t={self.now:g} queued={len(self._heap)}>"
