"""The simulator core: clock, event heap, and run loop.

The ``run()`` loop is the hottest code in the repository — every
experiment point pushes millions of events through it — so it trades a
little repetition for speed: the heap, ``heappop`` and the tracer are
bound to locals outside the loop, the tracing branch is hoisted out of
the no-trace path entirely, and per-event work is inlined rather than
delegated to :meth:`Simulator.step` (which remains the readable
single-step reference implementation).
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Any, Iterable, Optional

from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Process,
    ProcessGenerator,
    Timeout,
)

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """An unhandled exception escaped a process with no waiter."""


class Simulator:
    """Discrete-event simulator with a float-seconds clock.

    Events scheduled for the same instant are processed in FIFO order of
    scheduling, which makes runs deterministic.

    Parameters
    ----------
    start_time:
        Initial clock value in seconds (default ``0.0``).
    trace:
        Optional :class:`repro.sim.trace.Tracer` receiving kernel records.
    """

    __slots__ = ("now", "trace", "_heap", "_sequence", "_failures",
                 "_active")

    def __init__(self, start_time: float = 0.0, trace: Any = None):
        self.now: float = float(start_time)
        self.trace = trace
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._failures: list[Process] = []
        self._active = True

    # -- factory helpers -----------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a pending :class:`Event` owned by this simulator."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None,
                name: str = "") -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start ``generator`` as a process; returns the joinable Process."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event], name: str = "") -> AllOf:
        """Event that fires when every event in ``events`` has fired."""
        return AllOf(self, events, name=name)

    def any_of(self, events: Iterable[Event], name: str = "") -> AnyOf:
        """Event that fires when the first of ``events`` fires."""
        return AnyOf(self, events, name=name)

    # -- kernel internals ------------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        """Place a triggered event on the heap ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative schedule delay: {delay}")
        self._sequence = sequence = self._sequence + 1
        heappush(self._heap, (self.now + delay, sequence, event))

    def _register_failure(self, process: Process) -> None:
        """Remember a failed process so unhandled errors surface in run()."""
        self._failures.append(process)

    # -- running ----------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        """Number of triggered-but-unprocessed events."""
        return len(self._heap)

    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` when idle."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        when, _seq, event = heapq.heappop(self._heap)
        self.now = when
        if self.trace is not None:
            self.trace.kernel(self.now, event)
        event._process_callbacks()
        self._raise_orphans()

    def _raise_orphans(self) -> None:
        """Raise for failed processes whose exception nobody consumed."""
        if not self._failures:
            return
        failures, self._failures = self._failures, []
        for process in failures:
            # A waiter registered during callback processing absorbs it.
            if process.callbacks:
                continue
            raise SimulationError(
                f"unhandled exception in process {process.name!r}"
            ) from process.value

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or the clock passes ``until``.

        Returns the final clock value.

        ``until`` semantics (pinned by ``tests/test_sim_run_until.py``):

        * Events scheduled *exactly at* ``until`` **are** processed; the
          loop only stops at the first event strictly later than
          ``until``. Equal-time events keep their FIFO order.
        * When the heap drains before ``until`` (or holds only later
          events), the clock is still advanced exactly to ``until`` —
          ``run(until=t)`` always returns with ``now == t`` when
          ``t >= now`` at entry, even if nothing fired.
        * ``until`` earlier than the current clock raises ``ValueError``.

        This is the kernel's hot loop: locals are bound outside the loop
        and the tracing branch is hoisted so the common (no-trace) path
        does one heap pop, one callback dispatch, and one failure check
        per event.
        """
        heap = self._heap
        pop = heappop
        trace = self.trace
        if until is None:
            if trace is None:
                while heap:
                    when, _seq, event = pop(heap)
                    self.now = when
                    event._process_callbacks()
                    if self._failures:
                        self._raise_orphans()
            else:
                while heap:
                    when, _seq, event = pop(heap)
                    self.now = when
                    trace.kernel(when, event)
                    event._process_callbacks()
                    if self._failures:
                        self._raise_orphans()
            return self.now

        if until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        if trace is None:
            while heap and heap[0][0] <= until:
                when, _seq, event = pop(heap)
                self.now = when
                event._process_callbacks()
                if self._failures:
                    self._raise_orphans()
        else:
            while heap and heap[0][0] <= until:
                when, _seq, event = pop(heap)
                self.now = when
                trace.kernel(when, event)
                event._process_callbacks()
                if self._failures:
                    self._raise_orphans()
        if until > self.now:
            self.now = until
        return self.now

    def run_until_event(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` is processed; return its value.

        Raises the event's exception if it failed, or ``TimeoutError`` if
        ``limit`` seconds of simulated time pass first.
        """
        while not event.processed:
            if not self._heap:
                raise SimulationError(
                    f"simulation drained before {event!r} fired"
                )
            if limit is not None and self._heap[0][0] > limit:
                raise TimeoutError(
                    f"{event!r} not processed by simulated t={limit}"
                )
            self.step()
        if not event.ok:
            raise event.value
        return event.value

    def __repr__(self) -> str:
        return f"<Simulator t={self.now:g} queued={len(self._heap)}>"
