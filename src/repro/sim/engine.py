"""The simulator core: clock, pluggable event core, and run loop.

The kernel's hot state — the timestamped pending-event queue, the
Timeout/Event free-lists, and the untraced dispatch loop — lives in a
pluggable *event core* (:mod:`repro.sim.eventcore`): a compiled C
extension when available, a pure-Python calendar queue otherwise, and
the original ``heapq`` implementation kept verbatim as the reference.
:class:`Simulator` owns everything else: the clock, failure propagation,
tracing, and the ``until`` semantics of :meth:`Simulator.run`.

The factory entry points the hot paths call millions of times per
experiment — ``sim.timeout``, ``sim.event``, ``sim._push``,
``sim._wakeup`` — are the core's bound methods installed directly into
instance slots at construction, so a pooled timeout is one call with no
extra indirection regardless of backend (and one C call on the compiled
core).

Traced runs always take the readable per-event reference path through
``core.pop()`` + :meth:`Simulator.step`-equivalent dispatch: tracing is
for debugging and validation, where the free-list recycling and inlined
resume fast paths of ``core.drive`` would only obscure the event stream.
``tests/test_sim_kernel_equivalence.py`` pins every backend and
``step()`` to bit-identical behaviour.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.sim import eventcore
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Process,
    ProcessGenerator,
    Timeout,
)

__all__ = ["Simulator", "SimulationError"]

#: Upper bound on each free-list (re-exported; the cores enforce it).
_POOL_LIMIT = eventcore.POOL_LIMIT


class SimulationError(RuntimeError):
    """An unhandled exception escaped a process with no waiter."""


class Simulator:
    """Discrete-event simulator with a float-seconds clock.

    Events scheduled for the same instant are processed in FIFO order of
    scheduling, which makes runs deterministic.

    Parameters
    ----------
    start_time:
        Initial clock value in seconds (default ``0.0``).
    trace:
        Optional :class:`repro.sim.trace.Tracer` receiving kernel records.
    backend:
        Event-core backend name (``"compiled"``/``"calendar"``/
        ``"heapq"``); default is automatic selection, overridable with
        the ``REPRO_EVENTCORE`` environment variable. See
        :mod:`repro.sim.eventcore`.

    Attributes
    ----------
    timeout, event:
        Event factories — the active core's bound methods, installed
        into slots at construction (see the module docstring). Their
        semantics are documented on :class:`repro.sim.eventcore.HeapqCore`.
    """

    __slots__ = ("now", "trace", "_failures", "_active", "_core",
                 "timeout", "event", "_push", "_wakeup")

    def __init__(self, start_time: float = 0.0, trace: Any = None,
                 backend: Optional[str] = None):
        self.now: float = float(start_time)
        self.trace = trace
        self._failures: list[Process] = []
        self._active = True
        core = eventcore.make_core(self, backend)
        self._core = core
        # Bound core methods installed as instance attributes: the
        # hottest factory calls go straight to the core with no
        # delegating Python frame in between.
        self.timeout = core.timeout
        self.event = core.event
        self._push = core.push
        self._wakeup = core.wakeup

    # -- factory helpers -----------------------------------------------------
    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start ``generator`` as a process; returns the joinable Process."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event], name: str = "") -> AllOf:
        """Event that fires when every event in ``events`` has fired."""
        return AllOf(self, events, name=name)

    def any_of(self, events: Iterable[Event], name: str = "") -> AnyOf:
        """Event that fires when the first of ``events`` fires."""
        return AnyOf(self, events, name=name)

    # -- kernel internals ------------------------------------------------------
    @property
    def backend(self) -> str:
        """Name of the active event-core backend."""
        return self._core.backend

    @property
    def _sequence(self) -> int:
        """Total events ever pushed (the FIFO tie-break counter)."""
        return self._core.sequence

    @property
    def _timeout_pool(self) -> list[Timeout]:
        """The active core's timeout free-list (tests/diagnostics)."""
        return self._core.timeout_pool

    @property
    def _event_pool(self) -> list[Event]:
        """The active core's event free-list (tests/diagnostics)."""
        return self._core.event_pool

    def _schedule(self, event: Event, delay: float) -> None:
        """Place a triggered event on the queue ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative schedule delay: {delay}")
        self._push(self.now + delay, event)

    def _register_failure(self, process: Process) -> None:
        """Remember a failed process so unhandled errors surface in run()."""
        self._failures.append(process)

    # -- running ----------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        """Number of triggered-but-unprocessed events."""
        return len(self._core)

    @property
    def idle(self) -> bool:
        """True when no events remain — the drain condition self-
        terminating housekeeping loops (server GC, the observability
        telemetry sampler) test before rescheduling themselves."""
        return not len(self._core)

    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` when idle."""
        return self._core.peek()

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it).

        This is the readable reference path: no batching, no free-list
        recycling, one event per call. ``run()`` must stay semantically
        equivalent to repeated ``step()`` calls (pinned by
        ``tests/test_sim_kernel_equivalence.py``).
        """
        when, event = self._core.pop()
        self.now = when
        if self.trace is not None:
            self.trace.kernel(self.now, event)
        event._process_callbacks()
        self._raise_orphans()

    def _raise_orphans(self) -> None:
        """Raise for failed processes whose exception nobody consumed."""
        if not self._failures:
            return
        failures, self._failures = self._failures, []
        for process in failures:
            # A waiter registered during callback processing absorbs it.
            if process.callbacks or process._sole_waiter is not None:
                continue
            raise SimulationError(
                f"unhandled exception in process {process.name!r}"
            ) from process.value

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock passes ``until``.

        Returns the final clock value.

        ``until`` semantics (pinned by ``tests/test_sim_run_until.py``):

        * Events scheduled *exactly at* ``until`` **are** processed; the
          loop only stops at the first event strictly later than
          ``until``. Equal-time events keep their FIFO order.
        * When the queue drains before ``until`` (or holds only later
          events), the clock is still advanced exactly to ``until`` —
          ``run(until=t)`` always returns with ``now == t`` when
          ``t >= now`` at entry, even if nothing fired.
        * ``until`` earlier than the current clock raises ``ValueError``.

        Untraced runs hand the whole loop to the active event core's
        ``drive`` — the kernel's hot path (same-timestamp batching,
        direct resume, free-list recycling; compiled when the C core is
        active). All of its fast paths preserve the observable
        ``(time, seq)`` FIFO order; events a dispatched process
        schedules at the current instant join the tail of the running
        batch exactly as they would have been popped next by the
        per-event loop. Traced runs take the per-event reference path
        below instead (and never recycle).
        """
        trace = self.trace
        if until is not None and until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        if trace is None:
            self._core.drive(until)
        else:
            core = self._core
            if until is None:
                while len(core):
                    when, event = core.pop()
                    self.now = when
                    trace.kernel(when, event)
                    event._process_callbacks()
                    if self._failures:
                        self._raise_orphans()
            else:
                while len(core) and core.peek() <= until:
                    when, event = core.pop()
                    self.now = when
                    trace.kernel(when, event)
                    event._process_callbacks()
                    if self._failures:
                        self._raise_orphans()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def run_until_event(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` is processed; return its value.

        Raises the event's exception if it failed, or ``TimeoutError`` if
        ``limit`` seconds of simulated time pass first.
        """
        core = self._core
        while not event.processed:
            if not len(core):
                raise SimulationError(
                    f"simulation drained before {event!r} fired"
                )
            if limit is not None and core.peek() > limit:
                raise TimeoutError(
                    f"{event!r} not processed by simulated t={limit}"
                )
            self.step()
        if not event.ok:
            raise event.value
        return event.value

    def __repr__(self) -> str:
        return (f"<Simulator t={self.now:g} queued={len(self._core)} "
                f"backend={self._core.backend}>")
