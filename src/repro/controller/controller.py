"""The disk controller: queue, optional prefetch cache, bandwidth ceiling."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro import obs
from repro.controller.bus import HostBus, SataPort
from repro.controller.cache import PrefetchCache
from repro.disk.drive import DiskDrive
from repro.io import IORequest, stamp_submit
from repro.sim import Resource, Simulator
from repro.sim.events import Event
from repro.sim.stats import StatsRegistry
from repro.units import MiB, US

__all__ = ["ControllerSpec", "DiskController"]


@dataclass(frozen=True)
class ControllerSpec:
    """Static controller description.

    Defaults model the paper's Broadcom BC4810: 8-port entry-level SATA
    RAID controller sustaining ~450 MB/s, with a command queue in the
    128-entry range and (configurably) a prefetching cache — Figure 8
    studies a 128 MB cache with prefetch sizes from 64 KB to 4 MB.
    """

    name: str = "bc4810"
    num_ports: int = 8
    queue_depth: int = 128
    cache_bytes: int = 0
    prefetch_bytes: int = 0
    aggregate_bandwidth: float = 450.0 * MiB
    port_bandwidth: float = 150.0 * MiB
    request_overhead_s: float = 20 * US
    #: Commands the firmware processes concurrently per port. Entry-level
    #: controllers (the BC4810 class) handle one command per disk at a
    #: time — cache hits for a disk queue FIFO behind an in-progress
    #: prefetch fetch for that disk, which is what lets large controller
    #: prefetch sizes thrash (Figure 8's 4 MB cliff). Ports are
    #: independent, so multi-disk aggregate bandwidth is unaffected.
    port_concurrency: int = 1

    def with_prefetch(self, cache_bytes: int,
                      prefetch_bytes: int) -> "ControllerSpec":
        """Copy with the prefetching cache configured."""
        from dataclasses import replace
        return replace(self, cache_bytes=cache_bytes,
                       prefetch_bytes=prefetch_bytes)


class DiskController:
    """A controller hosting up to ``spec.num_ports`` disks.

    Implements :class:`repro.io.BlockDevice` over the union of its disks:
    ``submit`` routes by ``request.disk_id`` (global ids; the controller
    is built with an explicit id→drive mapping).

    Read path: admission (bounded queue) → command processing → cache
    lookup → either serve from cache, join an in-flight extent fetch, or
    fetch (an extent when prefetching, else the request itself) from the
    disk — then cross the shared host bus and complete.
    """

    def __init__(self, sim: Simulator, spec: ControllerSpec,
                 disks: Dict[int, DiskDrive], name: str = ""):
        if not disks:
            raise ValueError("controller needs at least one disk")
        if len(disks) > spec.num_ports:
            raise ValueError(
                f"{len(disks)} disks exceed {spec.num_ports} ports")
        self.sim = sim
        self.spec = spec
        self.name = name or spec.name
        self.disks = dict(disks)
        self.ports = {disk_id: SataPort(sim, bandwidth=spec.port_bandwidth,
                                        name=f"{self.name}.port{disk_id}",
                                        pipe=drive.interface)
                      for disk_id, drive in disks.items()}
        self.cache = PrefetchCache(cache_bytes=spec.cache_bytes,
                                   prefetch_bytes=spec.prefetch_bytes)
        self.bus = HostBus(sim, bandwidth=spec.aggregate_bandwidth,
                           name=f"{self.name}.bus")
        self._admission = Resource(sim, capacity=spec.queue_depth,
                                   name=f"{self.name}.queue")
        self._cpu = Resource(sim, capacity=1, name=f"{self.name}.cpu")
        if spec.port_concurrency < 1:
            raise ValueError(
                f"port_concurrency must be >= 1: {spec.port_concurrency}")
        self._port_slots = {
            disk_id: Resource(sim, capacity=spec.port_concurrency,
                              name=f"{self.name}.slot{disk_id}")
            for disk_id in disks
        }
        self.stats = StatsRegistry()
        # Precomputed per-request names: the submit/extent paths run once
        # per simulated request, and the f-string cost was measurable.
        self._req_name = f"{self.name}.req"
        self._extent_name = f"{self.name}.extent"
        # Ambient observability, captured once (boolean-guarded hooks).
        self._obs = obs.current()
        self._obs_on = self._obs.enabled
        capacities = {d.capacity_bytes for d in self.disks.values()}
        if len(capacities) != 1:
            raise ValueError("controller disks must be homogeneous")
        #: Per-disk addressable bytes (BlockDevice protocol).
        self.capacity_bytes = capacities.pop()

    # -- BlockDevice protocol -------------------------------------------------
    def submit(self, request: IORequest) -> Event:
        """Route ``request`` to its disk; returns the completion event."""
        if request.disk_id not in self.disks:
            raise ValueError(
                f"{request!r}: disk {request.disk_id} not on {self.name}")
        stamp_submit(request, self.sim.now)
        event = self.sim.event(name="ctl")
        self.sim.process(self._handle(request, event),
                         name=self._req_name)
        return event

    @property
    def queue_in_use(self) -> int:
        """Occupied queue entries (admitted, not yet completed)."""
        return self._admission.in_use

    # -- request handling ---------------------------------------------------------
    def _handle(self, request: IORequest, event: Event):
        span = None
        if self._obs_on:
            span = self._obs.begin_child(request, "ctl.request", "ctl",
                                         self.sim.now,
                                         args={"disk": request.disk_id})
            self._obs.link(request, span)
        admitted_at = self.sim.now
        grant = self._admission.request()
        yield grant
        self._record_wait(request, admitted_at, "admission")
        try:
            yield from self._charge_cpu()
            if request.is_read:
                yield from self._handle_read(request)
            else:
                yield from self._handle_write(request)
            request.complete_time = self.sim.now
            self.stats.counter("completed").add(request.size)
            self.stats.latency("latency").observe(request.latency)
            if span is not None:
                self._obs.spans.end(span, self.sim.now)
            event.succeed(request)
        finally:
            self._admission.release()

    def _record_wait(self, request: IORequest, since: float,
                     stage: str) -> None:
        """Record time queued for a controller resource as ``ctl.port``.

        Recorded after the fact (begin stamped at ``since``) and only
        when the wait had non-zero duration, so the uncontended fast
        path emits nothing. Without this span, time spent waiting for
        the admission queue or a port command slot fell to ``other`` in
        the latency breakdown.
        """
        if self._obs_on and self.sim.now > since:
            span = self._obs.begin_child(
                request, "ctl.port", "ctl", since,
                args={"disk": request.disk_id, "stage": stage})
            self._obs.spans.end(span, self.sim.now)

    def _charge_cpu(self):
        grant = self._cpu.request()
        yield grant
        try:
            yield self.sim.timeout(self.spec.request_overhead_s)
        finally:
            self._cpu.release()

    def _handle_read(self, request: IORequest):
        # One firmware command slot per port: a cache-hit check for a
        # disk waits behind an in-progress fetch for that disk.
        slot = self._port_slots[request.disk_id]
        queued_at = self.sim.now
        grant = slot.request()
        yield grant
        self._record_wait(request, queued_at, "port")
        try:
            if self.cache.covers(request.disk_id, request.offset,
                                 request.size):
                self.stats.counter("cache_hits").add(request.size)
                if self._obs_on:
                    self._obs.instant_for(request, "ctl.cachehit", "mark",
                                          self.sim.now)
            elif self.cache.enabled:
                yield from self._fetch_through_extent(request)
            else:
                disk_event = self.disks[request.disk_id].submit(request)
                yield disk_event
        finally:
            slot.release()
        yield from self.bus.transfer(request.size)

    def _fetch_through_extent(self, request: IORequest):
        """Fetch the aligned extent(s) covering the request, coalescing
        with identical in-flight fetches from other streams."""
        extent_offset, extent_size = self.cache.extent_of(request.offset)
        end = request.offset + request.size
        while extent_offset < end:
            size = min(extent_size, self.capacity_bytes - extent_offset)
            if size <= 0:
                break
            if not self.cache.peek(request.disk_id, extent_offset, size):
                yield from self._fetch_extent(request, extent_offset, size)
            extent_offset += extent_size

    def _fetch_extent(self, request: IORequest, extent_offset: int,
                      size: int):
        key = (request.disk_id, extent_offset)
        pending = self.cache.in_flight.get(key)
        if pending is not None:
            yield pending
            return
        done = self.sim.event(name=self._extent_name)
        self.cache.in_flight[key] = done
        fetch_span = None
        try:
            extent = request.derive(extent_offset, size)
            extent.stream_id = None
            if self._obs_on:
                # A prefetch extent serves every stream that coalesces
                # onto it, so it roots its own trace (like the server's
                # read-ahead fetches).
                fetch_span = self._obs.spans.begin(
                    "ctl.fetch", "readahead", self.sim.now,
                    args={"disk": request.disk_id,
                          "offset": extent_offset, "size": size})
                self._obs.link(extent, fetch_span)
            # Wire time is charged by the drive: hits cross its interface
            # pipe, misses overlap the (slower) media read.
            disk_event = self.disks[request.disk_id].submit(extent)
            yield disk_event
            self.cache.insert_extent(request.disk_id, extent_offset, size)
            self.stats.counter("prefetched").add(size)
        finally:
            if fetch_span is not None:
                self._obs.spans.end(fetch_span, self.sim.now)
            del self.cache.in_flight[key]
            done.succeed()

    def _handle_write(self, request: IORequest):
        self.cache.invalidate(request.disk_id, request.offset, request.size)
        yield from self.bus.transfer(request.size)
        slot = self._port_slots[request.disk_id]
        queued_at = self.sim.now
        grant = slot.request()
        yield grant
        self._record_wait(request, queued_at, "port")
        try:
            disk_event = self.disks[request.disk_id].submit(request)
            yield disk_event
        finally:
            slot.release()

    # -- reporting -----------------------------------------------------------------
    def throughput(self, elapsed: float) -> float:
        """Completed bytes per second over ``elapsed``."""
        return self.stats.counter("completed").throughput(elapsed)

    def __repr__(self) -> str:
        return (f"<DiskController {self.name!r} disks={sorted(self.disks)} "
                f"queue={self._admission.in_use}/{self.spec.queue_depth}>")
