"""Link models: per-disk SATA ports and the controller↔host bus.

The drive model already charges its own interface for cache-hit transfers;
the port object here adds per-port accounting and an optional bandwidth
override, while :class:`HostBus` is the shared pipe every byte crosses on
its way to host memory — the 450 MB/s controller ceiling and, one level
up, the PCI-X segment.
"""

from __future__ import annotations

from typing import Optional

from repro.sim import Pipe, Simulator
from repro.units import MiB, US

__all__ = ["HostBus", "SataPort"]


class SataPort:
    """One point-to-point disk link with transfer accounting.

    The physical wire is owned by the drive (its ``interface`` pipe —
    cache-hit transfers are charged there; miss transfers overlap the
    media read). Pass that pipe in so the port *views* the same wire
    rather than double-charging it; a standalone pipe is created only for
    ports modelled without a drive.
    """

    def __init__(self, sim: Simulator, bandwidth: float = 150.0 * MiB,
                 name: str = "", pipe: Optional[Pipe] = None):
        self.sim = sim
        self.pipe = pipe if pipe is not None else Pipe(
            sim, bandwidth=bandwidth, name=name or "sata")
        self.name = name or self.pipe.name

    def transfer(self, nbytes: int):
        """Process generator moving ``nbytes`` across the port."""
        yield from self.pipe.transfer(nbytes)

    @property
    def bytes_moved(self) -> int:
        """Total bytes that crossed this port."""
        return self.pipe.bytes_moved


class HostBus:
    """The shared controller→host pipe (aggregate bandwidth ceiling).

    Every completed byte crosses it, so with eight streaming disks this is
    what pins the node to the controller's sustained rate. A small
    per-transfer overhead models DMA descriptor setup.
    """

    def __init__(self, sim: Simulator, bandwidth: float = 450.0 * MiB,
                 per_transfer_overhead: float = 5 * US, name: str = ""):
        self.sim = sim
        self.pipe = Pipe(sim, bandwidth=bandwidth,
                         per_transfer_overhead=per_transfer_overhead,
                         name=name or "hostbus")

    def transfer(self, nbytes: int):
        """Process generator moving ``nbytes`` to host memory."""
        yield from self.pipe.transfer(nbytes)

    @property
    def bytes_moved(self) -> int:
        """Total bytes that crossed the bus."""
        return self.pipe.bytes_moved

    def utilization(self, elapsed: float) -> float:
        """Busy fraction over ``elapsed`` seconds."""
        return self.pipe.busy_time / elapsed if elapsed > 0 else 0.0
