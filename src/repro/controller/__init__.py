"""Disk controller model.

A controller hosts several disks behind SATA ports, owns a bounded command
queue, an optional prefetching cache (the Figure 8 knob), and an aggregate
bandwidth ceiling (the Broadcom BC4810 in the paper sustains ~450 MB/s
across its eight ports).
"""

from repro.controller.bus import HostBus, SataPort
from repro.controller.cache import PrefetchCache
from repro.controller.controller import ControllerSpec, DiskController

__all__ = [
    "ControllerSpec",
    "DiskController",
    "HostBus",
    "PrefetchCache",
    "SataPort",
]
