"""Controller-level prefetching cache.

A byte-addressed wrapper over the segmented cache: the controller prefetches
fixed-size aligned *extents* (the Figure 8 "prefetch size"), one segment per
extent, per disk. Like the disk cache, it thrashes once concurrent streams
outnumber extents — which is exactly the cliff Figure 8 shows at 4 MB
prefetch with 60+ streams against a 128 MB cache.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.disk.cache import CacheStats, SegmentedCache
from repro.units import SECTOR_BYTES, sectors

__all__ = ["PrefetchCache"]


class PrefetchCache:
    """Per-controller cache of prefetched extents, keyed by disk.

    Parameters
    ----------
    cache_bytes:
        Total controller cache memory.
    prefetch_bytes:
        Extent size; the cache is organised as ``cache_bytes //
        prefetch_bytes`` segments. Zero disables the cache entirely.
    """

    def __init__(self, cache_bytes: int, prefetch_bytes: int):
        if prefetch_bytes < 0 or cache_bytes < 0:
            raise ValueError("cache/prefetch sizes must be >= 0")
        if prefetch_bytes % SECTOR_BYTES:
            raise ValueError(
                f"prefetch_bytes not sector-aligned: {prefetch_bytes}")
        self.cache_bytes = cache_bytes
        self.prefetch_bytes = prefetch_bytes
        self.enabled = prefetch_bytes > 0 and cache_bytes >= prefetch_bytes
        if self.enabled:
            num_segments = cache_bytes // prefetch_bytes
            self._cache = SegmentedCache(
                num_segments=num_segments,
                segment_sectors=sectors(prefetch_bytes))
        else:
            self._cache = None
        #: Extents currently being fetched: (disk_id, extent_start_sector)
        #: -> completion event, so concurrent misses coalesce.
        self.in_flight: Dict[Tuple[int, int], object] = {}

    @property
    def num_extents(self) -> int:
        """How many extents fit in the cache."""
        return self._cache.num_segments if self.enabled else 0

    @property
    def stats(self) -> CacheStats:
        """Hit/miss/eviction counters (empty stats when disabled)."""
        return self._cache.stats if self.enabled else CacheStats()

    # -- byte-addressed interface --------------------------------------------
    def _key(self, disk_id: int, offset: int) -> int:
        """Disk-qualified sector address (disks get disjoint key spaces)."""
        # 2^41 sectors = 1 PB per disk: comfortably above any disk here.
        return (disk_id << 41) | sectors(offset - offset % SECTOR_BYTES)

    def covers(self, disk_id: int, offset: int, size: int) -> bool:
        """True when the whole byte range is cached (counts a lookup)."""
        if not self.enabled:
            return False
        start = self._key(disk_id, offset)
        count = sectors(size)
        return self._cache.lookup(start, count) == count

    def peek(self, disk_id: int, offset: int, size: int) -> bool:
        """Coverage check without stats/LRU effects."""
        if not self.enabled:
            return False
        start = self._key(disk_id, offset)
        count = sectors(size)
        return self._cache.peek(start, count) == count

    def extent_of(self, offset: int) -> Tuple[int, int]:
        """The aligned (extent_offset, extent_size) containing ``offset``."""
        if not self.enabled:
            raise RuntimeError("extent_of() on disabled cache")
        extent_offset = offset - offset % self.prefetch_bytes
        return extent_offset, self.prefetch_bytes

    def insert_extent(self, disk_id: int, extent_offset: int,
                      size: int) -> None:
        """Store a fetched extent (allocates/evicts one segment)."""
        if not self.enabled:
            return
        segment = self._cache.allocate(self._key(disk_id, extent_offset))
        self._cache.fill(segment, sectors(size), prefetch=True)

    def invalidate(self, disk_id: int, offset: int, size: int) -> None:
        """Drop cached extents overlapping a written byte range."""
        if not self.enabled:
            return
        self._cache.invalidate(self._key(disk_id, offset), sectors(size))

    def __repr__(self) -> str:
        state = f"{self.num_extents} x {self.prefetch_bytes}" \
            if self.enabled else "disabled"
        return f"<PrefetchCache {state}>"
