"""Markdown rendering of experiment results (feeds EXPERIMENTS.md)."""

from __future__ import annotations

from typing import List

from repro.analysis.metrics import ExperimentResult

__all__ = ["markdown_table"]


def markdown_table(result: ExperimentResult, precision: int = 1) -> str:
    """Render a result as a GitHub-flavoured markdown table."""
    xs: List = []
    for series in result.series:
        for x in series.xs:
            if x not in xs:
                xs.append(x)
    header = [result.x_label] + result.labels
    lines = ["| " + " | ".join(header) + " |",
             "|" + "---|" * len(header)]
    for x in xs:
        row = [str(x)]
        for series in result.series:
            try:
                row.append(f"{series.y_at(x):.{precision}f}")
            except KeyError:
                row.append("—")
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
