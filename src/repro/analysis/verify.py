"""Per-figure shape verification.

Each checker takes the figure's :class:`ExperimentResult` and returns a
list of human-readable violations (empty = the figure's shape holds).
These encode DESIGN.md §3's shape criteria once, used by the experiment
runner's ``--check`` flag; the benchmarks assert the same facts with
pytest granularity.

Thresholds are deliberately looser than the benchmark asserts: the
runner may be invoked at SMOKE scale where noise is higher.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.analysis.metrics import ExperimentResult, Series

__all__ = ["CHECKERS", "verify_result"]


def _ratio_at_least(violations: List[str], label: str, numerator: float,
                    denominator: float, factor: float) -> None:
    if denominator <= 0 or numerator < factor * denominator:
        violations.append(
            f"{label}: expected >= {factor}x ({numerator:.2f} vs "
            f"{denominator:.2f})")


def _series_starting(result: ExperimentResult, prefix: str) -> Series:
    for series in result.series:
        if series.label.startswith(prefix):
            return series
    raise KeyError(f"no series starting with {prefix!r} in "
                   f"{result.labels}")


def check_fig01(result: ExperimentResult) -> List[str]:
    violations: List[str] = []
    sixty = result.get("60 streams")
    five_hundred = result.get("500 streams")
    _ratio_at_least(violations, "collapse 60 vs 500 streams @256K",
                    sixty.y_at("256K"), five_hundred.y_at("256K"), 1.5)
    if sixty.y_at("256K") <= sixty.y_at("8K"):
        violations.append("request size should help at 60 streams")
    return violations


def check_fig02(result: ExperimentResult) -> List[str]:
    violations: List[str] = []
    anticipatory = result.get("anticipatory")
    plateau = max(anticipatory.y_at(s) for s in (8, 16, 32))
    _ratio_at_least(violations, "anticipatory collapse by 256 streams",
                    plateau, anticipatory.y_at(256), 0.0)
    if plateau < 2.5 * anticipatory.y_at(256):
        violations.append(
            f"anticipatory should lose >=2.5x by 256 streams "
            f"({plateau:.1f} -> {anticipatory.y_at(256):.1f})")
    noop = result.get("noop")
    for streams in (8, 16):
        _ratio_at_least(violations, f"AS vs noop @{streams}",
                        anticipatory.y_at(streams), noop.y_at(streams),
                        1.3)
    return violations


def check_fig04(result: ExperimentResult) -> List[str]:
    violations: List[str] = []
    single = result.get("1 streams")
    hundred = result.get("100 streams")
    _ratio_at_least(violations, "1 vs 100 streams @64K",
                    single.y_at("64K"), hundred.y_at("64K"), 2.5)
    for series in result.series:
        if series.ys[-1] < series.ys[0]:
            violations.append(
                f"{series.label}: throughput should rise with request "
                f"size")
    return violations


def check_fig05(result: ExperimentResult) -> List[str]:
    violations: List[str] = []
    single = result.get("1 streams")
    thirty = result.get("30 streams")
    if single.y_at("64K") < 40:
        violations.append("single stream should saturate at 64K+")
    _ratio_at_least(violations, "10 vs 30 streams @8K (segment cliff)",
                    result.get("10 streams").y_at("8K"),
                    thirty.y_at("8K"), 2.5)
    return violations


def check_fig06(result: ExperimentResult) -> List[str]:
    violations: List[str] = []
    series = result.get("30 streams")
    _ratio_at_least(violations, "segment-size climb",
                    max(series.ys), series.y_at("32K"), 2.5)
    return violations


def check_fig07(result: ExperimentResult) -> List[str]:
    violations: List[str] = []
    ten = result.get("10 streams")
    hundred = result.get("100 streams")
    _ratio_at_least(violations, "10 streams: 16x512K vs 8x1M (thrash)",
                    ten.y_at("16x512K"), ten.y_at("8x1M"), 2.0)
    _ratio_at_least(violations, "100 streams: tiny vs big segments",
                    hundred.y_at("128x64K"), hundred.y_at("8x1M"), 1.5)
    return violations


def check_fig08(result: ExperimentResult) -> List[str]:
    violations: List[str] = []
    sixty = result.get("60 streams")
    if sixty.y_at("4M") > 5.0:
        violations.append(
            f"60 streams @4M prefetch should collapse towards zero "
            f"(got {sixty.y_at('4M'):.1f})")
    ten = result.get("10 streams")
    _ratio_at_least(violations, "10 streams: 2M vs 64K prefetch",
                    ten.y_at("2M"), ten.y_at("64K"), 2.5)
    return violations


def check_fig10(result: ExperimentResult) -> List[str]:
    violations: List[str] = []
    big = _series_starting(result, "R = 8M")
    none = result.get("No read-ahead")
    if min(big.ys) < 0.5 * max(big.ys):
        violations.append("R=8M should be ~flat across stream counts")
    _ratio_at_least(violations, "R=8M vs no-RA @100 streams",
                    big.y_at(100), none.y_at(100), 4.0)
    return violations


def check_fig11(result: ExperimentResult) -> List[str]:
    violations: List[str] = []
    big_r = result.get("S = 100 (RA = 8M)")
    small_r = result.get("S = 100 (RA = 256K)")
    _ratio_at_least(violations,
                    "R=8M minimal memory vs R=256K any memory",
                    big_r.ys[0], max(small_r.ys), 1.3)
    return violations


def check_fig12(result: ExperimentResult) -> List[str]:
    violations: List[str] = []
    for series in result.series:
        if max(series.ys) >= 450:
            violations.append(f"{series.label}: exceeds the 450 MB/s "
                              f"ceiling")
    _ratio_at_least(violations, "R=2M vs R=512K @100 streams/disk",
                    result.get("R = 2M").y_at(100),
                    result.get("R = 512K").y_at(100), 1.1)
    return violations


def check_fig13(result: ExperimentResult) -> List[str]:
    violations: List[str] = []
    small_d = _series_starting(result, "R = 512K, D = #disks")
    baseline = _series_starting(result, "R = 512K, from Figure 12")
    for streams in (10, 30, 60):
        _ratio_at_least(violations, f"small-D vs D=S @{streams}",
                        small_d.y_at(streams), baseline.y_at(streams),
                        1.1)
    return violations


def check_fig14(result: ExperimentResult) -> List[str]:
    violations: List[str] = []
    small_d = _series_starting(result, "R = 512K, D = 1")
    if min(small_d.ys) < 10:
        violations.append("D=1/N=128 should stay well above the "
                          "collapse level")
    return violations


def check_fig15(result: ExperimentResult) -> List[str]:
    violations: List[str] = []
    for memory in (64,):
        one = result.get(f"S = 1 (M = {memory}MBytes)")
        hundred = result.get(f"S = 100 (M = {memory}MBytes)")
        _ratio_at_least(violations, "latency: S=100 vs S=1",
                        hundred.y_at("1M"), one.y_at("1M"), 10.0)
    s100 = result.get("S = 100 (M = 256MBytes)")
    if s100.y_at("8M") > s100.y_at("256K"):
        violations.append("larger R should improve S=100 mean latency")
    return violations


#: figure id -> checker.
CHECKERS: Dict[str, Callable[[ExperimentResult], List[str]]] = {
    "fig01": check_fig01,
    "fig02": check_fig02,
    "fig04": check_fig04,
    "fig05": check_fig05,
    "fig06": check_fig06,
    "fig07": check_fig07,
    "fig08": check_fig08,
    "fig10": check_fig10,
    "fig11": check_fig11,
    "fig12": check_fig12,
    "fig13": check_fig13,
    "fig14": check_fig14,
    "fig15": check_fig15,
}


def verify_result(result: ExperimentResult) -> List[str]:
    """Run the figure's checker; unknown figures verify trivially."""
    checker = CHECKERS.get(result.experiment_id)
    if checker is None:
        return []
    return checker(result)
