"""Result aggregation and reporting for experiments."""

from repro.analysis.markdown import markdown_table
from repro.analysis.metrics import ExperimentResult, Series, SeriesPoint
from repro.analysis.reporting import (
    format_table,
    max_drop_factor,
    monotone_decreasing,
    monotone_increasing,
    series_ratio,
)
from repro.analysis.verify import verify_result

__all__ = [
    "ExperimentResult",
    "Series",
    "SeriesPoint",
    "format_table",
    "markdown_table",
    "max_drop_factor",
    "monotone_decreasing",
    "monotone_increasing",
    "series_ratio",
    "verify_result",
]
