"""ASCII charts for terminal-friendly result inspection.

No plotting dependencies: a horizontal bar chart per series, scaled to a
fixed width, good enough to eyeball a figure's shape in CI logs and the
examples' output.
"""

from __future__ import annotations

from typing import List

from repro.analysis.metrics import ExperimentResult, Series

__all__ = ["bar_chart", "result_chart"]

_BLOCKS = "▏▎▍▌▋▊▉█"


def _bar(value: float, maximum: float, width: int) -> str:
    if maximum <= 0:
        return ""
    fraction = max(0.0, min(1.0, value / maximum))
    eighths = round(fraction * width * 8)
    full, remainder = divmod(eighths, 8)
    bar = "█" * full
    if remainder:
        bar += _BLOCKS[remainder - 1]
    return bar


def bar_chart(series: Series, width: int = 40,
              unit: str = "") -> str:
    """One series as labelled horizontal bars."""
    if not series.points:
        return f"{series.label}: (no data)"
    maximum = max(series.ys)
    label_width = max(len(str(x)) for x in series.xs)
    lines = [series.label]
    for point in series.points:
        bar = _bar(point.y, maximum, width)
        lines.append(f"  {str(point.x).rjust(label_width)} "
                     f"{bar:<{width}} {point.y:.1f}{unit}")
    return "\n".join(lines)


def result_chart(result: ExperimentResult, width: int = 40) -> str:
    """Every series of a result, bars scaled to the global maximum."""
    lines: List[str] = [f"{result.experiment_id}: {result.title} "
                        f"[{result.y_label}]"]
    maximum = max((max(s.ys) for s in result.series if s.points),
                  default=0.0)
    for series in result.series:
        lines.append(series.label)
        label_width = max((len(str(x)) for x in series.xs), default=1)
        for point in series.points:
            bar = _bar(point.y, maximum, width)
            lines.append(f"  {str(point.x).rjust(label_width)} "
                         f"{bar:<{width}} {point.y:.1f}")
    return "\n".join(lines)
