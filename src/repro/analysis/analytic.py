"""Closed-form performance model, for cross-checking the simulator.

Back-of-envelope versions of the paper's arguments:

* interleaved sequential streams pay one seek + half a rotation per
  coalesced request of size R, so per-disk throughput is
  ``R / (seek(S) + T_rev/2 + R / media_rate)``;
* the seek distance between successively serviced streams is roughly the
  stream spacing, ``capacity / S`` (the paper's layout), through the
  calibrated √distance curve.

Tests assert the simulator lands within a band of these predictions for
mid-range configurations — a guard against silent timing regressions in
any of the stacked components.
"""

from __future__ import annotations


from dataclasses import dataclass

from repro.disk.geometry import DiskGeometry
from repro.disk.mechanics import SeekModel
from repro.disk.specs import DiskSpec
from repro.units import SECTOR_BYTES

__all__ = ["AnalyticDiskModel", "Prediction"]


@dataclass(frozen=True)
class Prediction:
    """One analytic estimate."""

    throughput: float       # bytes/s
    per_request_time: float  # seconds per coalesced request
    seek_time: float         # seconds of that spent seeking

    @property
    def throughput_mb(self) -> float:
        """MBytes/s, the paper's unit."""
        return self.throughput / (1024 * 1024)


class AnalyticDiskModel:
    """Closed-form throughput estimates for one disk spec."""

    def __init__(self, spec: DiskSpec):
        self.spec = spec
        outer_spt = max(1, round(
            spec.outer_media_rate * spec.rotation_time_s / SECTOR_BYTES))
        inner_spt = max(1, round(
            spec.inner_media_rate * spec.rotation_time_s / SECTOR_BYTES))
        self.geometry = DiskGeometry.from_capacity(
            spec.capacity_bytes, heads=spec.heads,
            num_zones=spec.num_zones, outer_spt=outer_spt,
            inner_spt=inner_spt)
        self.seek_model = SeekModel(spec.single_cylinder_seek_s,
                                    spec.average_seek_s,
                                    self.geometry.cylinders)

    @property
    def mean_media_rate(self) -> float:
        """Capacity-weighted mean media rate (bytes/s)."""
        total = 0.0
        for zone in self.geometry.zones:
            rate = (zone.sectors_per_track * SECTOR_BYTES
                    / self.spec.rotation_time_s)
            total += rate * zone.sector_count
        return total / self.geometry.total_sectors

    def stream_spacing_cylinders(self, num_streams: int) -> int:
        """Cylinder distance between adjacent streams (paper layout)."""
        if num_streams < 1:
            raise ValueError(f"num_streams must be >= 1: {num_streams}")
        return max(1, self.geometry.cylinders // num_streams)

    def interleaved_throughput(self, num_streams: int,
                               request_bytes: int,
                               outer_zone: bool = True) -> Prediction:
        """Throughput of ``num_streams`` interleaved with ``request_bytes``
        per disk visit (the coalesced size: R for the server, the request
        size for raw access).

        Model: per visit = seek(spacing) + half a rotation + transfer.
        """
        if request_bytes < 1:
            raise ValueError(f"request_bytes must be >= 1: "
                             f"{request_bytes}")
        if num_streams == 1:
            media = (self.spec.outer_media_rate if outer_zone
                     else self.mean_media_rate)
            per_request = request_bytes / media
            return Prediction(throughput=media,
                              per_request_time=per_request,
                              seek_time=0.0)
        seek = self.seek_model.seek_time(
            self.stream_spacing_cylinders(num_streams))
        rotation = self.spec.rotation_time_s / 2.0
        media = (self.spec.outer_media_rate if outer_zone
                 else self.mean_media_rate)
        transfer = request_bytes / media
        per_request = seek + rotation + transfer
        return Prediction(throughput=request_bytes / per_request,
                          per_request_time=per_request,
                          seek_time=seek)

    def utilisation(self, num_streams: int, request_bytes: int) -> float:
        """Fraction of peak media rate the configuration achieves."""
        prediction = self.interleaved_throughput(num_streams,
                                                 request_bytes)
        return prediction.throughput / self.spec.outer_media_rate

    def read_ahead_for_utilisation(self, num_streams: int,
                                   target: float) -> int:
        """Smallest power-of-two R reaching ``target`` utilisation.

        The inversion behind the paper's "R = 8M suffices" observation.
        """
        if not 0.0 < target < 1.0:
            raise ValueError(f"target must be in (0,1): {target}")
        read_ahead = 64 * 1024
        while read_ahead < 2**40:
            if self.utilisation(num_streams, read_ahead) >= target:
                return read_ahead
            read_ahead *= 2
        raise ValueError(
            f"target utilisation {target} unreachable at "
            f"{num_streams} streams")
