"""Tables and shape checks over experiment results.

The reproduction validates *shapes* — who wins, by what factor, where the
cliff is — rather than absolute MB/s, so the checks here are the ones
DESIGN.md's experiment index lists per figure.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.metrics import ExperimentResult, Series

__all__ = [
    "format_table",
    "max_drop_factor",
    "monotone_decreasing",
    "monotone_increasing",
    "series_ratio",
]


def format_table(result: ExperimentResult, precision: int = 2) -> str:
    """Render a result as a fixed-width ASCII table (x rows × series)."""
    xs: List = []
    for series in result.series:
        for x in series.xs:
            if x not in xs:
                xs.append(x)
    header = [result.x_label] + result.labels
    rows = [header]
    for x in xs:
        row = [str(x)]
        for series in result.series:
            try:
                row.append(f"{series.y_at(x):.{precision}f}")
            except KeyError:
                row.append("-")
        rows.append(row)
    widths = [max(len(row[col]) for row in rows)
              for col in range(len(header))]
    lines = [f"{result.experiment_id}: {result.title} "
             f"[{result.y_label}]"]
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(width)
                               for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)


def monotone_decreasing(values: Sequence[float],
                        tolerance: float = 0.05) -> bool:
    """Non-increasing within a relative tolerance (noise allowance)."""
    for earlier, later in zip(values, values[1:]):
        if later > earlier * (1 + tolerance):
            return False
    return True


def monotone_increasing(values: Sequence[float],
                        tolerance: float = 0.05) -> bool:
    """Non-decreasing within a relative tolerance."""
    for earlier, later in zip(values, values[1:]):
        if later < earlier * (1 - tolerance):
            return False
    return True


def max_drop_factor(values: Sequence[float]) -> float:
    """max(values) / min(values): the figure's collapse magnitude."""
    if not values:
        raise ValueError("empty series")
    lowest = min(values)
    if lowest <= 0:
        return float("inf")
    return max(values) / lowest


def series_ratio(numerator: Series, denominator: Series) -> List[float]:
    """Pointwise ratio at shared x values (who-wins-by-how-much)."""
    shared = [x for x in numerator.xs if x in denominator.xs]
    if not shared:
        raise ValueError(
            f"series {numerator.label!r} and {denominator.label!r} share "
            f"no x values")
    return [numerator.y_at(x) / denominator.y_at(x)
            if denominator.y_at(x) > 0 else float("inf")
            for x in shared]
