"""Typed containers for experiment results.

Every experiment produces an :class:`ExperimentResult`: named series of
(x, y) points matching one paper figure's axes, so benches, docs, and
shape checks all consume the same structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

__all__ = ["ExperimentResult", "Series", "SeriesPoint"]

XValue = Union[int, float, str]


@dataclass(frozen=True)
class SeriesPoint:
    """One measurement: x (figure's x-axis value) → y (figure's y-axis)."""

    x: XValue
    y: float


@dataclass
class Series:
    """One labelled curve of a figure."""

    label: str
    points: List[SeriesPoint] = field(default_factory=list)

    def add(self, x: XValue, y: float) -> None:
        """Append a point."""
        self.points.append(SeriesPoint(x, y))

    @property
    def xs(self) -> List[XValue]:
        """X values in insertion order."""
        return [p.x for p in self.points]

    @property
    def ys(self) -> List[float]:
        """Y values in insertion order."""
        return [p.y for p in self.points]

    def y_at(self, x: XValue) -> float:
        """The y value measured at ``x`` (KeyError if absent)."""
        for point in self.points:
            if point.x == x:
                return point.y
        raise KeyError(f"no point at x={x!r} in series {self.label!r}")


@dataclass
class ExperimentResult:
    """All series of one reproduced figure."""

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)
    notes: str = ""

    def new_series(self, label: str) -> Series:
        """Create, register, and return a new series."""
        series = Series(label)
        self.series.append(series)
        return series

    def get(self, label: str) -> Series:
        """Series by exact label (KeyError if absent)."""
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(
            f"no series {label!r}; have {[s.label for s in self.series]}")

    @property
    def labels(self) -> List[str]:
        """Series labels in insertion order."""
        return [s.label for s in self.series]

    def as_dict(self) -> Dict[str, Dict[XValue, float]]:
        """{series label: {x: y}} for serialisation and assertions."""
        return {s.label: dict(zip(s.xs, s.ys)) for s in self.series}
