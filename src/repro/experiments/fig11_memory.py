"""Figure 11 — effect of storage-node memory size on throughput.

``D`` is derived from the memory: ``D = M / (R·N)``, ``N = 1``. The
paper's key observation: a large read-ahead with memory for only one or
two dispatched streams (R = 8M, M = 16M) still beats dispatching all 100
streams with small read-ahead (R = 256K, M = 256 x 100) — read-ahead
matters more than dispatch width.
"""

from __future__ import annotations

from repro.analysis import ExperimentResult
from repro.core import ServerParams
from repro.disk.specs import WD800JD
from repro.experiments.base import (
    QUICK,
    ExperimentScale,
    measure,
    server_wrapper,
)
from repro.experiments.executor import Point, SweepSpec, run_sweep
from repro.node import base_topology
from repro.units import KiB, MiB, format_size
from repro.workload import uniform_streams

__all__ = ["run", "sweep", "MEMORY_SIZES", "READ_AHEADS", "STREAM_COUNTS"]

MEMORY_SIZES = [8 * MiB, 16 * MiB, 64 * MiB, 128 * MiB, 256 * MiB]
READ_AHEADS = [8 * MiB, 1 * MiB, 256 * KiB]
STREAM_COUNTS = [1, 10, 100]
REQUEST_SIZE = 64 * KiB


def _point(scale: ExperimentScale, params: dict) -> float:
    """Measure one (streams, read-ahead, memory) cell of Figure 11."""
    num_streams = params["streams"]
    server_params = ServerParams(read_ahead=params["read_ahead"],
                                 dispatch_width=None,
                                 requests_per_residency=1,
                                 memory_budget=params["memory"])
    topology = base_topology(disk_spec=WD800JD, seed=num_streams)
    report = measure(
        topology, scale,
        specs_for=lambda node: uniform_streams(
            num_streams, node.disk_ids, node.capacity_bytes,
            request_size=REQUEST_SIZE),
        wrap_device=server_wrapper(server_params))
    return report.throughput_mb


def sweep() -> SweepSpec:
    """Figure 11 as a declarative sweep (S x R curves over memory)."""
    points = []
    for num_streams in STREAM_COUNTS:
        for read_ahead in READ_AHEADS:
            label = f"S = {num_streams} (RA = {format_size(read_ahead)})"
            for memory in MEMORY_SIZES:
                if memory < read_ahead:
                    continue  # cannot hold even one dispatched stream
                points.append(Point(
                    series=label, x=memory // MiB,
                    params={"streams": num_streams,
                            "read_ahead": read_ahead,
                            "memory": memory}))
    series_order = tuple(
        f"S = {num_streams} (RA = {format_size(read_ahead)})"
        for num_streams in STREAM_COUNTS
        for read_ahead in READ_AHEADS)
    return SweepSpec(
        experiment_id="fig11",
        title="Effect of storage memory size (D = M/(R*N), N = 1)",
        x_label="memory (MB)",
        y_label="MBytes/s",
        notes="dispatch width derived from the memory budget",
        point_fn=_point,
        points=tuple(points),
        series_order=series_order)


def run(scale: ExperimentScale = QUICK, jobs: int | None = None,
        cache: bool = True) -> ExperimentResult:
    """Reproduce Figure 11's S x R curves over memory size."""
    return run_sweep(sweep(), scale, jobs=jobs, cache=cache)
