"""Extension experiment — the insensitivity summary chart.

Not a paper figure, but the paper's thesis on one axis: aggregate
throughput vs stream count (1–300) on a single disk for four systems —
raw disk access, the anticipatory OS stack, and the stream server in its
two characteristic configurations (all-dispatched big-R, and small-D
long-residency). The server curves should stay flat where everything
else collapses.
"""

from __future__ import annotations

from repro.analysis import ExperimentResult
from repro.core import ServerParams
from repro.disk import DISKSIM_GENERIC, DiskDrive, DriveConfig
from repro.disk.specs import WD800JD
from repro.experiments.base import (
    QUICK,
    ExperimentScale,
    measure,
    server_wrapper,
)
from repro.experiments.executor import Point, SweepSpec, run_sweep
from repro.experiments.fig02_schedulers import client_turnaround
from repro.host import BlockLayer, BufferCache, make_scheduler
from repro.node import base_topology
from repro.sim import Simulator
from repro.units import GiB, KiB, MiB
from repro.workload import run_xdd, uniform_streams

__all__ = ["run", "sweep", "STREAM_COUNTS", "SYSTEMS"]

STREAM_COUNTS = [1, 10, 30, 100, 300]
REQUEST_SIZE = 64 * KiB

#: system key -> series label, in figure order.
SYSTEMS = {
    "direct": "direct access",
    "anticipatory": "anticipatory OS stack",
    "server-big-r": "server D=S R=8M",
    "server-small-d": "server D=1 N=128",
}


def _direct(scale, num_streams):
    topology = base_topology(disk_spec=WD800JD, seed=num_streams)
    return measure(
        topology, scale,
        specs_for=lambda node: uniform_streams(
            num_streams, node.disk_ids, node.capacity_bytes,
            request_size=REQUEST_SIZE)).throughput_mb


def _server(scale, num_streams, small_dispatch):
    if small_dispatch:
        params = ServerParams(read_ahead=512 * KiB, dispatch_width=1,
                              requests_per_residency=128,
                              memory_budget=1 * GiB)
    else:
        params = ServerParams(read_ahead=8 * MiB,
                              dispatch_width=num_streams,
                              requests_per_residency=1,
                              memory_budget=max(num_streams * 8 * MiB,
                                                8 * MiB))
    topology = base_topology(disk_spec=WD800JD, seed=num_streams)
    return measure(
        topology, scale,
        specs_for=lambda node: uniform_streams(
            num_streams, node.disk_ids, node.capacity_bytes,
            request_size=REQUEST_SIZE),
        wrap_device=server_wrapper(params)).throughput_mb


def _anticipatory(scale, num_streams):
    sim = Simulator()
    drive = DiskDrive(sim, DISKSIM_GENERIC,
                      config=DriveConfig(seed=num_streams))
    layer = BlockLayer(sim, drive, make_scheduler("anticipatory"))
    cache = BufferCache(sim, layer, capacity_bytes=256 * MiB)
    report = run_xdd(sim, cache, num_streams=num_streams,
                     block_size=4 * KiB, per_stream_bytes=4 * GiB,
                     duration=scale.duration,
                     think_time=client_turnaround(num_streams),
                     settle_blocks=96)
    return report.throughput_mb


def _point(scale: ExperimentScale, params: dict) -> float:
    """Measure one (system, streams) cell of the summary chart."""
    system = params["system"]
    num_streams = params["streams"]
    if system == "direct":
        return _direct(scale, num_streams)
    if system == "anticipatory":
        return _anticipatory(scale, num_streams)
    if system == "server-big-r":
        return _server(scale, num_streams, small_dispatch=False)
    if system == "server-small-d":
        return _server(scale, num_streams, small_dispatch=True)
    raise ValueError(f"unknown system {system!r}")


def sweep() -> SweepSpec:
    """The summary chart as a declarative sweep (4 systems x 5 counts)."""
    points = tuple(
        Point(series=label, x=streams,
              params={"system": system, "streams": streams})
        for system, label in SYSTEMS.items()
        for streams in STREAM_COUNTS)
    return SweepSpec(
        experiment_id="ext-insensitivity",
        title="Stream-count insensitivity: server vs baselines (1 disk)",
        x_label="streams",
        y_label="MBytes/s",
        notes="extension: the paper's thesis on one axis",
        point_fn=_point,
        points=points)


def run(scale: ExperimentScale = QUICK, jobs: int | None = None,
        cache: bool = True) -> ExperimentResult:
    """Four-system comparison across stream counts."""
    return run_sweep(sweep(), scale, jobs=jobs, cache=cache)
