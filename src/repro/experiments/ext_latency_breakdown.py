"""Extension experiment — response-time breakdown (the paper's §5.5).

The paper observes that "within each stream, request response times can
be divided in two broad categories: requests that require disk I/O and
requests that may be serviced directly from memory", and that with large
read-ahead most requests fall in the fast category. This experiment
quantifies it: for each (S, R) we report the memory-served fraction and
the p50/p99 client latencies.
"""

from __future__ import annotations

from repro.analysis import ExperimentResult
from repro.core import ServerParams, StreamServer
from repro.disk.specs import WD800JD
from repro.experiments.base import QUICK, ExperimentScale
from repro.experiments.executor import Point, SweepSpec, run_sweep
from repro.node import base_topology, build_node
from repro.sim import Simulator
from repro.sim.stats import LatencySampler
from repro.units import KiB, MiB, format_size
from repro.workload import ClientFleet, uniform_streams

__all__ = ["run", "sweep", "READ_AHEADS", "STREAM_COUNTS"]

READ_AHEADS = [256 * KiB, 1 * MiB, 8 * MiB]
STREAM_COUNTS = [10, 100]
REQUEST_SIZE = 64 * KiB

SERIES_FRACTION = "memory-served fraction"
SERIES_P50 = "p50 (ms)"
SERIES_P99 = "p99 (ms)"
SERIES_MEAN = "mean (ms)"


def _point(scale: ExperimentScale, params: dict) -> dict:
    """One (S, R) configuration → all four metric series."""
    num_streams = params["streams"]
    read_ahead = params["read_ahead"]
    sim = Simulator()
    node = build_node(sim, base_topology(disk_spec=WD800JD,
                                         seed=num_streams))
    server_params = ServerParams(read_ahead=read_ahead,
                                 dispatch_width=num_streams,
                                 requests_per_residency=1,
                                 memory_budget=max(num_streams * read_ahead,
                                                   8 * MiB))
    server = StreamServer(sim, node, server_params)
    specs = uniform_streams(num_streams, node.disk_ids,
                            node.capacity_bytes,
                            request_size=REQUEST_SIZE)
    fleet = ClientFleet(sim, server, specs)
    report = fleet.run(duration=scale.duration, warmup=scale.warmup,
                       settle_requests=5)
    merged = LatencySampler("merged")
    for client in fleet.clients:
        for sample in client.latency._reservoir:
            merged.observe(sample)
    staged = server.stats.counter("staged_hits").count
    total = server.stats.counter("completed").count
    return {
        SERIES_FRACTION: staged / total if total else 0.0,
        SERIES_P50: merged.percentile(0.50) * 1e3,
        SERIES_P99: merged.percentile(0.99) * 1e3,
        SERIES_MEAN: report.mean_latency * 1e3,
    }


def sweep() -> SweepSpec:
    """One point per (S, R); each fans into the four metric series."""
    points = tuple(
        Point(series=SERIES_FRACTION,
              x=f"S={num_streams} R={format_size(read_ahead)}",
              params={"streams": num_streams, "read_ahead": read_ahead})
        for num_streams in STREAM_COUNTS
        for read_ahead in READ_AHEADS)
    return SweepSpec(
        experiment_id="ext-latency-breakdown",
        title="Response-time breakdown: memory-served fraction and "
              "percentiles",
        x_label="S / R",
        y_label="see series (fraction or msec)",
        notes="extension quantifying the paper's §5.5 two-category "
              "observation",
        point_fn=_point,
        points=points,
        series_order=(SERIES_FRACTION, SERIES_P50, SERIES_P99,
                      SERIES_MEAN))


def run(scale: ExperimentScale = QUICK, jobs: int | None = None,
        cache: bool = True) -> ExperimentResult:
    """One series per metric, x = (S, R) configuration label."""
    return run_sweep(sweep(), scale, jobs=jobs, cache=cache)
