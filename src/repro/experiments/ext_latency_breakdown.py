"""Extension experiment — response-time breakdown (the paper's §5.5).

The paper observes that "within each stream, request response times can
be divided in two broad categories: requests that require disk I/O and
requests that may be serviced directly from memory", and that with large
read-ahead most requests fall in the fast category. This experiment
quantifies it from the observability subsystem: each point runs traced
(``repro.obs`` spans, no telemetry) and derives every series from the
span-based latency attribution — the memory-served fraction is the share
of client traces whose server phases are staging phases, the
percentiles come from the client root spans, and the per-component
milliseconds are :func:`repro.obs.attribution.attribute`'s exact
decomposition (queue / seek / rotation / transfer / staging / other)
instead of ad-hoc counter accounting.
"""

from __future__ import annotations

from repro import obs
from repro.analysis import ExperimentResult
from repro.core import ServerParams, StreamServer
from repro.disk.specs import WD800JD
from repro.experiments.base import QUICK, ExperimentScale
from repro.experiments.executor import Point, SweepSpec, run_sweep
from repro.node import base_topology, build_node
from repro.obs.attribution import attribute
from repro.sim import Simulator
from repro.units import KiB, MiB, format_size
from repro.workload import ClientFleet, uniform_streams

__all__ = ["run", "sweep", "READ_AHEADS", "STREAM_COUNTS"]

READ_AHEADS = [256 * KiB, 1 * MiB, 8 * MiB]
STREAM_COUNTS = [10, 100]
REQUEST_SIZE = 64 * KiB

SERIES_FRACTION = "memory-served fraction"
SERIES_P50 = "p50 (ms)"
SERIES_P99 = "p99 (ms)"
SERIES_MEAN = "mean (ms)"
#: Per-component mean milliseconds from the span attribution.
SERIES_COMPONENTS = ("queue (ms)", "seek (ms)", "rotation (ms)",
                     "transfer (ms)", "staging (ms)", "other (ms)")


def _percentile(ordered: list, q: float) -> float:
    """Exact q-quantile of a sorted sample (0.0 when empty)."""
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def _point(scale: ExperimentScale, params: dict) -> dict:
    """One (S, R) configuration → all metric series, span-derived."""
    num_streams = params["streams"]
    read_ahead = params["read_ahead"]
    with obs.activated(obs.ObsContext()) as context:
        sim = Simulator()
        node = build_node(sim, base_topology(disk_spec=WD800JD,
                                             seed=num_streams))
        server_params = ServerParams(read_ahead=read_ahead,
                                     dispatch_width=num_streams,
                                     requests_per_residency=1,
                                     memory_budget=max(
                                         num_streams * read_ahead,
                                         8 * MiB))
        server = StreamServer(sim, node, server_params)
        specs = uniform_streams(num_streams, node.disk_ids,
                                node.capacity_bytes,
                                request_size=REQUEST_SIZE)
        fleet = ClientFleet(sim, server, specs)
        fleet.run(duration=scale.duration, warmup=scale.warmup,
                  settle_requests=5)
    # The fleet ran for exactly `duration` after the warm-up/settle
    # boundary, so that boundary is now - duration: attribution over
    # roots completing at or after it reproduces the measured window
    # (completion-based, like the samplers it replaces). The
    # memory-served fraction is over the *whole* run — like the counter
    # accounting it replaces, it includes each stream's startup direct
    # reads, which is what separates the read-ahead configurations.
    boundary = sim.now - scale.duration
    spans = context.spans.spans
    report = attribute(spans, since=boundary)
    whole_run = attribute(spans)
    latencies = sorted(
        root.duration for root in context.spans.roots("client")
        if root.end is not None and root.end >= boundary)
    out = {
        SERIES_FRACTION: whole_run.staged_fraction,
        SERIES_P50: _percentile(latencies, 0.50) * 1e3,
        SERIES_P99: _percentile(latencies, 0.99) * 1e3,
        SERIES_MEAN: report.mean_latency_ms,
    }
    for label in SERIES_COMPONENTS:
        component = label.split(" ")[0]
        out[label] = report.mean_ms(component)
    return out


def sweep() -> SweepSpec:
    """One point per (S, R); each fans into the metric series."""
    points = tuple(
        Point(series=SERIES_FRACTION,
              x=f"S={num_streams} R={format_size(read_ahead)}",
              params={"streams": num_streams, "read_ahead": read_ahead})
        for num_streams in STREAM_COUNTS
        for read_ahead in READ_AHEADS)
    return SweepSpec(
        experiment_id="ext-latency-breakdown",
        title="Response-time breakdown: memory-served fraction and "
              "percentiles",
        x_label="S / R",
        y_label="see series (fraction or msec)",
        notes="extension quantifying the paper's §5.5 two-category "
              "observation; series derived from repro.obs span "
              "attribution",
        point_fn=_point,
        points=points,
        series_order=(SERIES_FRACTION, SERIES_P50, SERIES_P99,
                      SERIES_MEAN) + SERIES_COMPONENTS)


def run(scale: ExperimentScale = QUICK, jobs: int | None = None,
        cache: bool = True) -> ExperimentResult:
    """One series per metric, x = (S, R) configuration label."""
    return run_sweep(sweep(), scale, jobs=jobs, cache=cache)
