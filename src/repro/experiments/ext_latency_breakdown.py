"""Extension experiment — response-time breakdown (the paper's §5.5).

The paper observes that "within each stream, request response times can
be divided in two broad categories: requests that require disk I/O and
requests that may be serviced directly from memory", and that with large
read-ahead most requests fall in the fast category. This experiment
quantifies it: for each (S, R) we report the memory-served fraction and
the p50/p99 client latencies.
"""

from __future__ import annotations

from repro.analysis import ExperimentResult
from repro.core import ServerParams, StreamServer
from repro.disk.specs import WD800JD
from repro.experiments.base import QUICK, ExperimentScale
from repro.node import base_topology, build_node
from repro.sim import Simulator
from repro.sim.stats import LatencySampler
from repro.units import KiB, MiB, format_size
from repro.workload import ClientFleet, uniform_streams

__all__ = ["run", "READ_AHEADS", "STREAM_COUNTS"]

READ_AHEADS = [256 * KiB, 1 * MiB, 8 * MiB]
STREAM_COUNTS = [10, 100]
REQUEST_SIZE = 64 * KiB


def _measure(scale, num_streams, read_ahead):
    sim = Simulator()
    node = build_node(sim, base_topology(disk_spec=WD800JD,
                                         seed=num_streams))
    params = ServerParams(read_ahead=read_ahead,
                          dispatch_width=num_streams,
                          requests_per_residency=1,
                          memory_budget=max(num_streams * read_ahead,
                                            8 * MiB))
    server = StreamServer(sim, node, params)
    specs = uniform_streams(num_streams, node.disk_ids,
                            node.capacity_bytes,
                            request_size=REQUEST_SIZE)
    fleet = ClientFleet(sim, server, specs)
    report = fleet.run(duration=scale.duration, warmup=scale.warmup,
                       settle_requests=5)
    merged = LatencySampler("merged")
    for client in fleet.clients:
        for sample in client.latency._reservoir:
            merged.observe(sample)
    staged = server.stats.counter("staged_hits").count
    total = server.stats.counter("completed").count
    return {
        "memory_fraction": staged / total if total else 0.0,
        "p50_ms": merged.percentile(0.50) * 1e3,
        "p99_ms": merged.percentile(0.99) * 1e3,
        "mean_ms": report.mean_latency * 1e3,
    }


def run(scale: ExperimentScale = QUICK) -> ExperimentResult:
    """One series per metric, x = (S, R) configuration label."""
    result = ExperimentResult(
        experiment_id="ext-latency-breakdown",
        title="Response-time breakdown: memory-served fraction and "
              "percentiles",
        x_label="S / R",
        y_label="see series (fraction or msec)",
        notes="extension quantifying the paper's §5.5 two-category "
              "observation")

    fraction = result.new_series("memory-served fraction")
    p50 = result.new_series("p50 (ms)")
    p99 = result.new_series("p99 (ms)")
    mean = result.new_series("mean (ms)")
    for num_streams in STREAM_COUNTS:
        for read_ahead in READ_AHEADS:
            label = f"S={num_streams} R={format_size(read_ahead)}"
            metrics = _measure(scale, num_streams, read_ahead)
            fraction.add(label, metrics["memory_fraction"])
            p50.add(label, metrics["p50_ms"])
            p99.add(label, metrics["p99_ms"])
            mean.add(label, metrics["mean_ms"])
    return result
