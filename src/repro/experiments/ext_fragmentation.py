"""Extension experiment — file fragmentation vs stream detection.

The paper's server detects *device-level* sequentiality. Filesystem
fragmentation breaks long logical streams into scattered device extents,
eroding both the classifier's hit rate and the value of coalescing. This
experiment reads the same per-file workload through the extent
filesystem at increasing fragmentation and reports server throughput and
the staged-hit fraction.
"""

from __future__ import annotations

from repro.analysis import ExperimentResult
from repro.core import ServerParams, StreamServer
from repro.disk.specs import WD800JD
from repro.experiments.base import QUICK, ExperimentScale
from repro.experiments.executor import Point, SweepSpec, run_sweep
from repro.host.filesystem import ExtentFilesystem
from repro.node import base_topology, build_node
from repro.sim import Simulator
from repro.units import KiB, MiB, format_size

__all__ = ["run", "sweep", "FRAGMENT_SIZES"]

#: Extent size cap; 0 = contiguous files (fresh filesystem).
FRAGMENT_SIZES = [0, 8 * MiB, 2 * MiB, 512 * KiB]
NUM_FILES = 30
FILE_SIZE = 16 * MiB
REQUEST_SIZE = 64 * KiB

SERIES_THROUGHPUT = "throughput (MB/s)"
SERIES_STAGED = "staged-hit fraction"


def _point(scale: ExperimentScale, params: dict) -> dict:
    """One fragmentation granularity → both series' values."""
    fragment_every = params["fragment_every"]
    sim = Simulator()
    node = build_node(sim, base_topology(disk_spec=WD800JD, seed=21))
    server = StreamServer(sim, node, ServerParams(
        read_ahead=2 * MiB, dispatch_width=NUM_FILES,
        memory_budget=NUM_FILES * 2 * MiB))
    fs = ExtentFilesystem(capacity_bytes=node.capacity_bytes,
                          fragment_every=fragment_every)
    for index in range(NUM_FILES):
        fs.create(f"file{index}", FILE_SIZE)
    progress = [0] * NUM_FILES

    def reader(sim, index):
        from repro.io import IOKind, IORequest
        offset = 0
        while offset + REQUEST_SIZE <= FILE_SIZE:
            for device_offset, length in fs.map(f"file{index}", offset,
                                                REQUEST_SIZE):
                yield server.submit(IORequest(
                    kind=IOKind.READ, disk_id=0, offset=device_offset,
                    size=length, stream_id=index))
            progress[index] += REQUEST_SIZE
            offset += REQUEST_SIZE

    for index in range(NUM_FILES):
        sim.process(reader(sim, index), name=f"frag{index}")
    # Settle past detection: every reader completes a few requests.
    deadline = sim.now + 60.0
    while (sim.now < deadline and sim.peek() != float("inf")
           and min(progress) < 5 * REQUEST_SIZE):
        sim.run(until=min(sim.now + 0.25, deadline))
    baseline = sum(progress)
    start = sim.now
    sim.run(until=start + scale.duration)
    rate = (sum(progress) - baseline) / scale.duration / MiB
    report = server.report()
    return {SERIES_THROUGHPUT: rate,
            SERIES_STAGED: report.staged_hit_fraction}


def sweep() -> SweepSpec:
    """One point per granularity; each fans into two series."""
    points = tuple(
        Point(series=SERIES_THROUGHPUT,
              x=("contiguous" if fragment_every == 0
                 else format_size(fragment_every)),
              params={"fragment_every": fragment_every})
        for fragment_every in FRAGMENT_SIZES)
    return SweepSpec(
        experiment_id="ext-fragmentation",
        title="File fragmentation vs stream detection "
              f"({NUM_FILES} file readers)",
        x_label="max extent size",
        y_label="see series",
        notes="extension: extent filesystem between readers and server",
        point_fn=_point,
        points=points,
        series_order=(SERIES_THROUGHPUT, SERIES_STAGED))


def run(scale: ExperimentScale = QUICK, jobs: int | None = None,
        cache: bool = True) -> ExperimentResult:
    """Throughput and staged fraction vs fragmentation granularity."""
    return run_sweep(sweep(), scale, jobs=jobs, cache=cache)
