"""Experiment runners: one module per paper figure.

Each module exposes ``run(scale) -> ExperimentResult``; the registry maps
experiment ids to runners so benches, examples, and the CLI runner share
one catalogue. See DESIGN.md §3 for the figure-by-figure index.
"""

from repro.experiments.base import FULL, QUICK, SMOKE, ExperimentScale
from repro.experiments import (
    fig01_collapse,
    fig02_schedulers,
    fig04_reqsize,
    fig05_xdd_single,
    fig06_segsize,
    fig07_readahead_fixed_cache,
    fig08_controller_prefetch,
    fig10_readahead,
    fig11_memory,
    fig12_multidisk,
    fig13_dispatch_staging,
    fig14_single_small_dispatch,
    fig15_latency,
)

from repro.experiments import (
    ext_faults,
    ext_fleet,
    ext_fleet_openloop,
    ext_fragmentation,
    ext_insensitivity,
    ext_latency_breakdown,
)

#: Experiment id -> runner(scale) -> ExperimentResult (paper figures).
EXPERIMENTS = {
    "fig01": fig01_collapse.run,
    "fig02": fig02_schedulers.run,
    "fig04": fig04_reqsize.run,
    "fig05": fig05_xdd_single.run,
    "fig06": fig06_segsize.run,
    "fig07": fig07_readahead_fixed_cache.run,
    "fig08": fig08_controller_prefetch.run,
    "fig10": fig10_readahead.run,
    "fig11": fig11_memory.run,
    "fig12": fig12_multidisk.run,
    "fig13": fig13_dispatch_staging.run,
    "fig14": fig14_single_small_dispatch.run,
    "fig15": fig15_latency.run,
}

#: Beyond-the-paper experiments (DESIGN.md §5).
EXTENSIONS = {
    "ext-faults": ext_faults.run,
    "ext-fleet": ext_fleet.run,
    "ext-fleet-openloop": ext_fleet_openloop.run,
    "ext-fragmentation": ext_fragmentation.run,
    "ext-insensitivity": ext_insensitivity.run,
    "ext-latency-breakdown": ext_latency_breakdown.run,
}

__all__ = ["EXPERIMENTS", "EXTENSIONS", "ExperimentScale", "FULL",
           "QUICK", "SMOKE"]
