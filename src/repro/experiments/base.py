"""Shared machinery for experiment runners.

Runners measure steady-state throughput over a fixed simulated window
after a warm-up, using seeded rotational latency so results are
reproducible run-to-run. ``ExperimentScale`` trades simulated seconds for
wall-clock time: SMOKE for CI sanity, QUICK for benches, FULL for the
numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.io import BlockDevice
from repro.node import NodeTopology, StorageNode, build_node
from repro.sim import Simulator
from repro.units import KiB
from repro.workload import ClientFleet, FleetReport, StreamSpec

__all__ = [
    "FULL",
    "QUICK",
    "SMOKE",
    "ExperimentScale",
    "measure",
    "server_wrapper",
    "spread_streams",
]


@dataclass(frozen=True)
class ExperimentScale:
    """How long each measured point runs (simulated seconds)."""

    name: str
    duration: float
    warmup: float


SMOKE = ExperimentScale("smoke", duration=1.0, warmup=0.25)
QUICK = ExperimentScale("quick", duration=3.0, warmup=0.75)
FULL = ExperimentScale("full", duration=10.0, warmup=2.0)


def spread_streams(total_streams: int, disk_ids: Sequence[int],
                   disk_capacity: int, request_size: int = 64 * KiB,
                   outstanding: int = 1) -> List[StreamSpec]:
    """Spread ``total_streams`` round-robin over disks, paper-spaced.

    Unlike :func:`repro.workload.uniform_streams` (which places N streams
    on *every* disk), this distributes a node-wide total — Figure 1's
    layout, where 100 total streams land ~1.7 per disk on 60 disks.
    """
    if total_streams < 1:
        raise ValueError(f"total_streams must be >= 1: {total_streams}")
    if not disk_ids:
        raise ValueError("need at least one disk")
    per_disk = -(-total_streams // len(disk_ids))  # ceil
    spacing = disk_capacity // per_disk
    spacing -= spacing % request_size
    if spacing < request_size:
        raise ValueError("streams do not fit on the disks")
    specs = []
    for stream_id in range(total_streams):
        disk = disk_ids[stream_id % len(disk_ids)]
        index = stream_id // len(disk_ids)
        specs.append(StreamSpec(stream_id=stream_id, disk_id=disk,
                                start_offset=index * spacing,
                                request_size=request_size,
                                outstanding=outstanding))
    return specs


def server_wrapper(params, policy=None):
    """A ``wrap_device`` callable placing a StreamServer over the node."""
    from repro.core import StreamServer

    def wrap(sim: Simulator, node: StorageNode):
        return StreamServer(sim, node, params, policy=policy)

    return wrap


def measure(topology: NodeTopology, scale: ExperimentScale,
            specs_for: "callable",
            wrap_device: Optional["callable"] = None,
            settle_requests: int = 5,
            tolerate_errors: bool = False) -> FleetReport:
    """Build a node, optionally wrap it, run open-ended streams, report.

    ``specs_for(node)`` returns the stream specs; ``wrap_device(sim,
    node)`` returns the device clients talk to (e.g. a StreamServer).
    ``settle_requests`` keeps the warm-up going until every stream has
    completed that many requests, so cold-start transients (initial
    cache fill rounds, stream detection) stay out of the measurement.
    ``tolerate_errors`` makes the clients skip failed requests instead
    of crashing the run — required for fault-injection experiments,
    where some requests are *supposed* to fail.
    """
    sim = Simulator()
    node = build_node(sim, topology)
    device: BlockDevice = node
    if wrap_device is not None:
        device = wrap_device(sim, node)
    specs = specs_for(node)
    fleet = ClientFleet(sim, device, specs,
                        tolerate_errors=tolerate_errors)
    return fleet.run(duration=scale.duration, warmup=scale.warmup,
                     settle_requests=settle_requests)
