"""Figure 4 — impact of request size on throughput (no prefetch).

Single disk, 8 MB disk cache, segment size tuned equal to the request
size and drive read-ahead disabled, so throughput depends only on the
request size. Throughput rises with request size and collapses when
streams x request size exceed the cache.
"""

from __future__ import annotations

from repro.analysis import ExperimentResult
from repro.disk.specs import DISKSIM_GENERIC
from repro.experiments.base import QUICK, ExperimentScale, measure
from repro.experiments.executor import Point, SweepSpec, run_sweep
from repro.node import base_topology
from repro.units import KiB, MiB, format_size
from repro.workload import uniform_streams

__all__ = ["run", "sweep"]

REQUEST_SIZES = [8 * KiB, 16 * KiB, 64 * KiB, 128 * KiB, 256 * KiB]
STREAM_COUNTS = [1, 10, 30, 60, 100]
CACHE_BYTES = 8 * MiB


def _point(scale: ExperimentScale, params: dict) -> float:
    """Measure one (streams, request size) cell of Figure 4."""
    request_size = params["request_size"]
    num_streams = params["streams"]
    spec = DISKSIM_GENERIC.with_cache(
        cache_bytes=CACHE_BYTES,
        cache_segments=max(1, CACHE_BYTES // request_size),
        read_ahead_bytes=0)
    topology = base_topology(disk_spec=spec, seed=num_streams)
    report = measure(
        topology, scale,
        specs_for=lambda node: uniform_streams(
            num_streams, node.disk_ids, node.capacity_bytes,
            request_size=request_size))
    return report.throughput_mb


def sweep() -> SweepSpec:
    """Figure 4 as a declarative sweep (five curves x five sizes)."""
    points = tuple(
        Point(series=f"{streams} streams", x=format_size(request_size),
              params={"streams": streams, "request_size": request_size})
        for streams in STREAM_COUNTS
        for request_size in REQUEST_SIZES)
    return SweepSpec(
        experiment_id="fig04",
        title="Impact of request size on throughput "
              "(segment = request, no read-ahead)",
        x_label="request size",
        y_label="MBytes/s",
        notes="disk cache fixed at 8 MB; segments = cache/request size",
        point_fn=_point,
        points=points)


def run(scale: ExperimentScale = QUICK, jobs: int | None = None,
        cache: bool = True) -> ExperimentResult:
    """Reproduce Figure 4's five stream-count curves."""
    return run_sweep(sweep(), scale, jobs=jobs, cache=cache)
