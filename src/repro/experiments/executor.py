"""Declarative sweep specs and the parallel, cached sweep executor.

Every paper figure is a *sweep*: a list of independent, seeded,
deterministic measurement points plus a reduction into an
:class:`~repro.analysis.metrics.ExperimentResult`. Historically each
``fig*.py`` module looped over its points serially in-process; this
module factors the loop out so that every figure gets, for free:

* **Fan-out** — points run across a ``multiprocessing`` worker pool
  (``--jobs N`` / ``REPRO_JOBS``, default ``os.cpu_count()``). Points
  are independent simulations, so parallel and serial execution produce
  *byte-identical* series (asserted by
  ``tests/test_executor_determinism.py``). Tasks are pickle-clean, so
  the pool works under both ``fork`` and ``spawn`` start methods
  (``REPRO_MP_START`` forces one).
* **Memoization** — completed points are cached on disk under
  ``~/.cache/repro-sweeps/`` (override with ``REPRO_SWEEP_CACHE``;
  disable with ``--no-cache`` / ``REPRO_NO_CACHE=1``). Keys hash the
  point function's identity, the scale, the point parameters, and a
  fingerprint of the modules the point function's figure *actually
  imports* (its static import closure, see
  :func:`code_fingerprint_for`), so editing an unrelated figure or an
  unimported subsystem keeps every unaffected cache entry warm.
* **Deduplication** — points with identical cache keys inside one sweep
  (e.g. Figure 13 embedding Figure 12's R=512K baseline) simulate once.

A point function must be a *top-level* callable (picklable by
reference) with the signature ``point_fn(scale, params: dict) -> float |
dict[str, float]``. A plain float lands in the point's declared series;
a dict fans one simulation out into several series (used by the
extension experiments that report multiple metrics per run).
"""

from __future__ import annotations

import ast
import hashlib
import importlib.util
import json
import logging
import math
import os
import signal
import sys
import tempfile
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, FrozenSet, List, Mapping, Optional, \
    Sequence, Set, Tuple, Union

from repro.analysis import ExperimentResult
from repro.experiments.base import ExperimentScale
from repro.sim.eventcore import backend_token, resolve_backend

__all__ = [
    "FABRIC_MIN_POINTS",
    "FABRIC_OFF",
    "Point",
    "PointTimeoutError",
    "SweepSpec",
    "build_result",
    "code_fingerprint",
    "code_fingerprint_for",
    "import_closure",
    "point_key",
    "resolve_jobs",
    "run_sweep",
    "set_default_fabric",
    "simulated_points",
]

_log = logging.getLogger("repro.sweeps")

#: y payload of one point: one value, or {series label: value}.
PointValue = Union[float, Dict[str, float]]

#: Run-counter hook: incremented once per point actually *simulated*
#: (cache hits and in-sweep duplicates do not count). Tests use it to
#: assert that a warm cache short-circuits simulation entirely.
_SIMULATED_POINTS = 0


def simulated_points() -> int:
    """Total points simulated by this process since import (hook)."""
    return _SIMULATED_POINTS


@dataclass(frozen=True)
class Point:
    """One independent measurement of a sweep.

    ``params`` must contain only JSON-serialisable primitives — it is
    both the worker's input and part of the cache key. ``series`` is
    the label the value lands in (ignored when the point function
    returns a per-series dict). ``fn`` overrides the spec's
    ``point_fn`` for this point; figures use it to embed another
    figure's baseline points so the cache entries are *shared* with
    that figure (the key hashes the function identity, not the figure).
    """

    series: str
    x: Any
    params: Mapping[str, Any] = field(default_factory=dict)
    fn: Optional[Callable[["ExperimentScale", dict], "PointValue"]] = None


@dataclass(frozen=True)
class SweepSpec:
    """A figure as data: metadata + points + how to reduce them."""

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    point_fn: Callable[[ExperimentScale, dict], PointValue]
    points: Tuple[Point, ...]
    notes: str = ""
    #: Explicit series ordering; series not listed appear afterwards in
    #: first-use order. Needed when dict-valued points interleave.
    series_order: Tuple[str, ...] = ()
    #: Optional final hook run on the assembled result (rarely needed).
    postprocess: Optional[Callable[[ExperimentResult], ExperimentResult]] = \
        None


# -- cache ----------------------------------------------------------------

_FINGERPRINT: Optional[str] = None


#: Directory names whose files never affect simulation results: editing
#: a test or benchmark must not invalidate the sweep cache.
_FINGERPRINT_EXCLUDED_DIRS = frozenset(
    {"tests", "benchmarks", "docs", "__pycache__"})


def code_fingerprint(root: Optional[Union[str, Path]] = None) -> str:
    """SHA-256 over the ``repro`` *package* sources (stable per checkout).

    Any edit to a simulation module changes the fingerprint and thus
    invalidates the whole on-disk result cache — coarse, but it makes
    stale-cache bugs structurally impossible. Only files under the
    installed ``repro`` package count: tests, benchmarks and docs (and
    stray ``__pycache__`` artefacts) are explicitly excluded so editing
    them never throws away cached sweep results.

    ``root`` overrides the hashed directory (for tests); the module-level
    memo only applies to the default root.
    """
    global _FINGERPRINT
    if root is None and _FINGERPRINT is not None:
        return _FINGERPRINT
    if root is None:
        import repro
        base = Path(repro.__file__).resolve().parent
    else:
        base = Path(root).resolve()
    digest = hashlib.sha256()
    for path in sorted(base.rglob("*.py")):
        relative = path.relative_to(base)
        if _FINGERPRINT_EXCLUDED_DIRS.intersection(relative.parts[:-1]):
            continue
        digest.update(str(relative).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    fingerprint = digest.hexdigest()
    if root is None:
        _FINGERPRINT = fingerprint
    return fingerprint


# -- per-module fingerprints ----------------------------------------------
#
# Hashing the whole package is safe but coarse: editing one figure (or a
# doc-string in an unrelated subsystem) used to throw away *every* cached
# point. Instead, each point function is keyed on the static import
# closure of its own module — exactly the code that can influence its
# simulation. Package ``__init__`` aggregators (``repro.experiments``
# imports every figure to build the registry) are digested but *not*
# traversed when they are merely ancestors of an imported module, so one
# figure's closure never drags in every other figure.

#: module name -> absolute source path (or None), memoised per process.
_MODULE_SOURCES: Dict[str, Optional[str]] = {}
#: module name -> (traverse targets, digest-only targets).
_MODULE_IMPORTS: Dict[str, Tuple[FrozenSet[str], FrozenSet[str]]] = {}
#: (module, package) -> transitive closure of package-internal modules.
_CLOSURE_MEMO: Dict[Tuple[str, str], FrozenSet[str]] = {}
#: (module, package) -> combined closure fingerprint.
_CLOSURE_FINGERPRINTS: Dict[Tuple[str, str], str] = {}


def _fingerprint_cache_clear() -> None:
    """Drop all fingerprint memos (tests edit sources mid-process)."""
    global _FINGERPRINT
    _FINGERPRINT = None
    _MODULE_SOURCES.clear()
    _MODULE_IMPORTS.clear()
    _CLOSURE_MEMO.clear()
    _CLOSURE_FINGERPRINTS.clear()


def _module_source(name: str) -> Optional[str]:
    """Path of ``name``'s ``.py`` source, or None for anything exotic."""
    if name in _MODULE_SOURCES:
        return _MODULE_SOURCES[name]
    try:
        spec = importlib.util.find_spec(name)
    except (ImportError, AttributeError, ValueError):
        spec = None
    origin = getattr(spec, "origin", None)
    path = origin if origin and origin.endswith(".py") else None
    _MODULE_SOURCES[name] = path
    return path


def _direct_imports(name: str, path: str, package: str) \
        -> Tuple[FrozenSet[str], FrozenSet[str]]:
    """Package-internal modules ``name`` imports, from its AST.

    Returns ``(traverse, digest_only)``: modules whose own imports must
    be followed, and modules whose *file* matters (the importing module
    executes it) but whose imports must not be followed — the
    ``from pkg import submodule`` case, where ``pkg/__init__`` is often
    an aggregator re-importing the whole package.
    """
    if name in _MODULE_IMPORTS:
        return _MODULE_IMPORTS[name]
    prefix = package + "."
    traverse: Set[str] = set()
    digest_only: Set[str] = set()
    # Current package for resolving relative imports.
    pkg = name if path.endswith("__init__.py") else name.rpartition(".")[0]
    tree = ast.parse(Path(path).read_bytes(), filename=path)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                target = alias.name
                if target == package or target.startswith(prefix):
                    traverse.add(target)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                parts = pkg.split(".") if pkg else []
                if node.level > 1:
                    parts = parts[:len(parts) - (node.level - 1)]
                base = ".".join(parts)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            else:
                base = node.module or ""
            if base != package and not base.startswith(prefix):
                continue
            for alias in node.names:
                child = f"{base}.{alias.name}"
                if alias.name != "*" and _module_source(child) is not None:
                    # ``from pkg import submodule``: follow the
                    # submodule, only digest the aggregating package.
                    traverse.add(child)
                    digest_only.add(base)
                else:
                    traverse.add(base)
    result = (frozenset(traverse), frozenset(digest_only))
    _MODULE_IMPORTS[name] = result
    return result


def import_closure(module: str, package: str = "repro") -> FrozenSet[str]:
    """Package-internal modules whose source can affect ``module``.

    The transitive static import closure of ``module`` within
    ``package``, plus the ``__init__`` of every ancestor package
    (executed at import time) — included by digest only, never
    traversed, so registry-style aggregators stay out of the closure.
    """
    memo_key = (module, package)
    if memo_key in _CLOSURE_MEMO:
        return _CLOSURE_MEMO[memo_key]
    traversed: Set[str] = set()
    digest_only: Set[str] = set()
    stack = [module]
    while stack:
        name = stack.pop()
        if name in traversed:
            continue
        traversed.add(name)
        path = _module_source(name)
        if path is None:
            continue
        follow, shallow = _direct_imports(name, path, package)
        digest_only.update(shallow)
        stack.extend(follow - traversed)
    # Ancestor packages run at import time: digest their __init__ too.
    for name in list(traversed) + list(digest_only):
        parts = name.split(".")
        for depth in range(1, len(parts)):
            digest_only.add(".".join(parts[:depth]))
    closure = frozenset(traversed | digest_only)
    _CLOSURE_MEMO[memo_key] = closure
    return closure


def code_fingerprint_for(point_fn: Callable) -> str:
    """Fingerprint of the code that can affect ``point_fn``'s result.

    SHA-256 over the sources of ``point_fn``'s module import closure
    (see :func:`import_closure`, rooted at the function's top-level
    package). Falls back to the whole-package :func:`code_fingerprint`
    when the function's module has no reachable source (interactive
    definitions) — coarse, never stale.

    The active event-core backend token (``compiled/<version>``,
    ``calendar`` or ``heapq``; see :mod:`repro.sim.eventcore`) is mixed
    into the returned digest: the compiled core's sources are not part
    of any Python import closure, and although the backends are pinned
    bit-identical by the equivalence suite, a cache entry must never
    *assume* that pin holds for a backend that never actually ran it.
    The source-closure part stays memoized; the token is applied per
    call so flipping ``REPRO_EVENTCORE`` mid-process still misses.
    """
    module = getattr(point_fn, "__module__", "") or ""
    package = module.split(".", 1)[0]
    memo_key = (module, package)
    base = _CLOSURE_FINGERPRINTS.get(memo_key)
    if base is None:
        if not module or _module_source(module) is None:
            base = code_fingerprint()
        else:
            digest = hashlib.sha256()
            for name in sorted(import_closure(module, package)):
                path = _module_source(name)
                if path is None:
                    continue
                digest.update(name.encode())
                digest.update(b"\0")
                digest.update(Path(path).read_bytes())
                digest.update(b"\0")
            base = digest.hexdigest()
            _CLOSURE_FINGERPRINTS[memo_key] = base
    token = backend_token(resolve_backend(None))
    return hashlib.sha256(
        f"{base}|eventcore={token}".encode()).hexdigest()


def point_key(point_fn: Callable, scale: ExperimentScale,
              params: Mapping[str, Any]) -> str:
    """Stable cache key for one measurement.

    Deliberately excludes the figure id and series label: they do not
    affect the simulation, so figures that embed another figure's
    baseline (fig13/fig14) share cache entries with it. The code
    component is the point function's *import-closure* fingerprint, so
    edits to modules a figure never imports leave its entries warm.
    """
    payload = json.dumps(
        {
            "fn": f"{point_fn.__module__}.{point_fn.__qualname__}",
            "scale": [scale.name, scale.duration, scale.warmup],
            "params": dict(params),
            "code": code_fingerprint_for(point_fn),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _valid_point_value(value: Any) -> bool:
    """Is ``value`` shaped like a PointValue (float | {str: float})?"""
    if isinstance(value, (int, float)):
        return True
    if isinstance(value, dict):
        return all(isinstance(k, str) and isinstance(v, (int, float))
                   for k, v in value.items())
    return False


class SweepCache:
    """One-file-per-point JSON result cache with atomic writes.

    Corrupt entries — truncated writes, garbage bytes, valid JSON of
    the wrong shape — are *evicted* (logged + unlinked) and reported as
    misses, so a damaged cache heals itself by recomputation instead of
    poisoning sweeps forever or aborting them.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None):
        if root is None:
            root = os.environ.get("REPRO_SWEEP_CACHE") or \
                Path.home() / ".cache" / "repro-sweeps"
        self.root = Path(root).expanduser()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _evict(self, path: Path, reason: object) -> None:
        """Log and unlink a damaged entry; never raises."""
        _log.warning("evicting corrupt sweep-cache entry %s (%s); "
                     "the point will be recomputed", path, reason)
        try:
            os.unlink(path)
        except OSError:
            pass

    def get(self, key: str) -> Tuple[bool, Optional[PointValue]]:
        """(hit, value); corrupt entries are evicted and count as misses."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                value = json.load(handle)["value"]
        except FileNotFoundError:
            return False, None
        except (OSError, ValueError, KeyError) as exc:
            self._evict(path, exc)
            return False, None
        if not _valid_point_value(value):
            self._evict(
                path, f"value has type {type(value).__name__}, "
                      f"not float | dict[str, float]")
            return False, None
        return True, value

    def put(self, key: str, value: PointValue) -> None:
        """Persist ``value`` atomically against concurrent readers
        *and* writers on the same root.

        The cache root is shared property: pool workers, fabric workers
        on other hosts (via a network filesystem) and the coordinator
        all write it concurrently. Three ingredients make that safe:

        * a **per-writer temp name** (random suffix + pid in the
          prefix), so two writers of the same key never clobber each
          other's half-written temp file;
        * an ``fsync`` before the rename, so the rename can never be
          durably ordered ahead of the data it publishes (a crash
          window that would leave a *committed* empty/truncated entry
          — self-healing via eviction, but needlessly lost work);
        * ``os.replace``, atomic on POSIX: a concurrent ``get`` sees
          the old entry or the new one, never a torn mix (pinned by
          the two-process stress test).
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=path.parent,
            prefix=f".tmp-{os.getpid()}-", suffix=".json", delete=False)
        try:
            with handle:
                json.dump({"value": value}, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise


# -- execution ------------------------------------------------------------

def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit arg > ``REPRO_JOBS`` > ``os.cpu_count()``."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            jobs = int(env)
        else:
            jobs = os.cpu_count() or 1
    return max(1, jobs)


class PointTimeoutError(RuntimeError):
    """A point exceeded the ``REPRO_POINT_TIMEOUT`` wall-clock budget."""


def _point_timeout_s() -> float:
    """Per-point wall-clock budget in seconds (0 = unlimited).

    ``REPRO_POINT_TIMEOUT`` guards sweeps against a single runaway
    point (an accidental infinite simulation, a pathological parameter
    combination) pinning a worker forever. Unset, empty or malformed
    values disable the guard.
    """
    raw = os.environ.get("REPRO_POINT_TIMEOUT", "").strip()
    if not raw:
        return 0.0
    try:
        return max(0.0, float(raw))
    except ValueError:
        _log.warning("ignoring malformed REPRO_POINT_TIMEOUT=%r", raw)
        return 0.0


def _invoke(task: Tuple[Callable, ExperimentScale, dict]) -> PointValue:
    """Worker entry point (top-level so it pickles by reference).

    Honours ``REPRO_POINT_TIMEOUT``: a point that overruns is aborted
    via ``SIGALRM`` and yields ``NaN`` (which ``run_sweep`` refuses to
    cache), so one stuck point costs its budget, not the whole sweep.
    The guard needs the main thread and ``SIGALRM``; elsewhere the
    point simply runs unguarded.
    """
    point_fn, scale, params = task
    limit = _point_timeout_s()
    if limit <= 0.0 or not hasattr(signal, "SIGALRM") \
            or threading.current_thread() is not threading.main_thread():
        return point_fn(scale, params)

    def _expired(signum, frame):
        raise PointTimeoutError(
            f"point {point_fn.__module__}.{point_fn.__qualname__}"
            f"({params!r}) exceeded REPRO_POINT_TIMEOUT={limit:g}s")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, limit)
    try:
        return point_fn(scale, params)
    except PointTimeoutError as exc:
        _log.warning("%s; recording NaN (not cached)", exc)
        return float("nan")
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _contains_nan(value: PointValue) -> bool:
    """True when a point value (or any series entry) is NaN."""
    if isinstance(value, dict):
        return any(isinstance(v, float) and math.isnan(v)
                   for v in value.values())
    return isinstance(value, float) and math.isnan(value)


def _worker_init(parent_sys_path: List[str]) -> None:
    """Pool initializer: make the parent's imports resolvable.

    Fork workers inherit the parent interpreter wholesale, but spawn
    workers start from a fresh interpreter whose ``sys.path`` only
    reflects the environment — any path the parent added at runtime
    (editable checkouts, test harness roots) is missing, so unpickling
    ``point_fn`` by reference would fail. Replaying the parent's
    ``sys.path`` entries (order preserved, duplicates skipped) makes
    every task pickle-clean under both start methods.

    Workers also enable the sweep-wide free-list arena
    (:func:`repro.sim.eventcore.sweep_arena`): one worker process runs
    many points back to back, and the arena hands each point's
    simulator the previous one's warm Timeout/Event pools.
    """
    for entry in reversed(parent_sys_path):
        if entry not in sys.path:
            sys.path.insert(0, entry)
    from repro.sim.eventcore import sweep_arena
    sweep_arena().enable()


#: Scales at or below this simulated duration count as "tiny": each
#: point finishes in well under a second of wall time, so pool IPC
#: round-trips are a visible fraction of the sweep.
_TINY_SCALE_DURATION = 1.5
#: Upper bound on batching — small enough that the tail of a sweep
#: still spreads across workers.
_MAX_CHUNKSIZE = 8


def _chunksize(scale: ExperimentScale, ntasks: int, workers: int) -> int:
    """Batch size for ``pool.map`` over ``ntasks`` points.

    SMOKE-scale points simulate ~1 second each and return in tens of
    milliseconds, so shipping them one at a time makes the pool's IPC a
    measurable overhead: batch them so each worker gets a few points per
    round-trip (aiming for ~4 chunks per worker to keep the load
    balanced). Full-scale points run for seconds each — there the
    head-of-line risk of batching outweighs the IPC saving, so they keep
    ``chunksize=1``. Ordering and results are unaffected either way
    (``pool.map`` preserves order); only message framing changes.
    """
    if scale.duration > _TINY_SCALE_DURATION:
        return 1
    return max(1, min(_MAX_CHUNKSIZE, ntasks // (workers * 4)))


def _pool_context():
    """Worker start method: ``REPRO_MP_START`` > fork > platform default.

    Fork is preferred where available (cheap, inherits the imported
    package); the pool is nonetheless pickle-clean, so forcing
    ``REPRO_MP_START=spawn`` (or running on a platform without fork)
    produces byte-identical sweeps — asserted by
    ``tests/test_executor_determinism.py``.
    """
    import multiprocessing
    method = os.environ.get("REPRO_MP_START", "").strip()
    if method:
        return multiprocessing.get_context(method)
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return multiprocessing.get_context()


# -- fabric ----------------------------------------------------------------
#
# The distributed alternative to the local pool: run_sweep(fabric=...)
# ships pending points to a coordinator/worker fabric
# (repro.experiments.fabric) instead of a ProcessPoolExecutor. The
# fabric shares the same content-addressed cache keys, so its workers'
# local caches, the coordinator's store and this process's store are
# one coherent cache. Resolution order: explicit argument >
# set_default_fabric() (the runner's --workers) > REPRO_FABRIC.

#: Sentinel/spec value that disables the fabric even when REPRO_FABRIC
#: is set (used by traced runs, whose spans must stay in-process).
FABRIC_OFF = "off"

#: Mixed-mode floor: a sweep with fewer than this many *pending* points
#: skips a resolved fabric and runs on the in-process pool instead.
#: Shipping a point costs a network round-trip plus (first use) worker
#: spawn/handshake, which dwarfs a 2-point residual sweep after a warm
#: cache; big fan-outs still go distributed. Override with
#: ``REPRO_FABRIC_MIN_POINTS`` (0 = always use the fabric).
FABRIC_MIN_POINTS = 4


def _fabric_min_points() -> int:
    """The mixed-mode floor, honouring ``REPRO_FABRIC_MIN_POINTS``."""
    raw = os.environ.get("REPRO_FABRIC_MIN_POINTS", "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            _log.warning("ignoring non-integer REPRO_FABRIC_MIN_POINTS"
                         "=%r", raw)
    return FABRIC_MIN_POINTS

_DEFAULT_FABRIC: Optional[Any] = None
#: spec string -> started Fabric, shared across sweeps and closed at exit.
_FABRICS: Dict[str, Any] = {}


def set_default_fabric(fabric: Optional[Any]) -> Optional[Any]:
    """Install a process-wide default fabric (spec string, Fabric
    instance, or :data:`FABRIC_OFF`); returns the previous default."""
    global _DEFAULT_FABRIC
    previous = _DEFAULT_FABRIC
    _DEFAULT_FABRIC = fabric
    return previous


def _fabric_for_spec(spec: str) -> Any:
    """The shared Fabric for a spec string (created once, reused)."""
    fabric = _FABRICS.get(spec)
    if fabric is None:
        import atexit
        from repro.experiments.fabric import Fabric
        fabric = _FABRICS[spec] = Fabric(spec)
        atexit.register(fabric.close)
    return fabric


def _resolve_fabric(fabric: Optional[Any]) -> Optional[Any]:
    """Resolve run_sweep's ``fabric`` argument to a Fabric or None."""
    if fabric is None:
        fabric = _DEFAULT_FABRIC
    if fabric is None:
        fabric = os.environ.get("REPRO_FABRIC", "").strip() or None
    if fabric is None or fabric == FABRIC_OFF or fabric == "":
        return None
    if isinstance(fabric, str):
        return _fabric_for_spec(fabric)
    return fabric


def build_result(spec: SweepSpec,
                 values: Sequence[PointValue]) -> ExperimentResult:
    """Reduce point values (in spec order) into an ExperimentResult."""
    result = ExperimentResult(
        experiment_id=spec.experiment_id, title=spec.title,
        x_label=spec.x_label, y_label=spec.y_label, notes=spec.notes)
    series = {label: result.new_series(label)
              for label in spec.series_order}

    def series_for(label: str):
        if label not in series:
            series[label] = result.new_series(label)
        return series[label]

    for point, value in zip(spec.points, values):
        if isinstance(value, dict):
            for label, y in value.items():
                series_for(label).add(point.x, y)
        else:
            series_for(point.series).add(point.x, value)
    if spec.postprocess is not None:
        result = spec.postprocess(result)
    return result


def run_sweep(spec: SweepSpec, scale: ExperimentScale,
              jobs: Optional[int] = None, cache: bool = True,
              cache_root: Optional[Union[str, Path]] = None,
              fabric: Optional[Any] = None) -> ExperimentResult:
    """Execute a sweep: cache lookup → fan-out → write-back → reduce.

    ``jobs=1`` (or a single pending point) runs in-process with no pool
    overhead; that path is the reference the determinism test compares
    the pool against. ``cache=False`` or ``REPRO_NO_CACHE=1`` skips the
    on-disk cache but still deduplicates identical points in-sweep.

    ``fabric`` (or the runner's ``--workers`` default, or
    ``REPRO_FABRIC``) routes pending points to a distributed
    coordinator/worker fabric instead of the local pool — a spec string
    (``"4"`` for local spawns, ``"hostA:7070,hostB:7070"`` for remote
    workers) or a started :class:`repro.experiments.fabric.Fabric`.
    Points are pure, so fabric and pool runs are byte-identical; any
    fabric failure falls back to local execution, like a broken pool.
    Dispatch is **mixed-mode**: sweeps whose pending-point count is
    below :data:`FABRIC_MIN_POINTS` (override:
    ``REPRO_FABRIC_MIN_POINTS``) stay on the in-process pool even with
    a fabric configured — a near-fully-cached figure's one residual
    point is cheaper to simulate than to ship.
    """
    global _SIMULATED_POINTS
    points = spec.points
    use_cache = cache and not os.environ.get("REPRO_NO_CACHE")
    store = SweepCache(cache_root) if use_cache else None
    fabric = _resolve_fabric(fabric)

    fns = [p.fn or spec.point_fn for p in points]
    keys = [point_key(fn, scale, p.params)
            for fn, p in zip(fns, points)]
    values: List[Optional[PointValue]] = [None] * len(points)
    done = [False] * len(points)
    if store is not None:
        for index, key in enumerate(keys):
            hit, value = store.get(key)
            if hit:
                values[index] = value
                done[index] = True

    # Group outstanding work by key so duplicates simulate once.
    pending: Dict[str, List[int]] = {}
    for index, key in enumerate(keys):
        if not done[index]:
            pending.setdefault(key, []).append(index)

    if pending:
        order = list(pending)
        tasks = [(fns[pending[key][0]], scale,
                  dict(points[pending[key][0]].params)) for key in order]
        _SIMULATED_POINTS += len(tasks)
        computed = None
        if fabric is not None and len(tasks) < _fabric_min_points():
            # Mixed mode: the distributed path only pays off at fan-out
            # scale, and the choice cannot change output bits (points
            # are pure and both paths share the cache keys).
            _log.debug("sweep %s: %d pending point(s) below the fabric "
                       "floor (%d); running in-process",
                       spec.experiment_id, len(tasks),
                       _fabric_min_points())
            fabric = None
        if fabric is not None:
            from repro.experiments.fabric import FabricError
            # With an ambient obs context active, the fabric runs every
            # point traced: workers record spans/telemetry locally and
            # ship them back with their results, and run_tasks merges
            # the payloads into this context worker-tagged (DESIGN.md
            # §10) — so a distributed traced run yields one coherent
            # trace instead of N invisible ones. Tracing forces the
            # shared cache off (a hit would skip the simulation that
            # produces the spans); the runner's --trace-out path
            # already disables the local cache for the same reason.
            from repro import obs as _obs
            context = _obs.current()
            trace_config = None
            if getattr(context, "enabled", False):
                recorder = context.spans
                trace_config = {
                    "span_capacity": recorder.capacity,
                    "span_reserved": recorder.reserved,
                    "telemetry_interval": context.telemetry_interval,
                    "telemetry_capacity": context.telemetry_capacity,
                }
            try:
                computed = fabric.run_tasks(
                    tasks, keys=order,
                    use_cache=(store is not None
                               and trace_config is None),
                    trace=trace_config,
                    obs_context=context if trace_config else None)
            except FabricError as exc:
                _log.warning(
                    "sweep fabric failed (%s); recomputing %d point(s) "
                    "locally", exc, len(tasks))
                computed = None
        if computed is None:
            workers = min(resolve_jobs(jobs), len(tasks))
            if workers <= 1:
                computed = [_invoke(task) for task in tasks]
            else:
                try:
                    with ProcessPoolExecutor(
                            max_workers=workers,
                            mp_context=_pool_context(),
                            initializer=_worker_init,
                            initargs=(list(sys.path),)) as pool:
                        computed = list(pool.map(
                            _invoke, tasks,
                            chunksize=_chunksize(scale, len(tasks),
                                                 workers)))
                except Exception as exc:
                    # A worker died (OOM-kill, segfault in an
                    # extension, hard crash) or the pool broke some
                    # other way. The points themselves are
                    # deterministic pure functions, so recompute the
                    # whole batch serially in-process rather than
                    # aborting the sweep.
                    _log.warning(
                        "sweep worker pool failed (%s: %s); recomputing "
                        "%d point(s) serially",
                        type(exc).__name__, exc, len(tasks))
                    computed = [_invoke(task) for task in tasks]
        for key, value in zip(order, computed):
            for index in pending[key]:
                values[index] = value
            if store is not None and not _contains_nan(value):
                # NaN marks an aborted point (REPRO_POINT_TIMEOUT):
                # never persist it, so the next run retries.
                store.put(key, value)

    return build_result(spec, values)
