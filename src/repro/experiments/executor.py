"""Declarative sweep specs and the parallel, cached sweep executor.

Every paper figure is a *sweep*: a list of independent, seeded,
deterministic measurement points plus a reduction into an
:class:`~repro.analysis.metrics.ExperimentResult`. Historically each
``fig*.py`` module looped over its points serially in-process; this
module factors the loop out so that every figure gets, for free:

* **Fan-out** — points run across a ``multiprocessing`` worker pool
  (``--jobs N`` / ``REPRO_JOBS``, default ``os.cpu_count()``). Points
  are independent simulations, so parallel and serial execution produce
  *byte-identical* series (asserted by
  ``tests/test_executor_determinism.py``).
* **Memoization** — completed points are cached on disk under
  ``~/.cache/repro-sweeps/`` (override with ``REPRO_SWEEP_CACHE``;
  disable with ``--no-cache`` / ``REPRO_NO_CACHE=1``). Keys hash the
  point function's identity, the scale, the point parameters, and a
  fingerprint of the whole ``repro`` source tree, so any code change
  invalidates every cached value.
* **Deduplication** — points with identical cache keys inside one sweep
  (e.g. Figure 13 embedding Figure 12's R=512K baseline) simulate once.

A point function must be a *top-level* callable (picklable by
reference) with the signature ``point_fn(scale, params: dict) -> float |
dict[str, float]``. A plain float lands in the point's declared series;
a dict fans one simulation out into several series (used by the
extension experiments that report multiple metrics per run).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, \
    Tuple, Union

from repro.analysis import ExperimentResult
from repro.experiments.base import ExperimentScale

__all__ = [
    "Point",
    "SweepSpec",
    "build_result",
    "code_fingerprint",
    "point_key",
    "resolve_jobs",
    "run_sweep",
    "simulated_points",
]

#: y payload of one point: one value, or {series label: value}.
PointValue = Union[float, Dict[str, float]]

#: Run-counter hook: incremented once per point actually *simulated*
#: (cache hits and in-sweep duplicates do not count). Tests use it to
#: assert that a warm cache short-circuits simulation entirely.
_SIMULATED_POINTS = 0


def simulated_points() -> int:
    """Total points simulated by this process since import (hook)."""
    return _SIMULATED_POINTS


@dataclass(frozen=True)
class Point:
    """One independent measurement of a sweep.

    ``params`` must contain only JSON-serialisable primitives — it is
    both the worker's input and part of the cache key. ``series`` is
    the label the value lands in (ignored when the point function
    returns a per-series dict). ``fn`` overrides the spec's
    ``point_fn`` for this point; figures use it to embed another
    figure's baseline points so the cache entries are *shared* with
    that figure (the key hashes the function identity, not the figure).
    """

    series: str
    x: Any
    params: Mapping[str, Any] = field(default_factory=dict)
    fn: Optional[Callable[["ExperimentScale", dict], "PointValue"]] = None


@dataclass(frozen=True)
class SweepSpec:
    """A figure as data: metadata + points + how to reduce them."""

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    point_fn: Callable[[ExperimentScale, dict], PointValue]
    points: Tuple[Point, ...]
    notes: str = ""
    #: Explicit series ordering; series not listed appear afterwards in
    #: first-use order. Needed when dict-valued points interleave.
    series_order: Tuple[str, ...] = ()
    #: Optional final hook run on the assembled result (rarely needed).
    postprocess: Optional[Callable[[ExperimentResult], ExperimentResult]] = \
        None


# -- cache ----------------------------------------------------------------

_FINGERPRINT: Optional[str] = None


#: Directory names whose files never affect simulation results: editing
#: a test or benchmark must not invalidate the sweep cache.
_FINGERPRINT_EXCLUDED_DIRS = frozenset(
    {"tests", "benchmarks", "docs", "__pycache__"})


def code_fingerprint(root: Optional[Union[str, Path]] = None) -> str:
    """SHA-256 over the ``repro`` *package* sources (stable per checkout).

    Any edit to a simulation module changes the fingerprint and thus
    invalidates the whole on-disk result cache — coarse, but it makes
    stale-cache bugs structurally impossible. Only files under the
    installed ``repro`` package count: tests, benchmarks and docs (and
    stray ``__pycache__`` artefacts) are explicitly excluded so editing
    them never throws away cached sweep results.

    ``root`` overrides the hashed directory (for tests); the module-level
    memo only applies to the default root.
    """
    global _FINGERPRINT
    if root is None and _FINGERPRINT is not None:
        return _FINGERPRINT
    if root is None:
        import repro
        base = Path(repro.__file__).resolve().parent
    else:
        base = Path(root).resolve()
    digest = hashlib.sha256()
    for path in sorted(base.rglob("*.py")):
        relative = path.relative_to(base)
        if _FINGERPRINT_EXCLUDED_DIRS.intersection(relative.parts[:-1]):
            continue
        digest.update(str(relative).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    fingerprint = digest.hexdigest()
    if root is None:
        _FINGERPRINT = fingerprint
    return fingerprint


def point_key(point_fn: Callable, scale: ExperimentScale,
              params: Mapping[str, Any]) -> str:
    """Stable cache key for one measurement.

    Deliberately excludes the figure id and series label: they do not
    affect the simulation, so figures that embed another figure's
    baseline (fig13/fig14) share cache entries with it.
    """
    payload = json.dumps(
        {
            "fn": f"{point_fn.__module__}.{point_fn.__qualname__}",
            "scale": [scale.name, scale.duration, scale.warmup],
            "params": dict(params),
            "code": code_fingerprint(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class SweepCache:
    """One-file-per-point JSON result cache with atomic writes."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        if root is None:
            root = os.environ.get("REPRO_SWEEP_CACHE") or \
                Path.home() / ".cache" / "repro-sweeps"
        self.root = Path(root).expanduser()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Tuple[bool, Optional[PointValue]]:
        """(hit, value); corrupt entries count as misses."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return True, json.load(handle)["value"]
        except (OSError, ValueError, KeyError):
            return False, None

    def put(self, key: str, value: PointValue) -> None:
        """Persist ``value`` atomically (rename over a temp file)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=path.parent,
            prefix=".tmp-", suffix=".json", delete=False)
        try:
            with handle:
                json.dump({"value": value}, handle)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise


# -- execution ------------------------------------------------------------

def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit arg > ``REPRO_JOBS`` > ``os.cpu_count()``."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            jobs = int(env)
        else:
            jobs = os.cpu_count() or 1
    return max(1, jobs)


def _invoke(task: Tuple[Callable, ExperimentScale, dict]) -> PointValue:
    """Worker entry point (top-level so it pickles by reference)."""
    point_fn, scale, params = task
    return point_fn(scale, params)


#: Scales at or below this simulated duration count as "tiny": each
#: point finishes in well under a second of wall time, so pool IPC
#: round-trips are a visible fraction of the sweep.
_TINY_SCALE_DURATION = 1.5
#: Upper bound on batching — small enough that the tail of a sweep
#: still spreads across workers.
_MAX_CHUNKSIZE = 8


def _chunksize(scale: ExperimentScale, ntasks: int, workers: int) -> int:
    """Batch size for ``pool.map`` over ``ntasks`` points.

    SMOKE-scale points simulate ~1 second each and return in tens of
    milliseconds, so shipping them one at a time makes the pool's IPC a
    measurable overhead: batch them so each worker gets a few points per
    round-trip (aiming for ~4 chunks per worker to keep the load
    balanced). Full-scale points run for seconds each — there the
    head-of-line risk of batching outweighs the IPC saving, so they keep
    ``chunksize=1``. Ordering and results are unaffected either way
    (``pool.map`` preserves order); only message framing changes.
    """
    if scale.duration > _TINY_SCALE_DURATION:
        return 1
    return max(1, min(_MAX_CHUNKSIZE, ntasks // (workers * 4)))


def _pool_context():
    """Prefer fork (cheap, inherits the imported package) over spawn."""
    import multiprocessing
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return multiprocessing.get_context()


def build_result(spec: SweepSpec,
                 values: Sequence[PointValue]) -> ExperimentResult:
    """Reduce point values (in spec order) into an ExperimentResult."""
    result = ExperimentResult(
        experiment_id=spec.experiment_id, title=spec.title,
        x_label=spec.x_label, y_label=spec.y_label, notes=spec.notes)
    series = {label: result.new_series(label)
              for label in spec.series_order}

    def series_for(label: str):
        if label not in series:
            series[label] = result.new_series(label)
        return series[label]

    for point, value in zip(spec.points, values):
        if isinstance(value, dict):
            for label, y in value.items():
                series_for(label).add(point.x, y)
        else:
            series_for(point.series).add(point.x, value)
    if spec.postprocess is not None:
        result = spec.postprocess(result)
    return result


def run_sweep(spec: SweepSpec, scale: ExperimentScale,
              jobs: Optional[int] = None, cache: bool = True,
              cache_root: Optional[Union[str, Path]] = None) \
        -> ExperimentResult:
    """Execute a sweep: cache lookup → fan-out → write-back → reduce.

    ``jobs=1`` (or a single pending point) runs in-process with no pool
    overhead; that path is the reference the determinism test compares
    the pool against. ``cache=False`` or ``REPRO_NO_CACHE=1`` skips the
    on-disk cache but still deduplicates identical points in-sweep.
    """
    global _SIMULATED_POINTS
    points = spec.points
    use_cache = cache and not os.environ.get("REPRO_NO_CACHE")
    store = SweepCache(cache_root) if use_cache else None

    fns = [p.fn or spec.point_fn for p in points]
    keys = [point_key(fn, scale, p.params)
            for fn, p in zip(fns, points)]
    values: List[Optional[PointValue]] = [None] * len(points)
    done = [False] * len(points)
    if store is not None:
        for index, key in enumerate(keys):
            hit, value = store.get(key)
            if hit:
                values[index] = value
                done[index] = True

    # Group outstanding work by key so duplicates simulate once.
    pending: Dict[str, List[int]] = {}
    for index, key in enumerate(keys):
        if not done[index]:
            pending.setdefault(key, []).append(index)

    if pending:
        order = list(pending)
        tasks = [(fns[pending[key][0]], scale,
                  dict(points[pending[key][0]].params)) for key in order]
        _SIMULATED_POINTS += len(tasks)
        workers = min(resolve_jobs(jobs), len(tasks))
        if workers <= 1:
            computed = [_invoke(task) for task in tasks]
        else:
            with ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=_pool_context()) as pool:
                computed = list(pool.map(
                    _invoke, tasks,
                    chunksize=_chunksize(scale, len(tasks), workers)))
        for key, value in zip(order, computed):
            for index in pending[key]:
                values[index] = value
            if store is not None:
                store.put(key, value)

    return build_result(spec, values)
