"""Figure 10 — effect of read-ahead R with all streams dispatched.

Single disk under the stream server with ``M = D·R·N``, ``D = #S``,
``N = 1``: every stream is staged and dispatched. Read-ahead sweeps from
none to 8 MB; at R = 8 MB the disk reaches ~90% of its single-stream
maximum *regardless of the stream count* — the headline insensitivity
result.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis import ExperimentResult
from repro.core import ServerParams
from repro.disk.specs import WD800JD
from repro.experiments.base import (
    QUICK,
    ExperimentScale,
    measure,
    server_wrapper,
)
from repro.experiments.executor import Point, SweepSpec, run_sweep
from repro.node import base_topology
from repro.units import KiB, MiB, format_size
from repro.workload import uniform_streams

__all__ = ["run", "sweep", "series_label", "READ_AHEADS", "STREAM_COUNTS"]

#: R values; 0 = no read-ahead (server passes requests through).
READ_AHEADS = [8 * MiB, 2 * MiB, 1 * MiB, 512 * KiB, 128 * KiB, 0]
STREAM_COUNTS = [10, 30, 60, 100]
REQUEST_SIZE = 64 * KiB


def _params(read_ahead: int, num_streams: int) -> Optional[ServerParams]:
    if read_ahead == 0:
        return ServerParams(read_ahead=0, memory_budget=0)
    return ServerParams(read_ahead=read_ahead,
                        dispatch_width=num_streams,
                        requests_per_residency=1,
                        memory_budget=num_streams * read_ahead)


def series_label(read_ahead: int) -> str:
    """The figure's curve label for a given R (shared with Figure 14)."""
    if not read_ahead:
        return "No read-ahead"
    return (f"R = {format_size(read_ahead)} "
            f"(M = S x {format_size(read_ahead)})")


def _point(scale: ExperimentScale, params: dict) -> float:
    """Measure one (read-ahead, streams) cell of Figure 10."""
    num_streams = params["streams"]
    topology = base_topology(disk_spec=WD800JD, seed=num_streams)
    report = measure(
        topology, scale,
        specs_for=lambda node: uniform_streams(
            num_streams, node.disk_ids, node.capacity_bytes,
            request_size=REQUEST_SIZE),
        wrap_device=server_wrapper(_params(params["read_ahead"],
                                           num_streams)))
    return report.throughput_mb


def sweep() -> SweepSpec:
    """Figure 10 as a declarative sweep (six curves x four counts)."""
    points = tuple(
        Point(series=series_label(read_ahead), x=streams,
              params={"read_ahead": read_ahead, "streams": streams})
        for read_ahead in READ_AHEADS
        for streams in STREAM_COUNTS)
    return SweepSpec(
        experiment_id="fig10",
        title="Effect of read-ahead (M = D*R*N, D = #S, N = 1)",
        x_label="streams per disk",
        y_label="MBytes/s",
        notes="stream server over a single WD800JD",
        point_fn=_point,
        points=points)


def run(scale: ExperimentScale = QUICK, jobs: int | None = None,
        cache: bool = True) -> ExperimentResult:
    """Reproduce Figure 10's six read-ahead curves."""
    return run_sweep(sweep(), scale, jobs=jobs, cache=cache)
