"""Record the perf trajectory: kernel events/sec + per-figure wall time.

Usage::

    python -m repro.experiments.bench                    # kernel only
    python -m repro.experiments.bench --figures fig06    # + one figure
    python -m repro.experiments.bench --all-figures --scale smoke
    python -m repro.experiments.bench --output BENCH_engine.json

Writes ``BENCH_engine.json`` (next to the repo root by default): the
kernel micro-workloads' events/sec plus — when figures are requested —
each figure's wall time and series at the chosen scale. Commit the file
(or diff it against the previous PR's copy) to track how kernel and
sweep performance move over time.

Figure timings honour the sweep executor's ``--jobs`` and cache
controls; pass ``--no-cache`` for honest cold-run wall times.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import List, Optional

from repro.experiments import EXPERIMENTS, EXTENSIONS, FULL, QUICK, SMOKE
from repro.experiments.executor import resolve_jobs
from repro.sim.microbench import WORKLOADS, events_per_second

_SCALES = {"smoke": SMOKE, "quick": QUICK, "full": FULL}

DEFAULT_OUTPUT = "BENCH_engine.json"


def measure_kernel(repeats: int = 3) -> dict:
    """events/sec for every kernel micro-workload (best of ``repeats``)."""
    kernel = {}
    for name, workload in WORKLOADS.items():
        rate, events = events_per_second(workload, repeats=repeats)
        kernel[name] = {"events_per_sec": round(rate, 1),
                        "events_per_run": events}
    return kernel


def measure_figures(figure_ids: List[str], scale, jobs: int,
                    cache: bool) -> dict:
    """Wall time + series per figure via the sweep executor."""
    catalogue = {**EXPERIMENTS, **EXTENSIONS}
    figures = {}
    for figure_id in figure_ids:
        started = time.time()
        result = catalogue[figure_id](scale, jobs=jobs, cache=cache)
        figures[figure_id] = {
            "wall_s": round(time.time() - started, 3),
            "series": {label: dict(zip(series.xs, series.ys))
                       for label, series in
                       zip(result.labels, result.series)},
        }
    return figures


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    catalogue = {**EXPERIMENTS, **EXTENSIONS}
    parser = argparse.ArgumentParser(
        description="Emit BENCH_engine.json: kernel events/sec and "
                    "per-figure wall times.")
    parser.add_argument("--figures", nargs="*", default=[],
                        metavar="FIG",
                        help=f"figure ids to time "
                             f"(from {sorted(catalogue)})")
    parser.add_argument("--all-figures", action="store_true",
                        help="time every paper figure")
    parser.add_argument("--scale", choices=sorted(_SCALES),
                        default="smoke",
                        help="scale for figure timings (default smoke)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: REPRO_JOBS or "
                             "all cores)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the sweep cache for honest cold "
                             "wall times")
    parser.add_argument("--repeats", type=int, default=3,
                        help="kernel workload repeats (best-of)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        metavar="PATH",
                        help=f"output path (default {DEFAULT_OUTPUT}; "
                             f"'-' for stdout)")
    arguments = parser.parse_args(argv)

    figure_ids = list(arguments.figures)
    if arguments.all_figures:
        figure_ids = sorted(EXPERIMENTS)
    unknown = [f for f in figure_ids if f not in catalogue]
    if unknown:
        parser.error(f"unknown figure ids: {unknown}")

    jobs = resolve_jobs(arguments.jobs)
    scale = _SCALES[arguments.scale]
    report = {
        "schema": "repro-bench-engine/1",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "kernel": measure_kernel(repeats=arguments.repeats),
    }
    if figure_ids:
        report["figure_scale"] = scale.name
        report["jobs"] = jobs
        report["cache"] = not arguments.no_cache
        report["figures"] = measure_figures(
            figure_ids, scale, jobs, cache=not arguments.no_cache)

    payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if arguments.output == "-":
        sys.stdout.write(payload)
    else:
        with open(arguments.output, "w", encoding="utf-8") as out:
            out.write(payload)
        summary = ", ".join(
            f"{name}={entry['events_per_sec']:,.0f} ev/s"
            for name, entry in report["kernel"].items())
        print(f"wrote {arguments.output}: {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
