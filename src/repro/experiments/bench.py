"""Record the perf trajectory: kernel + domain rates, per-figure wall time.

Usage::

    python -m repro.experiments.bench                    # kernel + domain
    python -m repro.experiments.bench --figures fig06    # + one figure
    python -m repro.experiments.bench --all-figures --scale smoke
    python -m repro.experiments.bench --baseline BENCH_engine.json
    python -m repro.experiments.bench --check             # CI regression gate

Writes ``BENCH_engine.json`` (next to the repo root by default) with two
benchmark tiers:

* **kernel** — the simulator's events/sec micro-workloads
  (:mod:`repro.sim.microbench`), measured on the active event-core
  backend (recorded in the report's ``eventcore`` field); a
  ``kernel_backends`` section adds paired same-machine A/B rates for
  every available backend (heapq / calendar / compiled), interleaved
  round-robin so machine drift taxes each backend equally.
* **domain** — the per-request storage path's ops/sec
  (:mod:`repro.experiments.domainbench`): geometry mapping, segmented
  cache churn, the drive service loop, and an end-to-end StreamServer
  smoke run.
* **sweep** — the distributed sweep fabric's dispatch rate
  (:mod:`repro.experiments.fabricbench`): points/s through
  ``Fabric.run_tasks`` on a cache-cold, wait-dominated sweep at 1, 4
  and 8 local workers, gated per worker count (``sweep/<name>@wN``).

``--baseline PATH`` copies the kernel/domain rates recorded in an
existing trajectory file into the new report's ``baseline`` section, so
a PR's before/after is readable from one file. ``--check [PATH]``
re-measures both tiers and exits non-zero if any workload's rate fell
more than its tolerance below the recorded value — the CI regression
gate. The gate is noise-hardened: a workload that looks regressed on
the first measurement is re-measured up to ``--remeasure`` times
(default 3) and judged on the **median** of all its samples, so a
one-off scheduler hiccup on a busy CI box doesn't fail the build while
a genuine persistent slowdown still does. Tolerance is ``--tolerance``
(default 20%) globally, overridable per workload by a ``"tolerance"``
field on the baseline entry (e.g. a noisy allocation-heavy workload can
carry ``"tolerance": 0.35`` without loosening the gate for the rest).
``--check`` also enforces :data:`FLATNESS_GATES` — machine-independent
relative-rate invariants between two workloads of the *same*
measurement pass, e.g. the server data plane at 10k resident streams
staying within 2x of its 100-stream per-request cost.

Figure timings honour the sweep executor's ``--jobs`` and cache
controls; pass ``--no-cache`` for honest cold-run wall times.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from typing import List, Optional

from repro.experiments import EXPERIMENTS, EXTENSIONS, FULL, QUICK, SMOKE
from repro.experiments.domainbench import (DOMAIN_TOLERANCES,
                                           DOMAIN_WORKLOADS,
                                           DRIVE_TOLERANCES,
                                           DRIVE_WORKLOADS, ops_per_second)
from repro.experiments.executor import resolve_jobs
from repro.experiments.fabricbench import measure_sweep
from repro.sim.eventcore import (ENV_VAR as _EVENTCORE_ENV,
                                 available_backends, backend_token,
                                 resolve_backend)
from repro.sim.microbench import WORKLOADS, events_per_second

_SCALES = {"smoke": SMOKE, "quick": QUICK, "full": FULL}

DEFAULT_OUTPUT = "BENCH_engine.json"

#: Allowed fractional slowdown before ``--check`` fails (20%).
DEFAULT_TOLERANCE = 0.20

#: Total measurements (median-of-N) for workloads that look regressed
#: on the first pass of ``--check``.
DEFAULT_REMEASURE = 3


#: Kernel micro-workloads swing far more than the domain tier on busy
#: machines (CPU-frequency drift alone is worth ~30%), so the per-backend
#: A/B entries carry their own looser --check tolerance.
KERNEL_AB_TOLERANCE = 0.35

#: Relative-rate invariants ``--check`` enforces between two *measured*
#: workloads of the same run: ``(slow, fast, max_ratio)`` fails when
#: rate(fast) / rate(slow) exceeds ``max_ratio``. Unlike the per-workload
#: regression gate (measured vs recorded, machine-speed sensitive) these
#: compare two same-machine measurements, so the bound is absolute: the
#: server data plane at 10k resident streams must stay within 2x of the
#: per-request cost at 100 streams — the O(1)/O(log n) hot-path
#: guarantee of DESIGN.md "data-plane indexes". Gates whose workloads
#: are absent from the measurement (older baselines) are skipped.
FLATNESS_GATES = [
    ("domain/streams_scale_10k", "domain/streams_scale_100", 2.0),
    # Slow tier (bench --slow): the same flatness relation over real
    # DiskDrive mechanics instead of the zero-cost stub.
    ("drive/streams_scale_drive_10k", "drive/streams_scale_drive_100",
     2.0),
]


def active_eventcore() -> str:
    """The event-core backend token the current environment selects."""
    return backend_token(resolve_backend(None))


def measure_kernel(repeats: int = 3) -> dict:
    """events/sec for every kernel micro-workload (best of ``repeats``)."""
    kernel = {}
    for name, workload in WORKLOADS.items():
        rate, events = events_per_second(workload, repeats=repeats)
        kernel[name] = {"events_per_sec": round(rate, 1),
                        "events_per_run": events}
    return kernel


def measure_kernel_backends(repeats: int = 2, rounds: int = 3) -> dict:
    """Paired same-machine A/B: events/sec per event-core backend.

    Backends are interleaved round-robin (heapq, calendar, compiled,
    heapq, ...) so CPU-frequency drift during the run taxes every
    backend equally; each entry keeps the best rate seen across all
    ``rounds`` (with ``repeats`` best-of inside each round). The
    backend is forced through the same ``REPRO_EVENTCORE`` environment
    override users have, restoring the caller's value afterwards.
    """
    saved = os.environ.get(_EVENTCORE_ENV)
    results: dict = {backend: {} for backend in available_backends()}
    try:
        for _ in range(rounds):
            for backend, rates in results.items():
                os.environ[_EVENTCORE_ENV] = backend
                for name, workload in WORKLOADS.items():
                    rate, events = events_per_second(workload,
                                                     repeats=repeats)
                    entry = rates.get(name)
                    if entry is None or rate > entry["events_per_sec"]:
                        rates[name] = {
                            "events_per_sec": round(rate, 1),
                            "events_per_run": events,
                            "tolerance": KERNEL_AB_TOLERANCE,
                        }
    finally:
        if saved is None:
            os.environ.pop(_EVENTCORE_ENV, None)
        else:
            os.environ[_EVENTCORE_ENV] = saved
    return results


def measure_domain(repeats: int = 3) -> dict:
    """ops/sec for every domain micro-workload (best of ``repeats``).

    Workloads with an entry in
    :data:`~repro.experiments.domainbench.DOMAIN_TOLERANCES` carry it
    into the recorded baseline, so re-recording ``BENCH_engine.json``
    never silently drops a per-workload ``--check`` tolerance.
    """
    domain = {}
    for name, workload in DOMAIN_WORKLOADS.items():
        rate, ops = ops_per_second(workload, repeats=repeats)
        domain[name] = {"ops_per_sec": round(rate, 1),
                        "ops_per_run": ops}
        if name in DOMAIN_TOLERANCES:
            domain[name]["tolerance"] = DOMAIN_TOLERANCES[name]
    return domain


def measure_drive(repeats: int = 3) -> dict:
    """ops/sec for the slow real-drive tier (``bench --slow`` only)."""
    drive = {}
    for name, workload in DRIVE_WORKLOADS.items():
        rate, ops = ops_per_second(workload, repeats=repeats)
        drive[name] = {"ops_per_sec": round(rate, 1),
                       "ops_per_run": ops}
        if name in DRIVE_TOLERANCES:
            drive[name]["tolerance"] = DRIVE_TOLERANCES[name]
    return drive


def measure_figures(figure_ids: List[str], scale, jobs: int,
                    cache: bool) -> dict:
    """Wall time + series per figure via the sweep executor."""
    catalogue = {**EXPERIMENTS, **EXTENSIONS}
    figures = {}
    for figure_id in figure_ids:
        started = time.time()
        result = catalogue[figure_id](scale, jobs=jobs, cache=cache)
        figures[figure_id] = {
            "wall_s": round(time.time() - started, 3),
            "series": {label: dict(zip(series.xs, series.ys))
                       for label, series in
                       zip(result.labels, result.series)},
        }
    return figures


def _backend_mismatch(report: dict) -> bool:
    """True when the active event core differs from the recording one.

    Only meaningful when the file carries the per-backend A/B section
    for the active backend — otherwise there is nothing better to gate
    against and the top-level numbers are used as-is.
    """
    backend = resolve_backend(None)
    token = backend_token(backend)
    return (report.get("eventcore", token) != token
            and backend in report.get("kernel_backends", {}))


def _recorded_kernel(report: dict) -> dict:
    """The kernel-tier baseline entries that match the *active* backend.

    The top-level ``kernel`` section reflects whatever backend was
    active when the file was written (normally the compiled core). When
    the file also carries the per-backend A/B section and the current
    environment selects a different backend — a forced
    ``REPRO_EVENTCORE`` CI leg, or a no-compiler install running on the
    calendar fallback — comparing against the recording backend's rates
    would be meaningless, so ``--check`` gates against the matching
    ``kernel_backends`` entries instead.
    """
    if _backend_mismatch(report):
        return report["kernel_backends"][resolve_backend(None)]
    return report.get("kernel", {})


def _recorded_rates(report: dict, slow: bool = False) -> dict:
    """Flatten a trajectory file into {tier/workload: rate}.

    On a backend mismatch the domain tier is omitted: its
    simulator-driven workloads (drive service, server smoke, tracing
    overhead) were recorded on the recording backend, and there is no
    per-backend domain baseline to gate against. The forced-backend CI
    legs gate the kernel tier; the default leg gates everything.

    The slow real-drive tier is included only with ``slow`` — fast
    ``--check`` runs must filter it from *both* sides of the
    comparison, or a nightly-recorded baseline would fail every fast
    check with MISSING entries.
    """
    rates = {}
    for name, entry in _recorded_kernel(report).items():
        rates[f"kernel/{name}"] = entry["events_per_sec"]
    if not _backend_mismatch(report):
        for name, entry in report.get("domain", {}).items():
            rates[f"domain/{name}"] = entry["ops_per_sec"]
        if slow:
            for name, entry in report.get("drive", {}).items():
                rates[f"drive/{name}"] = entry["ops_per_sec"]
        for name, entry in report.get("sweep", {}).items():
            for workers, rate in entry.get("points_per_sec", {}).items():
                rates[f"sweep/{name}@w{workers}"] = rate
    return rates


def _recorded_tolerances(report: dict, default: float,
                         slow: bool = False) -> dict:
    """Per-workload tolerance overrides from the baseline file.

    A baseline entry may carry a ``"tolerance"`` field (fractional
    slowdown) that overrides the global ``--tolerance`` for that one
    workload — the escape hatch for intrinsically noisy workloads.
    """
    tolerances = {}
    for name, entry in _recorded_kernel(report).items():
        tolerances[f"kernel/{name}"] = float(
            entry.get("tolerance", default))
    if not _backend_mismatch(report):
        for name, entry in report.get("domain", {}).items():
            tolerances[f"domain/{name}"] = float(
                entry.get("tolerance", default))
        if slow:
            for name, entry in report.get("drive", {}).items():
                tolerances[f"drive/{name}"] = float(
                    entry.get("tolerance", default))
        for name, entry in report.get("sweep", {}).items():
            allowed = float(entry.get("tolerance", default))
            for workers in entry.get("points_per_sec", {}):
                tolerances[f"sweep/{name}@w{workers}"] = allowed
    return tolerances


def _measure_all(repeats: int, sweep: bool = True,
                 slow: bool = False) -> dict:
    """One full measurement pass over all tiers.

    ``sweep=False`` skips the fabric fan-out measurement (it spawns 13
    worker processes) when the baseline has no sweep entries to gate;
    ``slow`` adds the real-drive tier (nightly lane only).
    """
    report = {"kernel": measure_kernel(repeats=repeats),
              "domain": measure_domain(repeats=repeats)}
    if slow:
        report["drive"] = measure_drive(repeats=repeats)
    if sweep:
        report["sweep"] = measure_sweep()
    return _recorded_rates(report, slow=slow)


def _evaluate(baseline: dict, current: dict, tolerances: dict) -> tuple:
    """(rows, regressed names, missing count) for one measurement set."""
    rows = []
    regressed = []
    missing = 0
    for name, recorded_rate in sorted(baseline.items()):
        measured = current.get(name)
        if measured is None:
            # Workload renamed/removed: surface loudly rather than skip.
            rows.append(f"{name:28s} recorded={recorded_rate:12,.0f} "
                        f"measured=         n/a (   n/a) MISSING")
            missing += 1
            continue
        allowed = tolerances[name]
        ratio = measured / recorded_rate if recorded_rate else float("inf")
        status = "ok" if ratio >= 1.0 - allowed else "REGRESSED"
        rows.append(f"{name:28s} recorded={recorded_rate:12,.0f} "
                    f"measured={measured:12,.0f} ({ratio:6.2%}) {status}")
        if status != "ok":
            regressed.append(name)
    return rows, regressed, missing


def _evaluate_flatness(current: dict) -> tuple:
    """(rows, failed gate names) for the relative-rate invariants."""
    rows = []
    failed = []
    for slow, fast, max_ratio in FLATNESS_GATES:
        slow_rate = current.get(slow)
        fast_rate = current.get(fast)
        if slow_rate is None or fast_rate is None:
            continue  # older baseline without the paired workloads
        ratio = fast_rate / slow_rate if slow_rate else float("inf")
        status = "ok" if ratio <= max_ratio else "NOT FLAT"
        name = f"flat {slow} vs {fast}"
        rows.append(f"{name:58s} ratio={ratio:5.2f}x "
                    f"(max {max_ratio:.1f}x) {status}")
        if status != "ok":
            failed.append(name)
    return rows, failed


def run_check(path: str, tolerance: float, repeats: int,
              remeasure: int = DEFAULT_REMEASURE,
              slow: bool = False) -> int:
    """Re-measure both tiers against ``path``; 0 = no regression.

    Noise hardening: workloads that look regressed on the first
    measurement are re-measured until each has ``remeasure`` samples
    and judged on the **median**, so transient machine noise passes
    while persistent slowdowns still fail.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            recorded = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"bench --check: cannot read {path}: {exc}",
              file=sys.stderr)
        return 2
    baseline = _recorded_rates(recorded, slow=slow)
    if not baseline:
        print(f"bench --check: no recorded workloads in {path}",
              file=sys.stderr)
        return 2
    active = active_eventcore()
    recorded_core = recorded.get("eventcore", "unrecorded")
    print(f"bench --check: event core backend = {active} "
          f"(recorded with {recorded_core})")
    if _backend_mismatch(recorded):
        print("bench --check: gating kernel tier against the matching "
              "kernel_backends baseline; domain tier skipped (recorded "
              f"with {recorded_core})")
    tolerances = _recorded_tolerances(recorded, tolerance, slow=slow)
    need_sweep = any(name.startswith("sweep/") for name in baseline)
    samples = {name: [rate] for name, rate in
               _measure_all(repeats, sweep=need_sweep,
                            slow=slow).items()}
    current = {name: rates[0] for name, rates in samples.items()}
    rows, regressed_names, missing = _evaluate(baseline, current,
                                               tolerances)
    flat_rows, flat_failed = _evaluate_flatness(current)
    if (regressed_names or flat_failed) and remeasure > 1:
        print(f"bench --check: {len(regressed_names) + len(flat_failed)} "
              f"workload(s)/gate(s) look regressed; re-measuring "
              f"(median of {remeasure})")
        for _ in range(remeasure - 1):
            for name, rate in _measure_all(repeats, sweep=need_sweep,
                                           slow=slow).items():
                samples.setdefault(name, []).append(rate)
        current = {name: statistics.median(rates)
                   for name, rates in samples.items()}
        rows, regressed_names, missing = _evaluate(baseline, current,
                                                   tolerances)
        flat_rows, flat_failed = _evaluate_flatness(current)
    rows += flat_rows
    failures = len(regressed_names) + missing + len(flat_failed)
    for row in rows:
        print(row)
    if failures:
        # Replay the complete ratio table on stderr: CI log scrapers
        # that only keep the failing stream still get the full
        # per-bench picture, not just the verdict.
        print(f"bench --check: {failures} workload(s) regressed beyond "
              f"tolerance (default {tolerance:.0%}) vs {path}:",
              file=sys.stderr)
        for row in rows:
            print(f"  {row}", file=sys.stderr)
        return 1
    print(f"bench --check: all {len(baseline)} workloads within "
          f"tolerance (default {tolerance:.0%}) of {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    catalogue = {**EXPERIMENTS, **EXTENSIONS}
    parser = argparse.ArgumentParser(
        description="Emit BENCH_engine.json: kernel events/sec, domain "
                    "ops/sec and per-figure wall times.")
    parser.add_argument("--figures", nargs="*", default=[],
                        metavar="FIG",
                        help=f"figure ids to time "
                             f"(from {sorted(catalogue)})")
    parser.add_argument("--all-figures", action="store_true",
                        help="time every paper figure")
    parser.add_argument("--scale", choices=sorted(_SCALES),
                        default="smoke",
                        help="scale for figure timings (default smoke)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: REPRO_JOBS or "
                             "all cores)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the sweep cache for honest cold "
                             "wall times")
    parser.add_argument("--repeats", type=int, default=3,
                        help="micro-workload repeats (best-of)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="existing trajectory file whose kernel/"
                             "domain rates are copied into the new "
                             "report's 'baseline' section")
    parser.add_argument("--check", nargs="?", const=DEFAULT_OUTPUT,
                        default=None, metavar="PATH",
                        help=f"re-measure and fail if any workload "
                             f"regressed more than --tolerance vs PATH "
                             f"(default {DEFAULT_OUTPUT}); writes "
                             f"nothing")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE, metavar="FRAC",
                        help="allowed fractional slowdown for --check "
                             f"(default {DEFAULT_TOLERANCE}; a "
                             f"baseline entry's 'tolerance' field "
                             f"overrides per workload)")
    parser.add_argument("--remeasure", type=int,
                        default=DEFAULT_REMEASURE, metavar="N",
                        help="median-of-N re-measure for workloads that "
                             "look regressed on the first --check pass "
                             f"(default {DEFAULT_REMEASURE}; 1 disables)")
    parser.add_argument("--slow", action="store_true",
                        help="include the real-drive scale tier "
                             "(nightly lane): measured and recorded "
                             "under 'drive', and gated by --check only "
                             "when this flag is present")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        metavar="PATH",
                        help=f"output path (default {DEFAULT_OUTPUT}; "
                             f"'-' for stdout)")
    arguments = parser.parse_args(argv)

    if arguments.check is not None:
        if arguments.remeasure < 1:
            parser.error("--remeasure must be >= 1")
        return run_check(arguments.check, arguments.tolerance,
                         arguments.repeats,
                         remeasure=arguments.remeasure,
                         slow=arguments.slow)

    figure_ids = list(arguments.figures)
    if arguments.all_figures:
        figure_ids = sorted(EXPERIMENTS)
    unknown = [f for f in figure_ids if f not in catalogue]
    if unknown:
        parser.error(f"unknown figure ids: {unknown}")

    jobs = resolve_jobs(arguments.jobs)
    scale = _SCALES[arguments.scale]
    report = {
        "schema": "repro-bench-engine/4",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "eventcore": active_eventcore(),
        "kernel": measure_kernel(repeats=arguments.repeats),
        "kernel_backends": measure_kernel_backends(),
        "domain": measure_domain(repeats=arguments.repeats),
        "sweep": measure_sweep(),
    }
    if arguments.slow:
        report["drive"] = measure_drive(repeats=arguments.repeats)
    if arguments.baseline:
        with open(arguments.baseline, "r", encoding="utf-8") as handle:
            previous = json.load(handle)
        report["baseline"] = {
            "recorded_at": previous.get("recorded_at"),
            "kernel": previous.get("kernel", {}),
            "domain": previous.get("domain", {}),
        }
    if figure_ids:
        report["figure_scale"] = scale.name
        report["jobs"] = jobs
        report["cache"] = not arguments.no_cache
        report["figures"] = measure_figures(
            figure_ids, scale, jobs, cache=not arguments.no_cache)

    payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if arguments.output == "-":
        sys.stdout.write(payload)
    else:
        with open(arguments.output, "w", encoding="utf-8") as out:
            out.write(payload)
        summary = ", ".join(
            f"{name}={entry['events_per_sec']:,.0f} ev/s"
            for name, entry in report["kernel"].items())
        domain_summary = ", ".join(
            f"{name}={entry['ops_per_sec']:,.0f} op/s"
            for name, entry in report["domain"].items())
        sweep_summary = ", ".join(
            f"{name}: " + " ".join(
                f"w{workers}={rate:,.1f} pt/s" for workers, rate in
                sorted(entry["points_per_sec"].items(),
                       key=lambda item: int(item[0])))
            for name, entry in report["sweep"].items())
        print(f"wrote {arguments.output} (event core "
              f"{report['eventcore']}): {summary}; {domain_summary}; "
              f"{sweep_summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
