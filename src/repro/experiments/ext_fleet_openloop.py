"""Extension experiment — open-loop overload with hedged mirror reads.

``ext-fleet``'s closed-loop populations cycle-limit at saturation (a
slow server simply slows its clients), so queueing delay and capacity
blur together. This experiment drives the same server shape with
*open-loop* Poisson arrivals swept through saturation, under a
deliberate straggler adversary: one member disk of the first mirror
group is slowed 4× for the whole run (PR 4's
:class:`~repro.faults.StragglerDevice`).

Two placement policies run at every arrival rate on identical
topologies and identical arrival sequences (same seeds — the arrivals
are completion-independent, so the comparison is paired):

* **round-robin** — reads rotate over mirror members blind to service
  time, the paper's dispatch assumption; half of the straggler group's
  fetches eat the 4× penalty.
* **hedged** — :class:`~repro.node.HedgedVolume` EWMA routing plus
  duplicate reads for aged requests; the slow member is organically
  avoided and stragglers are cut off by the hedge.

The server's bounded admission queue is on (DESIGN.md §9): past
saturation the shed rate reports the overload honestly while admitted
requests keep a bounded tail. Each point reports client p50/p99/p999
(from ``repro.obs`` client root spans, errored roots excluded, via a
:class:`repro.obs.sketch.QuantileSketch` with a guaranteed
``PERCENTILE_ACCURACY`` relative-error bound) and the shed percentage.
``SLO_SMOKE`` publishes the figure's overload-honesty claims as a
machine-checkable spec for ``python -m repro.obs.report slo``.
"""

from __future__ import annotations

from repro import obs
from repro.analysis import ExperimentResult
from repro.core import ServerParams, StreamServer
from repro.disk.specs import WD800JD
from repro.experiments.base import QUICK, ExperimentScale
from repro.experiments.executor import Point, SweepSpec, run_sweep
from repro.faults import StragglerDevice
from repro.node import HedgePolicy, HedgedVolume, build_node, large_topology
from repro.obs.sketch import QuantileSketch
from repro.sim import Simulator
from repro.units import KiB, MiB
from repro.workload import OpenLoopFleet, StreamSpec

__all__ = ["run", "sweep", "ARRIVAL_RATES", "MIRROR_WIDTH", "NUM_DISKS",
           "SLO_SMOKE"]

#: Eight spindles paired into four mirror groups.
NUM_DISKS = 8
MIRROR_WIDTH = 2
NUM_GROUPS = NUM_DISKS // MIRROR_WIDTH
#: Aggregate arrival rates (requests/s) swept through saturation.
ARRIVAL_RATES = [500, 1500, 4500]
NUM_STREAMS = 24
REQUEST_SIZE = 64 * KiB
READ_AHEAD = 1 * MiB
REQUESTS_PER_RESIDENCY = 4
#: One member of group 0 runs this much slower, for the whole run.
STRAGGLER_SLOWDOWN = 8.0
STRAGGLER_DISK = 0
#: Admission edge: in-service cap + bounded FIFO waiting room.
ADMISSION_LIMIT = 200
ADMISSION_QUEUE_DEPTH = 50

POLICIES = ("hedged", "round-robin")
WARMUP_FLOOR_S = 0.5
SPAN_CAPACITY = 400_000
CLIENT_SPAN_RESERVE = 250_000
#: Guaranteed relative error of the reported percentiles (sketch alpha).
PERCENTILE_ACCURACY = 0.01

#: Machine-checkable gate for a SMOKE-scale run of this figure
#: (``python -m repro.obs.report slo --spec
#: repro.experiments.ext_fleet_openloop:SLO_SMOKE --runner-json ...
#: --figure ext-fleet-openloop``). The claims: pre-saturation nothing
#: is shed and the hedged tail stays bounded despite the straggler;
#: past saturation the admission edge keeps the admitted hedged tail
#: from running away.
SLO_SMOKE = {
    "name": "ext-fleet-openloop-smoke",
    "objectives": [
        {"name": "no shedding pre-saturation", "kind": "series_max",
         "series": "hedged shed (%)", "max": 1.0, "x": "500"},
        {"name": "hedged p99 pre-saturation", "kind": "series_max",
         "series": "hedged p99 (ms)", "max": 2000.0, "x": "500"},
        {"name": "hedged p999 bounded under overload", "kind": "series_max",
         "series": "hedged p999 (ms)", "max": 5000.0},
    ],
}


def _hedge_policy(policy: str) -> HedgePolicy:
    if policy == "hedged":
        return HedgePolicy(select="ewma", hedge=True,
                           hedge_k=2.0, hedge_min_s=2e-2)
    return HedgePolicy(select="roundrobin", hedge=False)


class _GroupedVolumes:
    """Route ``request.disk_id`` (a mirror-group index) to its volume.

    Presents the mirror groups to the stream server as one device with
    ``NUM_GROUPS`` virtual disks, each the size of a single member (a
    mirror stores copies, not capacity).
    """

    def __init__(self, sim: Simulator, node, groups):
        self.sim = sim
        self.node = node
        self.groups = list(groups)
        self.disk_ids = list(range(len(self.groups)))
        self.capacity_bytes = node.capacity_bytes

    def submit(self, request):
        return self.groups[request.disk_id].submit(request)

    def register_buffers(self, count: int) -> None:
        self.node.register_buffers(count)


def _point(scale: ExperimentScale, params: dict) -> dict:
    """One (arrival rate, policy) cell → tail latency + shed series."""
    rate = params["rate"]
    policy = params["policy"]
    with obs.activated(obs.ObsContext(
            span_capacity=SPAN_CAPACITY,
            span_reserved={"client": CLIENT_SPAN_RESERVE})) as context:
        sim = Simulator()
        node = build_node(sim, large_topology(NUM_DISKS,
                                              disk_spec=WD800JD,
                                              seed=1))
        adversary = StragglerDevice(sim, node,
                                    slowdown=STRAGGLER_SLOWDOWN,
                                    disk_id=STRAGGLER_DISK)
        hedge = _hedge_policy(policy)
        groups = [
            HedgedVolume(sim, adversary,
                         list(range(g * MIRROR_WIDTH,
                                    (g + 1) * MIRROR_WIDTH)),
                         policy=hedge)
            for g in range(NUM_GROUPS)
        ]
        volume = _GroupedVolumes(sim, node, groups)
        server_params = ServerParams(
            read_ahead=READ_AHEAD,
            dispatch_width=NUM_DISKS,
            requests_per_residency=REQUESTS_PER_RESIDENCY,
            memory_budget=2 * NUM_DISKS * READ_AHEAD
            * REQUESTS_PER_RESIDENCY,
            admission_limit=ADMISSION_LIMIT,
            admission_queue_depth=ADMISSION_QUEUE_DEPTH)
        server = StreamServer(sim, volume, server_params)
        per_group = NUM_STREAMS // NUM_GROUPS
        stride = (volume.capacity_bytes // per_group
                  // REQUEST_SIZE * REQUEST_SIZE)
        specs = [
            StreamSpec(stream_id=index, disk_id=index % NUM_GROUPS,
                       start_offset=(index // NUM_GROUPS) * stride,
                       request_size=REQUEST_SIZE)
            for index in range(NUM_STREAMS)
        ]
        # Same arrival seed for every policy: arrivals are open-loop
        # (completion-independent), so both policies face the identical
        # request sequence and the comparison is paired.
        fleet = OpenLoopFleet(sim, server, specs, rate=float(rate),
                              seed=int(rate))
        # Stream detection needs ~3 requests per stream before the
        # coalescing path exists at all; floor the warm-up so the
        # measured window starts past the cold-start herd even at SMOKE.
        warmup = max(scale.warmup, WARMUP_FLOOR_S)
        report = fleet.run(duration=scale.duration, warmup=warmup)
    boundary = sim.now - scale.duration
    sketch = QuantileSketch(relative_accuracy=PERCENTILE_ACCURACY)
    sketch.extend(
        root.duration for root in context.spans.roots("client")
        if root.end is not None and root.end >= boundary
        and not (root.args and "error" in root.args))
    p50, p99, p999 = sketch.quantiles((0.50, 0.99, 0.999))
    return {
        f"{policy} p50 (ms)": p50 * 1e3,
        f"{policy} p99 (ms)": p99 * 1e3,
        f"{policy} p999 (ms)": p999 * 1e3,
        f"{policy} shed (%)": report.shed_rate * 100.0,
    }


def sweep() -> SweepSpec:
    """One point per (rate, policy); each fans into its metric series."""
    points = tuple(
        Point(series=f"{policy} p99 (ms)", x=rate,
              params={"rate": rate, "policy": policy})
        for rate in ARRIVAL_RATES
        for policy in POLICIES)
    series_order = tuple(
        f"{policy} {metric}"
        for policy in POLICIES
        for metric in ("p50 (ms)", "p99 (ms)", "p999 (ms)", "shed (%)"))
    return SweepSpec(
        experiment_id="ext-fleet-openloop",
        title=f"Open-loop overload: hedged vs round-robin mirrors "
              f"({NUM_GROUPS}x{MIRROR_WIDTH} disks, "
              f"{STRAGGLER_SLOWDOWN:g}x straggler)",
        x_label="arrival rate (req/s)",
        y_label="see series (msec or % shed)",
        notes="extension: Poisson open-loop arrivals through saturation "
              "under a straggler adversary; bounded admission with FIFO "
              "shedding; percentiles from repro.obs client root spans",
        point_fn=_point,
        points=points,
        series_order=series_order)


def run(scale: ExperimentScale = QUICK, jobs: int | None = None,
        cache: bool = True) -> ExperimentResult:
    """Tail latency + shed rate vs arrival rate, hedged vs round-robin."""
    return run_sweep(sweep(), scale, jobs=jobs, cache=cache)
