"""Figure 8 — prefetching at the controller level (128 MB cache).

A single disk behind a controller with a 128 MB prefetching cache;
prefetch (extent) size sweeps 64 KB – 4 MB. Moderate prefetch rescues
multi-stream throughput; at 4 MB with 60–100 streams the cache holds only
32 extents, thrashes, and throughput collapses towards zero.
"""

from __future__ import annotations

from repro.analysis import ExperimentResult
from repro.controller import ControllerSpec
from repro.disk.specs import DISKSIM_GENERIC
from repro.experiments.base import QUICK, ExperimentScale, measure
from repro.experiments.executor import Point, SweepSpec, run_sweep
from repro.node import NodeTopology
from repro.units import KiB, MiB, format_size
from repro.workload import uniform_streams

__all__ = ["run", "sweep"]

PREFETCH_SIZES = [64 * KiB, 256 * KiB, 512 * KiB, 2 * MiB, 4 * MiB]
STREAM_COUNTS = [1, 10, 30, 60, 100]
CONTROLLER_CACHE = 128 * MiB
REQUEST_SIZE = 64 * KiB


def _point(scale: ExperimentScale, params: dict) -> float:
    """Measure one (streams, prefetch size) cell of Figure 8."""
    num_streams = params["streams"]
    # Disable the drive's own read-ahead so the controller knob is the
    # only prefetcher, as in the paper's controller study.
    disk_spec = DISKSIM_GENERIC.with_cache(read_ahead_bytes=0)
    controller_spec = ControllerSpec().with_prefetch(
        cache_bytes=CONTROLLER_CACHE, prefetch_bytes=params["prefetch"])
    topology = NodeTopology(disk_spec=disk_spec,
                            controller_spec=controller_spec,
                            disks_per_controller=[1],
                            seed=num_streams)
    report = measure(
        topology, scale,
        specs_for=lambda node: uniform_streams(
            num_streams, node.disk_ids, node.capacity_bytes,
            request_size=REQUEST_SIZE))
    return report.throughput_mb


def sweep() -> SweepSpec:
    """Figure 8 as a declarative sweep (five curves x five sizes)."""
    points = tuple(
        Point(series=f"{streams} streams", x=format_size(prefetch),
              params={"streams": streams, "prefetch": prefetch})
        for streams in STREAM_COUNTS
        for prefetch in PREFETCH_SIZES)
    return SweepSpec(
        experiment_id="fig08",
        title="Prefetching at the controller level "
              f"(controller cache = {CONTROLLER_CACHE // MiB} MB)",
        x_label="prefetch size",
        y_label="MBytes/s",
        notes="single disk; drive read-ahead disabled to isolate the "
              "controller effect",
        point_fn=_point,
        points=points)


def run(scale: ExperimentScale = QUICK, jobs: int | None = None,
        cache: bool = True) -> ExperimentResult:
    """Reproduce Figure 8's five stream-count curves."""
    return run_sweep(sweep(), scale, jobs=jobs, cache=cache)
