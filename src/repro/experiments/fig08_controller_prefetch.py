"""Figure 8 — prefetching at the controller level (128 MB cache).

A single disk behind a controller with a 128 MB prefetching cache;
prefetch (extent) size sweeps 64 KB – 4 MB. Moderate prefetch rescues
multi-stream throughput; at 4 MB with 60–100 streams the cache holds only
32 extents, thrashes, and throughput collapses towards zero.
"""

from __future__ import annotations

from repro.analysis import ExperimentResult
from repro.controller import ControllerSpec
from repro.disk.specs import DISKSIM_GENERIC
from repro.experiments.base import QUICK, ExperimentScale, measure
from repro.node import NodeTopology
from repro.units import KiB, MiB, format_size
from repro.workload import uniform_streams

__all__ = ["run"]

PREFETCH_SIZES = [64 * KiB, 256 * KiB, 512 * KiB, 2 * MiB, 4 * MiB]
STREAM_COUNTS = [1, 10, 30, 60, 100]
CONTROLLER_CACHE = 128 * MiB
REQUEST_SIZE = 64 * KiB


def run(scale: ExperimentScale = QUICK) -> ExperimentResult:
    """Reproduce Figure 8's five stream-count curves."""
    result = ExperimentResult(
        experiment_id="fig08",
        title="Prefetching at the controller level "
              f"(controller cache = {CONTROLLER_CACHE // MiB} MB)",
        x_label="prefetch size",
        y_label="MBytes/s",
        notes="single disk; drive read-ahead disabled to isolate the "
              "controller effect")

    # Disable the drive's own read-ahead so the controller knob is the
    # only prefetcher, as in the paper's controller study.
    disk_spec = DISKSIM_GENERIC.with_cache(read_ahead_bytes=0)
    for num_streams in STREAM_COUNTS:
        series = result.new_series(f"{num_streams} streams")
        for prefetch in PREFETCH_SIZES:
            controller_spec = ControllerSpec().with_prefetch(
                cache_bytes=CONTROLLER_CACHE, prefetch_bytes=prefetch)
            topology = NodeTopology(disk_spec=disk_spec,
                                    controller_spec=controller_spec,
                                    disks_per_controller=[1],
                                    seed=num_streams)
            report = measure(
                topology, scale,
                specs_for=lambda node, ns=num_streams: uniform_streams(
                    ns, node.disk_ids, node.capacity_bytes,
                    request_size=REQUEST_SIZE))
            series.add(format_size(prefetch), report.throughput_mb)
    return result
