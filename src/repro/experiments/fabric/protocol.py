"""Wire protocol of the sweep fabric: framing, messages, addresses.

The fabric speaks length-prefixed JSON over a stream socket (TCP or
``AF_UNIX``): each message is a 4-byte big-endian payload length
followed by that many bytes of UTF-8 JSON. JSON keeps the protocol
debuggable with ``socat`` and versionable without a schema compiler;
the length prefix makes framing trivial and rejects garbage (an
oversized length means a confused peer, not a 4 GiB allocation).

Message shapes (``type`` field):

=============  =========  ==============================================
type           direction  payload
=============  =========  ==============================================
``hello``      w -> c     ``pid``, ``host``, ``eventcore`` (backend
                          token; the coordinator refuses workers whose
                          kernel backend differs from its own — mixed
                          backends would mix cache fingerprints),
                          ``nonce`` (worker's challenge material),
                          ``auth`` (bool: the worker holds a secret and
                          demands mutual authentication)
``challenge``  c -> w     ``nonce`` (coordinator's challenge material),
                          ``proof`` — HMAC-SHA256 over the *worker's*
                          hello nonce keyed by the shared secret; sent
                          only by coordinators holding a secret, and
                          always before any ``task`` bytes flow
``auth``       w -> c     ``mac`` — the worker's HMAC over the
                          coordinator's challenge nonce; closes the
                          mutual handshake
``task``       c -> w     ``task`` (id), ``key`` (cache key or null),
                          ``fn`` ("module:qualname"), ``scale``
                          ({name, duration, warmup}), ``params``,
                          ``cache`` (bool), optional ``trace`` — obs
                          config ({span_capacity, span_reserved,
                          telemetry_interval, telemetry_capacity}): run
                          the point under a worker-local ObsContext and
                          ship the observations back (tracing implies
                          cache off — a hit would skip the simulation)
``cache_get``  w -> c     ``key`` — remote lookup in the coordinator's
                          store on a worker-local miss
``cache_value`` c -> w    ``hit``, ``value``
``result``     w -> c     ``task``, ``key``, ``value``, ``source``
                          ("compute" / "local-cache" / "peer-cache"),
                          ``elapsed`` (worker wall seconds), optional
                          ``obs`` (traced tasks only; DESIGN.md §10):
                          ``spans`` — packed span records
                          ([id, trace, parent, name, cat, start, end,
                          args], parents before children), ``dropped``
                          + ``dropped_by_category`` — worker-side
                          capacity shed, ``series`` — telemetry rows
                          ({name, kind, samples: [[t, v], ...]})
``error``      w -> c     ``task``, ``error`` — the point function
                          raised; the worker itself is still healthy
``shutdown``   c -> w     none; the worker exits its serve loop
=============  =========  ==============================================

The worker side is strictly alternating: after ``hello`` it receives
exactly one coordinator message at a time and answers every ``task``
with ``result``/``error`` (with at most one ``cache_get`` round-trip in
between). The coordinator never sends ``task`` to a busy worker, so
there is no interleaving to disambiguate.

Worker addresses (``parse_spec``): a bare integer ``"4"`` asks the
coordinator to spawn that many local worker processes over a private
socket; a comma list ``"hostA:7070,hostB:7070"`` (or Unix-socket paths)
dials out to workers started with ``python -m repro.experiments.fabric
worker --listen ADDR``.

Authentication (:func:`auth_proof`): when both sides export
``REPRO_FABRIC_SECRET`` the hello is followed by a
challenge/response — each side proves knowledge of the shared secret
by HMAC-ing the *other* side's fresh nonce (so a recorded handshake
replays nothing), and either side closes the connection before any
task bytes flow if the peer's proof does not verify. An empty
environment value means "no secret": the fabric stays open, matching
the trusted-transport default documented in the ROADMAP.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
import socket
import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = [
    "AUTH_ENV",
    "MAX_MESSAGE",
    "FrameError",
    "WorkerSpec",
    "auth_proof",
    "connect",
    "fabric_secret",
    "format_address",
    "parse_address",
    "parse_spec",
    "recv_msg",
    "send_msg",
]

#: Environment variable holding the fabric's shared authentication
#: secret. Unset or empty means authentication is off.
AUTH_ENV = "REPRO_FABRIC_SECRET"


def fabric_secret() -> Optional[str]:
    """The process's fabric secret, or None when auth is off."""
    secret = os.environ.get(AUTH_ENV, "")
    return secret or None


def auth_proof(secret: str, role: str, nonce: str) -> str:
    """HMAC-SHA256 proof that ``role`` knows ``secret`` for ``nonce``.

    The role tag ("coordinator" / "worker") keeps the two directions
    of the mutual handshake from being mirrors of each other: a proof
    recorded from one side can never satisfy the other side's check.
    """
    return hmac.new(secret.encode("utf-8"),
                    f"{role}:{nonce}".encode("utf-8"),
                    hashlib.sha256).hexdigest()

_HEADER = struct.Struct("!I")

#: Upper bound on one message's payload. Generous (a FULL-scale figure
#: series is a few KiB) while still catching a desynchronized peer that
#: feeds the length field random bytes.
MAX_MESSAGE = 64 * 1024 * 1024


class FrameError(ConnectionError):
    """The peer sent bytes that cannot be a protocol frame."""


def send_msg(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Write one length-prefixed JSON message (blocking)."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes, or None on a clean EOF at a frame
    boundary. EOF mid-frame raises: the peer died mid-message."""
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count and not chunks:
                return None
            raise FrameError(
                f"peer closed mid-frame ({count - remaining}/{count} "
                f"bytes received)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one message (blocking); None on clean EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE:
        raise FrameError(f"frame length {length} exceeds "
                         f"MAX_MESSAGE={MAX_MESSAGE}; desynchronized peer?")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise FrameError("peer closed between header and payload")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameError(f"undecodable frame payload: {exc}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise FrameError(f"frame is not a typed message: {message!r}")
    return message


# -- frame buffering for non-blocking sockets --------------------------------

class FrameBuffer:
    """Incremental decoder for the coordinator's non-blocking sockets.

    ``feed`` bytes as they arrive; ``messages`` yields every complete
    frame accumulated so far. Raises :class:`FrameError` on the same
    conditions as :func:`recv_msg`.
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        self._buffer.extend(data)
        messages: List[Dict[str, Any]] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return messages
            (length,) = _HEADER.unpack(bytes(self._buffer[:_HEADER.size]))
            if length > MAX_MESSAGE:
                raise FrameError(
                    f"frame length {length} exceeds MAX_MESSAGE="
                    f"{MAX_MESSAGE}; desynchronized peer?")
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return messages
            payload = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            try:
                message = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise FrameError(
                    f"undecodable frame payload: {exc}") from None
            if not isinstance(message, dict) or "type" not in message:
                raise FrameError(
                    f"frame is not a typed message: {message!r}")
            messages.append(message)


# -- addresses ---------------------------------------------------------------

#: A worker endpoint: ("tcp", (host, port)) or ("unix", path).
Address = Tuple[str, Union[Tuple[str, int], str]]


def parse_address(text: str) -> Address:
    """``host:port`` -> TCP; anything with a path separator -> Unix."""
    text = text.strip()
    if not text:
        raise ValueError("empty worker address")
    if "/" in text:
        return ("unix", text)
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"worker address {text!r} is neither host:port nor a "
            f"Unix-socket path")
    return ("tcp", (host or "127.0.0.1", int(port)))


def format_address(address: Address) -> str:
    kind, where = address
    if kind == "unix":
        return str(where)
    host, port = where  # type: ignore[misc]
    return f"{host}:{port}"


def connect(address: Address, timeout: Optional[float] = None) \
        -> socket.socket:
    """Open a blocking stream connection to ``address``."""
    kind, where = address
    if kind == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    sock.settimeout(timeout)
    try:
        sock.connect(where)
    except BaseException:
        sock.close()
        raise
    sock.settimeout(None)
    return sock


@dataclass(frozen=True)
class WorkerSpec:
    """Parsed ``--workers`` / ``REPRO_FABRIC`` value.

    Exactly one of ``spawn`` (local worker count) or ``addresses``
    (remote endpoints to dial) is set.
    """

    spawn: int = 0
    addresses: Tuple[Address, ...] = ()

    @property
    def count(self) -> int:
        return self.spawn or len(self.addresses)


def parse_spec(text: str) -> WorkerSpec:
    """Parse a fabric spec: an integer spawns local workers, a comma
    list of addresses dials out."""
    text = text.strip()
    if not text:
        raise ValueError("empty fabric spec")
    if text.isdigit():
        count = int(text)
        if count < 1:
            raise ValueError(f"fabric worker count must be >= 1: {text!r}")
        return WorkerSpec(spawn=count)
    addresses = tuple(parse_address(part)
                      for part in text.split(",") if part.strip())
    if not addresses:
        raise ValueError(f"fabric spec {text!r} names no workers")
    return WorkerSpec(addresses=addresses)
