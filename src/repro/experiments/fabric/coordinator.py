"""Fabric coordinator: work queue, shared cache, straggler-aware dispatch.

The coordinator owns one listening (or dialing) socket per fabric and a
single-threaded ``selectors`` event loop. Per ``run_tasks`` call it
pushes ``task`` messages to idle workers, serves their ``cache_get``
round-trips from its in-memory results plus its on-disk
:class:`~repro.experiments.executor.SweepCache`, and collects
``result`` messages until every task has a value. Freshly *computed*
(non-NaN, cache-eligible) results are written back into that store as
they arrive (``cache_writebacks``), so values computed on remote
workers' disks become peer-cache hits for everyone on the next ask.

Dispatch policy (the straggler-aware part, after arXiv 1805.06156):

* every completed *compute* latency updates its worker's EWMA and a
  bounded window whose running **median** is the fabric's notion of a
  normal point;
* new tasks go to the idle worker with the lowest EWMA (ties broken by
  worker id, so scheduling is reproducible given identical timings);
* when the queue is empty but workers are idle, the oldest in-flight
  task whose age exceeds ``max(hedge_min_s, hedge_k x median)`` is
  **hedged** — re-dispatched to an idle worker, at most two copies;
* **first result wins**: a task's first arriving value is recorded and
  later duplicates are discarded. Point functions are pure and
  deterministic (the executor's core contract, pinned by the
  determinism suite), so every copy computes the *same bits* and the
  discard can never change the output — which is exactly why a fabric
  run is byte-identical to a serial one regardless of hedge timing. A
  mismatching duplicate is counted (``duplicate_mismatches``) and
  logged loudly: it means a point function broke the purity contract.

Failure handling: a worker EOF re-queues its in-flight assignments
(bounded by ``MAX_REQUEUES`` per task, so a point that *kills* workers
cannot loop forever); a worker ``error`` reply — the point function
raised — aborts the run with :class:`FabricError`, mirroring the pool
path where a raising point surfaces to the caller. ``run_sweep`` treats
any :class:`FabricError` like a broken pool: recompute locally.

Telemetry: per-worker queue depth, completion/hedge/cache counters and
the coordinator's pending depth are recorded into
:class:`repro.obs.telemetry.TimeSeries` ring buffers (wall-clock
timestamps) and exported in the ``repro.obs`` JSONL schema, so
``python -m repro.obs.report`` renders a fabric trace with the same
machinery as a simulation trace.
"""

from __future__ import annotations

import hmac
import itertools
import logging
import os
import selectors
import socket
import statistics
import subprocess
import sys
import tempfile
import time
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.fabric.protocol import (AUTH_ENV, Address,
                                               FrameBuffer, FrameError,
                                               WorkerSpec, auth_proof,
                                               connect, fabric_secret,
                                               format_address, parse_spec,
                                               send_msg)

_log = logging.getLogger("repro.fabric")

__all__ = ["Fabric", "FabricError", "MAX_REQUEUES"]

#: Times one task may be re-queued after losing its worker before the
#: run aborts — a point that reliably kills its worker must not melt
#: the whole fabric down retrying forever.
MAX_REQUEUES = 3

#: Completed compute latencies kept for the running median.
_LATENCY_WINDOW = 64

#: Handshake budget for spawned/dialed workers.
_HELLO_TIMEOUT_S = 30.0


class FabricError(RuntimeError):
    """The fabric cannot finish this run; the caller should fall back."""


class _Worker:
    """Coordinator-side connection state for one worker process."""

    __slots__ = ("ident", "sock", "frames", "task", "dispatched_at",
                 "ewma_s", "completed", "hedges_won", "cache_local",
                 "cache_peer", "cache_misses", "computed", "writebacks",
                 "pid", "host", "process")

    def __init__(self, ident: int, sock: socket.socket,
                 process: Optional[subprocess.Popen] = None):
        self.ident = ident
        self.sock = sock
        self.frames = FrameBuffer()
        self.task: Optional[int] = None
        self.dispatched_at = 0.0
        #: EWMA of this worker's compute latencies (0 until first point:
        #: unproven workers look fast, so they get work immediately).
        self.ewma_s = 0.0
        self.completed = 0
        self.hedges_won = 0
        self.cache_local = 0
        self.cache_peer = 0
        #: Cache-enabled tasks that fell through both tiers to compute.
        self.cache_misses = 0
        self.computed = 0
        #: Computed values this worker contributed to the shared store.
        self.writebacks = 0
        self.pid: Optional[int] = None
        self.host = ""
        self.process = process

    @property
    def idle(self) -> bool:
        return self.task is None

    def __repr__(self) -> str:
        return (f"<worker {self.ident} pid={self.pid} "
                f"task={self.task} ewma={self.ewma_s:.3f}s>")


class Fabric:
    """A pool of fabric workers shared across ``run_sweep`` calls.

    ``Fabric("4")`` spawns four local workers over a private socket on
    first use; ``Fabric("hostA:7070,hostB:7070")`` dials workers
    started with ``python -m repro.experiments.fabric worker --listen``.
    The connection set persists across sweeps (workers keep their warm
    arena and local cache); ``close()`` tears everything down.
    """

    def __init__(self, spec: str, cache_root: Optional[str] = None,
                 hedge_k: float = 3.0, hedge_min_s: float = 1.0,
                 worker_env: Optional[Dict[str, str]] = None,
                 secret: Optional[str] = None):
        self.spec: WorkerSpec = parse_spec(spec)
        self.spec_text = spec
        self.hedge_k = hedge_k
        self.hedge_min_s = hedge_min_s
        self._cache_root = cache_root
        self._worker_env = dict(worker_env or {})
        #: Shared auth secret: explicit argument wins, else the
        #: environment (REPRO_FABRIC_SECRET); "" means auth off.
        self._secret = fabric_secret() if secret is None \
            else (secret or None)
        self._store = None  # lazy SweepCache
        self._selector: Optional[selectors.BaseSelector] = None
        self._listener: Optional[socket.socket] = None
        self._listen_address: Optional[Address] = None
        self._socket_dir: Optional[tempfile.TemporaryDirectory] = None
        self._workers: Dict[int, _Worker] = {}
        self._ident = itertools.count(1)
        self._runs = itertools.count(1)
        self._started = False
        self._latencies: deque = deque(maxlen=_LATENCY_WINDOW)
        # Lifetime counters (across runs); surfaced by stats().
        self.completed = 0
        self.hedges_issued = 0
        self.hedges_won = 0
        self.requeued = 0
        self.cache_local_hits = 0
        self.cache_peer_hits = 0
        self.cache_writebacks = 0
        self.duplicate_results = 0
        self.duplicate_mismatches = 0
        self.workers_lost = 0
        self._telemetry_series: Dict[str, Any] = {}
        self._telemetry_t0 = time.monotonic()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Spawn/dial workers and complete handshakes (idempotent).

        Separated from :meth:`run_tasks` so callers timing throughput
        (the ``sweep_fanout`` bench) can exclude process startup.
        """
        if not self._started:
            self._selector = selectors.DefaultSelector()
            if self.spec.spawn:
                self._open_listener()
            self._started = True
        self._ensure_workers()
        if not self._workers:
            raise FabricError(
                f"no fabric workers reachable for spec "
                f"{self.spec_text!r}")

    def close(self) -> None:
        """Shut down workers and release sockets (idempotent)."""
        for worker in list(self._workers.values()):
            try:
                send_msg(worker.sock, {"type": "shutdown"})
            except OSError:
                pass
        deadline = time.monotonic() + 5.0
        for worker in list(self._workers.values()):
            self._drop_worker(worker, requeue=False)
            process = worker.process
            if process is not None:
                try:
                    process.wait(timeout=max(0.1,
                                             deadline - time.monotonic()))
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()
        if self._listener is not None:
            try:
                self._selector.unregister(self._listener)
            except (KeyError, ValueError):
                pass
            self._listener.close()
            self._listener = None
        if self._selector is not None:
            self._selector.close()
            self._selector = None
        if self._socket_dir is not None:
            self._socket_dir.cleanup()
            self._socket_dir = None
        self._started = False

    def __enter__(self) -> "Fabric":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- worker management --------------------------------------------------

    def _open_listener(self) -> None:
        """Listen for locally spawned workers: Unix socket when the
        platform has one, loopback TCP otherwise."""
        if hasattr(socket, "AF_UNIX"):
            self._socket_dir = tempfile.TemporaryDirectory(
                prefix="repro-fabric-")
            path = os.path.join(self._socket_dir.name, "coordinator.sock")
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(path)
            self._listen_address = ("unix", path)
        else:  # pragma: no cover - non-POSIX
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.bind(("127.0.0.1", 0))
            host, port = listener.getsockname()
            self._listen_address = ("tcp", (host, port))
        listener.listen(self.spec.spawn)
        listener.setblocking(False)
        self._selector.register(listener, selectors.EVENT_READ,
                                data="listener")
        self._listener = listener

    def _spawn_worker(self) -> subprocess.Popen:
        """Start one local worker process pointed at our listener."""
        env = dict(os.environ)
        # Replay the parent's sys.path (same trick as the pool's
        # _worker_init): point functions must resolve by reference in a
        # fresh interpreter too.
        env["PYTHONPATH"] = os.pathsep.join(
            entry for entry in sys.path if entry)
        env.update(self._worker_env)
        # Spawned workers inherit an explicitly-passed secret unless
        # the caller deliberately overrode it via worker_env (tests
        # use that to exercise the mismatch path).
        if self._secret is not None and AUTH_ENV not in self._worker_env:
            env[AUTH_ENV] = self._secret
        command = [sys.executable, "-m", "repro.experiments.fabric",
                   "worker", "--connect",
                   format_address(self._listen_address)]
        return subprocess.Popen(command, env=env,
                                stdin=subprocess.DEVNULL)

    def _ensure_workers(self) -> None:
        """Bring the connection set up to spec (respawning local workers
        lost since the previous run; dial-out workers are not revived —
        their host may simply be gone)."""
        for worker in list(self._workers.values()):
            process = worker.process
            if process is not None and process.poll() is not None:
                self._drop_worker(worker, requeue=False)
        if self.spec.spawn:
            missing = self.spec.spawn - len(self._workers)
            processes = [self._spawn_worker() for _ in range(missing)]
            if processes:
                self._accept_spawned(len(processes), processes)
        elif not self._workers:
            for address in self.spec.addresses:
                try:
                    sock = connect(address, timeout=_HELLO_TIMEOUT_S)
                except OSError as exc:
                    _log.warning("fabric: cannot reach worker at %s: %s",
                                 format_address(address), exc)
                    continue
                self._adopt(sock, process=None)

    def _accept_spawned(self, expected: int,
                        processes: List[subprocess.Popen]) -> None:
        """Accept ``expected`` spawned connections within the handshake
        budget; unclaimed processes are killed."""
        deadline = time.monotonic() + _HELLO_TIMEOUT_S
        accepted = 0
        unclaimed = list(processes)
        while accepted < expected and time.monotonic() < deadline:
            try:
                sock, _peer = self._listener.accept()
            except BlockingIOError:
                self._selector.select(timeout=0.05)
                continue
            process = unclaimed.pop(0) if unclaimed else None
            self._adopt(sock, process=process)
            accepted += 1
        for process in unclaimed:
            process.kill()
        if accepted < expected:
            _log.warning("fabric: only %d/%d spawned workers connected "
                         "within %gs", accepted, expected,
                         _HELLO_TIMEOUT_S)

    def _adopt(self, sock: socket.socket,
               process: Optional[subprocess.Popen]) -> None:
        """Handshake a new connection and register it (or refuse it)."""
        from repro.experiments.fabric.protocol import recv_msg
        from repro.sim.eventcore import backend_token
        sock.settimeout(_HELLO_TIMEOUT_S)
        try:
            hello = recv_msg(sock)
        except (OSError, FrameError) as exc:
            _log.warning("fabric: worker handshake failed: %s", exc)
            sock.close()
            return
        if hello is None or hello.get("type") != "hello":
            _log.warning("fabric: worker sent %r instead of hello; "
                         "refusing", hello)
            sock.close()
            return
        ours = backend_token()
        theirs = hello.get("eventcore")
        if theirs != ours:
            # Mixed kernels would mix cache fingerprints: the keys this
            # coordinator computes embed *its* backend token, so a value
            # computed on another backend must never satisfy them.
            _log.warning(
                "fabric: refusing worker pid=%s on event core %r "
                "(coordinator runs %r)", hello.get("pid"), theirs, ours)
            try:
                send_msg(sock, {"type": "shutdown"})
            except OSError:
                pass
            sock.close()
            return
        if self._secret is not None:
            if not self._authenticate(sock, hello):
                return
        elif hello.get("auth"):
            # The worker holds a secret we do not: it will refuse our
            # first task anyway, so fail fast with a clear reason.
            _log.warning(
                "fabric: refusing worker pid=%s: it requires "
                "authentication but %s is unset here",
                hello.get("pid"), AUTH_ENV)
            try:
                send_msg(sock, {"type": "shutdown"})
            except OSError:
                pass
            sock.close()
            return
        sock.settimeout(None)
        sock.setblocking(False)
        worker = _Worker(next(self._ident), sock, process=process)
        worker.pid = hello.get("pid")
        worker.host = hello.get("host", "")
        self._workers[worker.ident] = worker
        self._selector.register(sock, selectors.EVENT_READ, data=worker)

    def _authenticate(self, sock: socket.socket, hello: dict) -> bool:
        """Mutual challenge/response with a just-helloed worker.

        We prove knowledge of the secret first (HMAC over the worker's
        hello nonce), the worker answers with its HMAC over our fresh
        nonce. Any failure closes the socket before a single task byte
        flows; returns whether the worker may join the fabric.
        """
        from repro.experiments.fabric.protocol import recv_msg

        def refuse(reason: str) -> bool:
            _log.warning("fabric: refusing worker pid=%s: %s",
                         hello.get("pid"), reason)
            try:
                send_msg(sock, {"type": "shutdown"})
            except OSError:
                pass
            sock.close()
            return False

        worker_nonce = hello.get("nonce")
        if not isinstance(worker_nonce, str) or not worker_nonce:
            return refuse("hello carries no auth nonce "
                          "(worker predates authentication?)")
        challenge_nonce = os.urandom(16).hex()
        try:
            send_msg(sock, {
                "type": "challenge", "nonce": challenge_nonce,
                "proof": auth_proof(self._secret, "coordinator",
                                    worker_nonce)})
            reply = recv_msg(sock)
        except (OSError, FrameError) as exc:
            _log.warning("fabric: worker auth handshake failed: %s", exc)
            sock.close()
            return False
        if reply is None or reply.get("type") != "auth":
            return refuse(f"expected auth reply, got "
                          f"{None if reply is None else reply.get('type')!r}")
        mac = reply.get("mac")
        expected = auth_proof(self._secret, "worker", challenge_nonce)
        if not isinstance(mac, str) \
                or not hmac.compare_digest(mac, expected):
            return refuse("bad auth proof (secret mismatch)")
        return True

    def _drop_worker(self, worker: _Worker, requeue: bool) -> None:
        """Unregister a dead/closing worker; optionally re-queue its
        in-flight task (run-time state lives in the run context)."""
        if worker.ident in self._workers:
            del self._workers[worker.ident]
        try:
            self._selector.unregister(worker.sock)
        except (KeyError, ValueError):
            pass
        worker.sock.close()
        if requeue:
            self.workers_lost += 1

    # -- telemetry ----------------------------------------------------------

    def _series(self, name: str, kind: str):
        series = self._telemetry_series.get(name)
        if series is None:
            from repro.obs.telemetry import TimeSeries
            series = TimeSeries(name, kind=kind, capacity=4096)
            self._telemetry_series[name] = series
        return series

    def _record(self, name: str, kind: str, value: float) -> None:
        self._series(name, kind).record(
            time.monotonic() - self._telemetry_t0, value)

    def export_telemetry(self, path: str,
                         meta: Optional[Dict[str, Any]] = None) -> int:
        """Write counters/gauges as a ``repro.obs`` JSONL event log."""
        import json
        header: Dict[str, Any] = {"type": "meta", "spans": 0,
                                  "dropped": 0, "fabric": self.spec_text,
                                  "workers": len(self._workers)}
        if meta:
            header.update(meta)
        lines = [json.dumps(header, sort_keys=True)]
        for name in sorted(self._telemetry_series):
            series = self._telemetry_series[name]
            lines.append(json.dumps({
                "type": "series", "name": name, "kind": series.kind,
                "samples": [[t, v] for t, v in series.samples()],
            }, sort_keys=True))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        return len(lines)

    def stats(self) -> Dict[str, Any]:
        """Lifetime dispatch/cache counters (for ``runner --json``)."""
        return {
            "spec": self.spec_text,
            "workers": len(self._workers),
            "completed": self.completed,
            "hedges_issued": self.hedges_issued,
            "hedges_won": self.hedges_won,
            "requeued": self.requeued,
            "workers_lost": self.workers_lost,
            "cache_local_hits": self.cache_local_hits,
            "cache_peer_hits": self.cache_peer_hits,
            "cache_writebacks": self.cache_writebacks,
            "duplicate_results": self.duplicate_results,
            "duplicate_mismatches": self.duplicate_mismatches,
        }

    def prometheus_metrics(self) -> List[Tuple[str, str, float]]:
        """Fleet + per-worker rows for the Prometheus dump.

        ``(name, kind, value)`` rows suitable for the ``extra``
        argument of :func:`repro.obs.export.export_prometheus`: the
        lifetime fabric counters, then per worker its completion and
        cache hit/miss/writeback counters and its dispatch-latency
        EWMA — the numbers that previously only surfaced as raw
        ``--fabric-trace`` events.
        """
        rows: List[Tuple[str, str, float]] = []
        for name, value in self.stats().items():
            if isinstance(value, (int, float)):
                kind = "gauge" if name == "workers" else "counter"
                rows.append((f"fabric.{name}", kind, float(value)))
        for ident in sorted(self._workers):
            worker = self._workers[ident]
            prefix = f"fabric.w{ident}"
            rows.extend([
                (f"{prefix}.completed", "counter",
                 float(worker.completed)),
                (f"{prefix}.computed", "counter", float(worker.computed)),
                (f"{prefix}.cache_local_hits", "counter",
                 float(worker.cache_local)),
                (f"{prefix}.cache_peer_hits", "counter",
                 float(worker.cache_peer)),
                (f"{prefix}.cache_misses", "counter",
                 float(worker.cache_misses)),
                (f"{prefix}.cache_writebacks", "counter",
                 float(worker.writebacks)),
                (f"{prefix}.hedges_won", "counter",
                 float(worker.hedges_won)),
                (f"{prefix}.ewma_seconds", "gauge", worker.ewma_s),
            ])
        return rows

    def export_prometheus(self, path: str) -> int:
        """Write :meth:`prometheus_metrics` as a Prometheus text file."""
        from repro.obs.export import export_prometheus
        return export_prometheus(None, path,
                                 extra=self.prometheus_metrics())

    # -- the run loop -------------------------------------------------------

    def run_tasks(self, tasks: List[Tuple[Any, Any, dict]],
                  keys: Optional[List[Optional[str]]] = None,
                  use_cache: bool = False,
                  trace: Optional[Dict[str, Any]] = None,
                  obs_context: Optional[Any] = None) -> List[Any]:
        """Execute ``(point_fn, scale, params)`` tasks; values in order.

        ``keys[i]`` is task i's sweep-cache key (or None); with
        ``use_cache`` the workers consult/populate the shared cache
        under those keys. With ``trace`` (an obs span/telemetry config
        dict, DESIGN.md §10) every task runs traced on its worker and
        ships spans + telemetry back with its result; the payloads are
        merged into ``obs_context`` in task order — deterministic
        regardless of completion order — tagged with the computing
        worker's ident. Tracing forces the cache off (a hit would skip
        the simulation that produces the spans). Raises
        :class:`FabricError` when the fabric cannot produce every
        value.
        """
        self.start()
        if keys is None:
            keys = [None] * len(tasks)
        if len(keys) != len(tasks):
            raise ValueError("keys and tasks must align")
        if trace:
            use_cache = False
        if use_cache and self._store is None:
            from repro.experiments.executor import SweepCache
            self._store = SweepCache(self._cache_root)

        # The run nonce isolates runs sharing one fabric: a hedge copy
        # still computing when its run finishes delivers its result
        # *during a later run*, and that late frame must never be
        # mistaken for the later run's same-numbered task.
        run_id = next(self._runs)
        messages = []
        for index, ((fn, scale, params), key) in enumerate(
                zip(tasks, keys)):
            message = {
                "type": "task", "task": index, "run": run_id, "key": key,
                "fn": f"{fn.__module__}:{fn.__qualname__}",
                "scale": [scale.name, scale.duration, scale.warmup],
                "params": dict(params),
                "cache": bool(use_cache and key),
            }
            if trace:
                message["trace"] = dict(trace)
            messages.append(message)

        run = _RunState(self, messages)
        try:
            values = run.execute()
        finally:
            # Whatever happened, no worker may stay marked busy with a
            # task id from a finished run.
            for worker in self._workers.values():
                worker.task = None
        if obs_context is not None:
            # Task order, not arrival order: the merged trace's span
            # ids are then a pure function of the task list, identical
            # across runs whatever the workers' relative speeds.
            for index in range(len(messages)):
                entry = run.obs_payloads.get(index)
                if entry is not None:
                    ident, payload = entry
                    obs_context.ingest_payload(payload, worker=ident)
        return values

    # -- pieces used by _RunState ------------------------------------------

    def _observe_latency(self, worker: _Worker, elapsed: float) -> None:
        worker.ewma_s = (elapsed if worker.ewma_s == 0.0
                         else 0.7 * worker.ewma_s + 0.3 * elapsed)
        self._latencies.append(elapsed)

    def _median_latency(self) -> float:
        if not self._latencies:
            return self.hedge_min_s
        return statistics.median(self._latencies)


class _RunState:
    """One ``run_tasks`` call: queue, in-flight map, results."""

    def __init__(self, fabric: Fabric, messages: List[dict]):
        self.fabric = fabric
        self.messages = messages
        self.run_id = messages[0]["run"] if messages else 0
        self.pending = deque(range(len(messages)))
        #: task -> live worker idents it is assigned to
        self.assigned: Dict[int, List[int]] = {}
        self.dispatched_at: Dict[int, float] = {}
        self.results: Dict[int, Any] = {}
        self.requeues: Dict[int, int] = {}
        #: task -> (worker ident, obs payload) for traced tasks; like
        #: results, first arrival wins.
        self.obs_payloads: Dict[int, Tuple[int, dict]] = {}

    # -- dispatch -----------------------------------------------------------

    def _dispatch(self, worker: _Worker, task: int,
                  hedge: bool = False) -> None:
        fabric = self.fabric
        try:
            send_msg(worker.sock, self.messages[task])
        except OSError:
            self._lose_worker(worker)
            if not hedge:
                self.pending.appendleft(task)
            return
        now = time.monotonic()
        worker.task = task
        worker.dispatched_at = now
        self.assigned.setdefault(task, []).append(worker.ident)
        self.dispatched_at.setdefault(task, now)
        fabric._record(f"fabric.w{worker.ident}.inflight", "gauge", 1.0)
        fabric._record("fabric.queue_depth", "gauge", len(self.pending))
        if hedge:
            fabric.hedges_issued += 1
            fabric._record("fabric.hedges_issued", "counter",
                           fabric.hedges_issued)

    def _fill_idle(self) -> None:
        """Assign queued tasks, then consider hedging stragglers."""
        fabric = self.fabric
        while self.pending:
            idle = [w for w in fabric._workers.values() if w.idle]
            if not idle:
                return
            idle.sort(key=lambda w: (w.ewma_s, w.ident))
            task = self.pending.popleft()
            if task in self.results:
                continue
            self._dispatch(idle[0], task)
        self._maybe_hedge()

    def _maybe_hedge(self) -> None:
        fabric = self.fabric
        idle = sorted((w for w in fabric._workers.values() if w.idle),
                      key=lambda w: (w.ewma_s, w.ident))
        if not idle:
            return
        threshold = max(fabric.hedge_min_s,
                        fabric.hedge_k * fabric._median_latency())
        now = time.monotonic()
        # Oldest in-flight tasks first; at most two copies each.
        candidates = sorted(
            (task for task, workers in self.assigned.items()
             if task not in self.results and len(workers) == 1),
            key=lambda task: self.dispatched_at[task])
        for task in candidates:
            if not idle:
                return
            if now - self.dispatched_at[task] <= threshold:
                return  # sorted: everything later is younger
            self._dispatch(idle.pop(0), task, hedge=True)

    # -- events -------------------------------------------------------------

    def _lose_worker(self, worker: _Worker) -> None:
        """A worker connection died: re-queue its assignment."""
        fabric = self.fabric
        task = worker.task
        fabric._drop_worker(worker, requeue=True)
        if task is None or task in self.results:
            return
        workers = self.assigned.get(task, [])
        if worker.ident in workers:
            workers.remove(worker.ident)
        if workers:
            return  # a hedge copy is still running it
        self.assigned.pop(task, None)
        self.dispatched_at.pop(task, None)  # age restarts on re-dispatch
        count = self.requeues.get(task, 0) + 1
        self.requeues[task] = count
        if count > MAX_REQUEUES:
            raise FabricError(
                f"task {task} lost its worker {count} times; giving up")
        fabric.requeued += 1
        fabric._record("fabric.requeued", "counter", fabric.requeued)
        _log.warning("fabric: worker died mid-point; re-queueing task "
                     "%d (attempt %d)", task, count)
        self.pending.appendleft(task)

    def _on_message(self, worker: _Worker, message: dict) -> None:
        fabric = self.fabric
        kind = message.get("type")
        if kind == "cache_get":
            key = message.get("key")
            hit, value = False, None
            if fabric._store is not None and key:
                hit, value = fabric._store.get(key)
            send_msg(worker.sock,
                     {"type": "cache_value", "hit": hit, "value": value})
            return
        if kind == "error":
            if message.get("run") != self.run_id:
                _log.warning("fabric: late error from a previous run "
                             "(worker pid=%s): %s", worker.pid,
                             message.get("error"))
                return
            raise FabricError(
                f"point task {message.get('task')} raised on worker "
                f"pid={worker.pid}: {message.get('error')}")
        if kind != "result":
            raise FrameError(f"unexpected worker message {kind!r}")

        if message.get("run") != self.run_id:
            # Straggling hedge copy from a finished run: the worker is
            # busy with *our* task (queued behind the old one), so it
            # stays marked busy.
            fabric.duplicate_results += 1
            return
        task = message.get("task")
        worker.task = None
        fabric._record(f"fabric.w{worker.ident}.inflight", "gauge", 0.0)
        source = message.get("source", "compute")
        elapsed = float(message.get("elapsed", 0.0))
        if source == "compute":
            fabric._observe_latency(worker, elapsed)
        elif source == "local-cache":
            worker.cache_local += 1
            fabric.cache_local_hits += 1
            fabric._record("fabric.cache_hits", "counter",
                           fabric.cache_local_hits
                           + fabric.cache_peer_hits)
        elif source == "peer-cache":
            worker.cache_peer += 1
            fabric.cache_peer_hits += 1
            fabric._record("fabric.cache_hits", "counter",
                           fabric.cache_local_hits
                           + fabric.cache_peer_hits)
        if task is None or task >= len(self.messages):
            raise FrameError(f"result for unknown task {task!r}")
        if task in self.results:
            # A hedge lost the race. Purity makes the copies
            # bit-identical, so dropping the late one is a no-op on
            # output; verify anyway and scream if the contract broke.
            fabric.duplicate_results += 1
            if message.get("value") != self.results[task]:
                fabric.duplicate_mismatches += 1
                _log.error(
                    "fabric: NON-DETERMINISTIC POINT: task %d returned "
                    "%r and %r from different workers", task,
                    self.results[task], message.get("value"))
            return
        assignments = self.assigned.get(task, [])
        if len(assignments) > 1 and assignments \
                and assignments[0] != worker.ident:
            worker.hedges_won += 1
            fabric.hedges_won += 1
        value = message.get("value")
        self.results[task] = value
        worker.completed += 1
        fabric.completed += 1
        fabric._record(f"fabric.w{worker.ident}.completed", "counter",
                       worker.completed)
        if source == "compute":
            worker.computed += 1
            if self.messages[task].get("cache"):
                worker.cache_misses += 1
            payload = message.get("obs")
            if payload is not None:
                self.obs_payloads[task] = (worker.ident, payload)
            self._write_back(task, value, worker)

    def _write_back(self, task: int, value: Any,
                    worker: _Worker) -> None:
        """Persist a freshly *computed* result in the coordinator's store.

        Workers write computes to their own local cache, but a dial-out
        worker's disk is not this coordinator's: without write-back the
        shared tier only ever returns values the coordinator itself once
        computed, and every new point stays a guaranteed ``cache_get``
        miss for all peers. Writing the first copy of each computed
        value here closes the loop — the next worker asking for this key
        (a hedge survivor, a re-run, a different sweep sharing points)
        hits the peer tier instead of recomputing. Cache-ineligible
        tasks and NaN values (timed-out points, never cached anywhere)
        are skipped; hedge duplicates never reach this path because the
        first result already claimed ``results[task]``.
        """
        fabric = self.fabric
        spec = self.messages[task]
        key = spec.get("key")
        if fabric._store is None or not spec.get("cache") or not key:
            return
        from repro.experiments.executor import _contains_nan
        if _contains_nan(value):
            return
        fabric._store.put(key, value)
        fabric.cache_writebacks += 1
        worker.writebacks += 1
        fabric._record("fabric.cache_writebacks", "counter",
                       fabric.cache_writebacks)

    # -- main loop ----------------------------------------------------------

    def execute(self) -> List[Any]:
        fabric = self.fabric
        total = len(self.messages)
        self._fill_idle()
        while len(self.results) < total:
            if not fabric._workers:
                if fabric.spec.spawn:
                    # Local workers are ours to revive; the per-task
                    # requeue budget still bounds a point that kills
                    # every process it lands on.
                    fabric._ensure_workers()
                if not fabric._workers:
                    raise FabricError(
                        "all fabric workers died with "
                        f"{total - len(self.results)} task(s) "
                        f"outstanding")
                self._fill_idle()
            events = fabric._selector.select(timeout=0.05)
            for key, _mask in events:
                if key.data == "listener":
                    # Late spawn connecting outside start(): adopt it.
                    try:
                        sock, _peer = key.fileobj.accept()
                    except OSError:
                        continue
                    fabric._adopt(sock, process=None)
                    continue
                worker = key.data
                try:
                    data = worker.sock.recv(65536)
                except (BlockingIOError, InterruptedError):
                    continue
                except OSError:
                    data = b""
                if not data:
                    self._lose_worker(worker)
                    continue
                try:
                    messages = worker.frames.feed(data)
                except FrameError as exc:
                    _log.warning("fabric: dropping worker %s: %s",
                                 worker, exc)
                    self._lose_worker(worker)
                    continue
                for message in messages:
                    self._on_message(worker, message)
            self._fill_idle()
        fabric._record("fabric.queue_depth", "gauge", 0.0)
        return [self.results[index] for index in range(total)]
