"""``python -m repro.experiments.fabric`` — fabric process entry points.

Usage::

    python -m repro.experiments.fabric worker --listen 0.0.0.0:7070
    python -m repro.experiments.fabric worker --connect HOST:PORT

``--listen`` starts a long-lived remote worker that serves one
coordinator session at a time (point it at the coordinator with
``runner --workers host:port,...``). ``--connect`` is the spawned-local
mode the coordinator uses internally: connect once, serve the session,
exit.
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.fabric",
        description="Sweep-fabric process entry points.")
    commands = parser.add_subparsers(dest="command", required=True)
    worker = commands.add_parser(
        "worker", help="serve sweep points to a coordinator")
    group = worker.add_mutually_exclusive_group(required=True)
    group.add_argument("--connect", metavar="ADDR",
                       help="dial a coordinator (host:port or Unix "
                            "socket path), serve one session, exit")
    group.add_argument("--listen", metavar="ADDR",
                       help="accept coordinator sessions on ADDR "
                            "until killed")
    arguments = parser.parse_args(argv)
    logging.basicConfig(level=logging.INFO,
                        format="%(name)s: %(message)s")
    from repro.experiments.fabric.worker import main as worker_main
    return worker_main(connect_to=arguments.connect,
                       listen_on=arguments.listen)


if __name__ == "__main__":
    sys.exit(main())
