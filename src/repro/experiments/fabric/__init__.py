"""Distributed sweep fabric: a work queue + shared cache for sweeps.

``repro.experiments.fabric`` turns the sweep executor's single-host
process pool into a coordinator/worker fabric (push-based dispatch in
the spirit of arXiv 1905.07113): a coordinator serializes
``(point_fn, scale, params)`` tasks onto a length-prefixed TCP or
Unix-socket work queue; N worker processes — spawned locally or
listening on remote hosts — pull points, consult/populate the shared
content-addressed :class:`~repro.experiments.executor.SweepCache`
(worker-local disk first, then a ``cache_get`` round-trip to the
coordinator's store), and stream ``(key, value)`` results back.
Dispatch is straggler-aware: slow points are hedged onto idle workers
and the first result wins (see
:mod:`repro.experiments.fabric.coordinator` for the policy and the
determinism argument).

Entry points:

* ``run_sweep(..., fabric=...)`` / ``REPRO_FABRIC`` — every figure can
  run its points over a fabric instead of the local pool;
* ``python -m repro.experiments.runner --workers 4`` (or
  ``--workers hostA:7070,hostB:7070``) — the CLI wiring;
* ``python -m repro.experiments.fabric worker --listen 0.0.0.0:7070``
  — a remote worker; ``--connect`` is used by spawned local workers.
"""

from __future__ import annotations

from repro.experiments.fabric.coordinator import Fabric, FabricError
from repro.experiments.fabric.protocol import (AUTH_ENV, WorkerSpec,
                                               auth_proof, fabric_secret,
                                               parse_address, parse_spec)

__all__ = [
    "AUTH_ENV",
    "Fabric",
    "FabricError",
    "WorkerSpec",
    "auth_proof",
    "fabric_secret",
    "parse_address",
    "parse_spec",
]
