"""Fabric worker: pull points off the wire, compute or reuse, stream back.

One worker process serves one coordinator connection at a time. Its
loop is the strictly alternating half of the protocol (see
:mod:`repro.experiments.fabric.protocol`):

1. receive a ``task``;
2. on a cache-enabled task, try the worker-local
   :class:`~repro.experiments.executor.SweepCache` first, then one
   ``cache_get`` round-trip to the coordinator (whose store is warmed by
   every other worker — the *shared* half of the content-addressed
   cache), and only then compute;
3. answer with ``result`` (or ``error`` if the point function raised).

Points are computed through :func:`repro.experiments.executor._invoke`,
so ``REPRO_POINT_TIMEOUT`` means exactly what it means in the pool: an
overrunning point yields NaN, and NaN results are never written to any
cache tier. Freshly computed non-NaN values are written to the local
store before the result goes back, so a later sweep on this host hits
without a network round-trip.

Workers enable the sweep-wide free-list arena
(:func:`repro.sim.eventcore.sweep_arena`) at startup: pooled
Timeout/Event objects survive across the many simulators one worker
builds over a sweep, so every point after the first starts with warm
free-lists instead of re-allocating its way up to ``POOL_LIMIT``.
"""

from __future__ import annotations

import hmac
import logging
import math
import os
import socket
import time
from typing import Any, Dict, Optional

from repro.experiments.base import ExperimentScale
from repro.experiments.fabric.protocol import (AUTH_ENV, FrameError,
                                               auth_proof, fabric_secret,
                                               recv_msg, send_msg)
from repro.sim.eventcore import backend_token, sweep_arena

_log = logging.getLogger("repro.fabric.worker")

__all__ = ["handle_task", "resolve_point_fn", "serve_connection"]


def resolve_point_fn(spec: str):
    """Import ``"module:qualname"`` back into the callable it names.

    The inverse of the coordinator's serialization. Mirrors pickle's
    by-reference lookup (the pool's transport), so exactly the point
    functions that work with ``--jobs`` work with the fabric: top-level
    callables in importable modules.
    """
    module_name, sep, qualname = spec.partition(":")
    if not sep:
        raise ValueError(f"malformed point-fn reference {spec!r}")
    import importlib
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise TypeError(f"{spec!r} resolved to non-callable {obj!r}")
    return obj


def _contains_nan(value: Any) -> bool:
    if isinstance(value, dict):
        return any(isinstance(v, float) and math.isnan(v)
                   for v in value.values())
    return isinstance(value, float) and math.isnan(value)


def _peer_cache_get(sock: socket.socket, key: str):
    """One ``cache_get`` round-trip; (hit, value).

    A ``shutdown`` arriving instead of the reply ends the process —
    the coordinator is tearing the fabric down mid-task.
    """
    send_msg(sock, {"type": "cache_get", "key": key})
    reply = recv_msg(sock)
    if reply is None or reply.get("type") == "shutdown":
        raise SystemExit(0)
    if reply.get("type") != "cache_value":
        raise FrameError(
            f"expected cache_value, got {reply.get('type')!r}")
    return bool(reply.get("hit")), reply.get("value")


def _invoke_traced(task: tuple, trace: Dict[str, Any]) -> tuple:
    """Compute one point under a worker-local obs context.

    Activates an :class:`~repro.obs.ObsContext` configured from the
    coordinator's ``trace`` field around the point invocation, so every
    instrumented component the point builds records into it — exactly
    what the serial ``--trace-out`` path does in-process. Returns
    ``(value, payload)`` where ``payload`` is the context's packed
    spans + telemetry (DESIGN.md §10 wire form) ready to ride back in
    the result message.
    """
    from repro import obs
    from repro.experiments.executor import _invoke
    reserved = trace.get("span_reserved")
    with obs.activated(obs.ObsContext(
            span_capacity=trace.get("span_capacity"),
            telemetry_interval=trace.get("telemetry_interval"),
            telemetry_capacity=trace.get("telemetry_capacity"),
            span_reserved=dict(reserved) if reserved else None)) as context:
        value = _invoke(task)
    # No simulator handle survives the point, so flush still-open spans
    # at the latest timestamp the trace itself knows about (an open
    # span may start after every closed end, so take both into
    # account — a flush time below a span's start would export a
    # negative duration).
    last = max((span.end if span.end is not None else span.start
                for span in context.spans.spans), default=0.0)
    context.spans.close_open(last)
    return value, context.pack_payload()


def handle_task(sock: socket.socket, message: Dict[str, Any],
                cache) -> None:
    """Serve one ``task`` message; always answers exactly once."""
    task_id = message.get("task")
    try:
        point_fn = resolve_point_fn(message["fn"])
        scale = ExperimentScale(*message["scale"])
        params = dict(message.get("params") or {})
        key: Optional[str] = message.get("key")
        trace = message.get("trace")
        # A traced task must actually *run* — a cache hit would return
        # the right value but no spans — so tracing disables both cache
        # tiers regardless of what the task says.
        use_cache = bool(message.get("cache")) and key is not None \
            and cache is not None and not trace
        started = time.monotonic()
        value = None
        obs_payload = None
        source = "compute"
        if use_cache:
            hit, value = cache.get(key)
            if hit:
                source = "local-cache"
            else:
                hit, value = _peer_cache_get(sock, key)
                if hit:
                    source = "peer-cache"
                    cache.put(key, value)
        if source == "compute":
            if trace:
                value, obs_payload = _invoke_traced(
                    (point_fn, scale, params), trace)
            else:
                from repro.experiments.executor import _invoke
                value = _invoke((point_fn, scale, params))
            if use_cache and not _contains_nan(value):
                cache.put(key, value)
    except SystemExit:
        raise
    except BaseException as exc:  # noqa: BLE001 - reported, not fatal
        _log.warning("point task %s failed: %s: %s", task_id,
                     type(exc).__name__, exc)
        send_msg(sock, {"type": "error", "task": task_id,
                        "run": message.get("run"),
                        "error": f"{type(exc).__name__}: {exc}"})
        return
    reply = {"type": "result", "task": task_id,
             "run": message.get("run"),
             "key": message.get("key"), "value": value,
             "source": source,
             "elapsed": time.monotonic() - started}
    if obs_payload is not None:
        reply["obs"] = obs_payload
    send_msg(sock, reply)


def serve_connection(sock: socket.socket, cache=None) -> None:
    """Run the worker protocol over an established connection.

    With ``REPRO_FABRIC_SECRET`` set the first coordinator message
    must be a valid ``challenge`` (its proof HMACs our hello nonce);
    anything else — including a bare ``task`` from an unauthenticated
    coordinator — closes the connection before any point runs.
    """
    if cache is None:
        from repro.experiments.executor import SweepCache
        cache = SweepCache()
    secret = fabric_secret()
    nonce = os.urandom(16).hex()
    send_msg(sock, {"type": "hello", "pid": os.getpid(),
                    "host": socket.gethostname(),
                    "eventcore": backend_token(),
                    "nonce": nonce,
                    "auth": secret is not None})
    message = recv_msg(sock)
    if secret is not None:
        if message is None or message.get("type") == "shutdown":
            return  # the coordinator refused us first; nothing to do
        if message.get("type") != "challenge":
            _log.warning(
                "coordinator sent %r before authenticating; closing",
                message.get("type"))
            return
        proof = message.get("proof")
        expected = auth_proof(secret, "coordinator", nonce)
        if not isinstance(proof, str) \
                or not hmac.compare_digest(proof, expected):
            _log.warning("coordinator failed authentication; closing")
            return
        send_msg(sock, {"type": "auth",
                        "mac": auth_proof(secret, "worker",
                                          str(message.get("nonce")))})
        message = recv_msg(sock)
    elif message is not None and message.get("type") == "challenge":
        _log.warning("coordinator requires authentication but %s is "
                     "unset here; closing", AUTH_ENV)
        return
    while True:
        if message is None or message.get("type") == "shutdown":
            return
        if message.get("type") == "task":
            handle_task(sock, message, cache)
        else:
            raise FrameError(
                f"unexpected coordinator message {message.get('type')!r}")
        message = recv_msg(sock)


def main(connect_to: Optional[str] = None,
         listen_on: Optional[str] = None) -> int:
    """Worker entry point: ``--connect`` (one session) or ``--listen``
    (serve coordinators until killed)."""
    from repro.experiments.fabric import protocol

    # Warm free-lists survive across this worker's points.
    sweep_arena().enable()

    if connect_to:
        sock = protocol.connect(protocol.parse_address(connect_to),
                                timeout=30.0)
        try:
            serve_connection(sock)
        finally:
            sock.close()
        return 0

    address = protocol.parse_address(listen_on or "")
    kind, where = address
    if kind == "unix":
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    server.bind(where)
    server.listen(1)
    _log.info("fabric worker pid=%d listening on %s", os.getpid(),
              protocol.format_address(address))
    try:
        while True:
            sock, _peer = server.accept()
            try:
                serve_connection(sock)
            except (FrameError, ConnectionError) as exc:
                _log.warning("coordinator session ended abnormally: %s",
                             exc)
            finally:
                sock.close()
    finally:
        server.close()
