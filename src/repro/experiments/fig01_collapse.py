"""Figure 1 — throughput collapse on a 60-disk setup.

Aggregate throughput vs request size (8K–256K) for 60/100/300/500 total
sequential streams, serviced directly by the node (no stream server).
The paper's point: as streams grow, throughput drops by 2–5x.
"""

from __future__ import annotations

from repro.analysis import ExperimentResult
from repro.disk.specs import DISKSIM_GENERIC
from repro.experiments.base import QUICK, ExperimentScale, measure, \
    spread_streams
from repro.experiments.executor import Point, SweepSpec, run_sweep
from repro.node import large_topology
from repro.units import KiB, format_size

__all__ = ["run", "sweep"]

REQUEST_SIZES = [8 * KiB, 16 * KiB, 64 * KiB, 128 * KiB, 256 * KiB]
STREAM_COUNTS = [60, 100, 300, 500]
NUM_DISKS = 60


def _point(scale: ExperimentScale, params: dict) -> float:
    """Measure one (streams, request size) cell of Figure 1."""
    topology = large_topology(NUM_DISKS, disk_spec=DISKSIM_GENERIC,
                              seed=params["streams"])
    report = measure(
        topology, scale,
        specs_for=lambda node: spread_streams(
            params["streams"], node.disk_ids, node.capacity_bytes,
            request_size=params["request_size"]))
    return report.throughput_mb


def sweep() -> SweepSpec:
    """Figure 1 as a declarative sweep (four curves x five sizes)."""
    points = tuple(
        Point(series=f"{streams} streams", x=format_size(request_size),
              params={"streams": streams, "request_size": request_size})
        for streams in STREAM_COUNTS
        for request_size in REQUEST_SIZES)
    return SweepSpec(
        experiment_id="fig01",
        title="Throughput collapse for multiple sequential streams "
              f"({NUM_DISKS} disks)",
        x_label="request size",
        y_label="MBytes/s",
        notes="direct access, no stream server; drive read-ahead on",
        point_fn=_point,
        points=points)


def run(scale: ExperimentScale = QUICK, jobs: int | None = None,
        cache: bool = True) -> ExperimentResult:
    """Reproduce Figure 1's four curves."""
    return run_sweep(sweep(), scale, jobs=jobs, cache=cache)
