"""Figure 1 — throughput collapse on a 60-disk setup.

Aggregate throughput vs request size (8K–256K) for 60/100/300/500 total
sequential streams, serviced directly by the node (no stream server).
The paper's point: as streams grow, throughput drops by 2–5x.
"""

from __future__ import annotations

from repro.analysis import ExperimentResult
from repro.disk.specs import DISKSIM_GENERIC
from repro.experiments.base import QUICK, ExperimentScale, measure, \
    spread_streams
from repro.node import large_topology
from repro.units import KiB, format_size

__all__ = ["run"]

REQUEST_SIZES = [8 * KiB, 16 * KiB, 64 * KiB, 128 * KiB, 256 * KiB]
STREAM_COUNTS = [60, 100, 300, 500]
NUM_DISKS = 60


def run(scale: ExperimentScale = QUICK) -> ExperimentResult:
    """Reproduce Figure 1's four curves."""
    result = ExperimentResult(
        experiment_id="fig01",
        title="Throughput collapse for multiple sequential streams "
              f"({NUM_DISKS} disks)",
        x_label="request size",
        y_label="MBytes/s",
        notes="direct access, no stream server; drive read-ahead on")

    for total_streams in STREAM_COUNTS:
        series = result.new_series(f"{total_streams} streams")
        for request_size in REQUEST_SIZES:
            topology = large_topology(NUM_DISKS,
                                      disk_spec=DISKSIM_GENERIC,
                                      seed=total_streams)
            report = measure(
                topology, scale,
                specs_for=lambda node, rs=request_size, ts=total_streams:
                    spread_streams(ts, node.disk_ids, node.capacity_bytes,
                                   request_size=rs))
            series.add(format_size(request_size), report.throughput_mb)
    return result
