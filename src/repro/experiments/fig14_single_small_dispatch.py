"""Figure 14 — single-disk throughput with a small dispatch set.

``D = 1``, ``N = 128``, ``R = 512K``: one stream at a time issues a 64 MB
run. Compared with Figure 10 (all streams dispatched with big R), this
achieves comparable or slightly better throughput with far less memory —
lower buffer-management overhead, same seek amortisation.
"""

from __future__ import annotations

from repro.analysis import ExperimentResult
from repro.core import ServerParams
from repro.disk.specs import WD800JD
from repro.experiments.base import (
    QUICK,
    ExperimentScale,
    measure,
    server_wrapper,
)
from repro.experiments import fig10_readahead
from repro.node import base_topology
from repro.units import GiB, KiB, MiB
from repro.workload import uniform_streams

__all__ = ["run", "STREAM_COUNTS"]

STREAM_COUNTS = [10, 30, 60, 100]
REQUEST_SIZE = 64 * KiB
READ_AHEAD = 512 * KiB
RESIDENCY = 128


def run(scale: ExperimentScale = QUICK,
        include_fig10_baselines: bool = True) -> ExperimentResult:
    """Reproduce Figure 14: D=1/N=128 vs Figure 10's D=S curves."""
    result = ExperimentResult(
        experiment_id="fig14",
        title="Single-disk throughput with a small dispatch set",
        x_label="streams per disk",
        y_label="MBytes/s",
        notes=f"D = 1, N = {RESIDENCY}, R = 512K, M = staged*N*R")

    params = ServerParams(read_ahead=READ_AHEAD,
                          dispatch_width=1,
                          requests_per_residency=RESIDENCY,
                          memory_budget=1 * GiB)
    series = result.new_series(f"R = 512K, D = 1, N = {RESIDENCY}")
    for num_streams in STREAM_COUNTS:
        topology = base_topology(disk_spec=WD800JD, seed=num_streams)
        report = measure(
            topology, scale,
            specs_for=lambda node, ns=num_streams: uniform_streams(
                ns, node.disk_ids, node.capacity_bytes,
                request_size=REQUEST_SIZE),
            wrap_device=server_wrapper(params))
        series.add(num_streams, report.throughput_mb)

    if include_fig10_baselines:
        fig10 = fig10_readahead.run(scale)
        for read_ahead in (2 * MiB, 8 * MiB):
            label = next(l for l in fig10.labels
                         if l.startswith(f"R = {read_ahead // MiB}M"))
            baseline = result.new_series(
                f"R = {read_ahead // MiB}M, from Figure 10")
            for point in fig10.get(label).points:
                baseline.add(point.x, point.y)
    return result
