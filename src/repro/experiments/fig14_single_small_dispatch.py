"""Figure 14 — single-disk throughput with a small dispatch set.

``D = 1``, ``N = 128``, ``R = 512K``: one stream at a time issues a 64 MB
run. Compared with Figure 10 (all streams dispatched with big R), this
achieves comparable or slightly better throughput with far less memory —
lower buffer-management overhead, same seek amortisation.
"""

from __future__ import annotations

from repro.analysis import ExperimentResult
from repro.core import ServerParams
from repro.disk.specs import WD800JD
from repro.experiments.base import (
    QUICK,
    ExperimentScale,
    measure,
    server_wrapper,
)
from repro.experiments import fig10_readahead
from repro.experiments.executor import Point, SweepSpec, run_sweep
from repro.node import base_topology
from repro.units import GiB, KiB, MiB
from repro.workload import uniform_streams

__all__ = ["run", "sweep", "STREAM_COUNTS"]

STREAM_COUNTS = [10, 30, 60, 100]
REQUEST_SIZE = 64 * KiB
READ_AHEAD = 512 * KiB
RESIDENCY = 128


def _point(scale: ExperimentScale, params: dict) -> float:
    """Measure one stream count with D = 1, N = 128."""
    num_streams = params["streams"]
    server_params = ServerParams(read_ahead=READ_AHEAD,
                                 dispatch_width=1,
                                 requests_per_residency=RESIDENCY,
                                 memory_budget=1 * GiB)
    topology = base_topology(disk_spec=WD800JD, seed=num_streams)
    report = measure(
        topology, scale,
        specs_for=lambda node: uniform_streams(
            num_streams, node.disk_ids, node.capacity_bytes,
            request_size=REQUEST_SIZE),
        wrap_device=server_wrapper(server_params))
    return report.throughput_mb


def sweep(include_fig10_baselines: bool = True) -> SweepSpec:
    """Figure 14's sweep; Figure 10 baselines ride along as points.

    Baseline points call :func:`fig10_readahead._point` directly so
    their cache entries are shared with Figure 10 proper.
    """
    points = [
        Point(series=f"R = 512K, D = 1, N = {RESIDENCY}", x=num_streams,
              params={"streams": num_streams})
        for num_streams in STREAM_COUNTS
    ]
    if include_fig10_baselines:
        for read_ahead in (2 * MiB, 8 * MiB):
            points.extend(
                Point(series=f"R = {read_ahead // MiB}M, from Figure 10",
                      x=num_streams,
                      params={"read_ahead": read_ahead,
                              "streams": num_streams},
                      fn=fig10_readahead._point)
                for num_streams in fig10_readahead.STREAM_COUNTS)
    return SweepSpec(
        experiment_id="fig14",
        title="Single-disk throughput with a small dispatch set",
        x_label="streams per disk",
        y_label="MBytes/s",
        notes=f"D = 1, N = {RESIDENCY}, R = 512K, M = staged*N*R",
        point_fn=_point,
        points=tuple(points))


def run(scale: ExperimentScale = QUICK,
        include_fig10_baselines: bool = True, jobs: int | None = None,
        cache: bool = True) -> ExperimentResult:
    """Reproduce Figure 14: D=1/N=128 vs Figure 10's D=S curves."""
    return run_sweep(sweep(include_fig10_baselines), scale, jobs=jobs,
                     cache=cache)
