"""Figure 5 — xdd throughput on a single (real) disk.

The paper validates the Figure 4 simulation on a real disk with xdd over
direct I/O, streams spaced at 1 GByte intervals. The real disk's cache
segment size is fixed (unlike Figure 4's request-size-matched segments),
which is why small requests fare better here: the drive still prefetches
a full segment.

We run the same layout against the WD800JD model with its stock cache.
"""

from __future__ import annotations

from repro.analysis import ExperimentResult
from repro.disk.specs import WD800JD
from repro.experiments.base import QUICK, ExperimentScale, measure
from repro.experiments.executor import Point, SweepSpec, run_sweep
from repro.node import base_topology
from repro.units import GiB, KiB, format_size
from repro.workload import StreamSpec

__all__ = ["run", "sweep"]

REQUEST_SIZES = [8 * KiB, 16 * KiB, 64 * KiB, 128 * KiB, 256 * KiB]
STREAM_COUNTS = [1, 10, 30, 50]
SPACING = 1 * GiB  # the paper's "1 GByte intervals"


def _specs(num_streams, request_size):
    return [StreamSpec(stream_id=index, disk_id=0,
                       start_offset=index * SPACING,
                       request_size=request_size)
            for index in range(num_streams)]


def _point(scale: ExperimentScale, params: dict) -> float:
    """Measure one (streams, request size) cell of Figure 5."""
    topology = base_topology(disk_spec=WD800JD, seed=params["streams"])
    report = measure(
        topology, scale,
        specs_for=lambda node: _specs(params["streams"],
                                      params["request_size"]))
    return report.throughput_mb


def sweep() -> SweepSpec:
    """Figure 5 as a declarative sweep (four curves x five sizes)."""
    points = tuple(
        Point(series=f"{streams} streams", x=format_size(request_size),
              params={"streams": streams, "request_size": request_size})
        for streams in STREAM_COUNTS
        for request_size in REQUEST_SIZES)
    return SweepSpec(
        experiment_id="fig05",
        title="xdd throughput with a single disk (direct I/O)",
        x_label="request size",
        y_label="MBytes/s",
        notes="WD800JD stock cache; streams at 1 GB intervals",
        point_fn=_point,
        points=points)


def run(scale: ExperimentScale = QUICK, jobs: int | None = None,
        cache: bool = True) -> ExperimentResult:
    """Reproduce Figure 5's curves (direct I/O, fixed disk segments)."""
    return run_sweep(sweep(), scale, jobs=jobs, cache=cache)
