"""Figure 15 — average stream response time.

Mean client-side latency vs read-ahead size for S ∈ {1, 10, 100} and
memory M ∈ {8, 64, 256 MB} (D = M/(R·N), N = 1, 64 KB requests). The
paper's findings: response time is driven primarily by the number of
streams; at a fixed S, *larger* read-ahead improves the mean (most
requests then complete from memory).
"""

from __future__ import annotations

from repro.analysis import ExperimentResult
from repro.core import ServerParams
from repro.disk.specs import WD800JD
from repro.experiments.base import QUICK, ExperimentScale
from repro.experiments.executor import Point, SweepSpec, run_sweep
from repro.node import base_topology, build_node
from repro.sim import Simulator
from repro.units import KiB, MiB, format_size
from repro.workload import ClientFleet, uniform_streams

__all__ = ["run", "sweep", "MEMORY_SIZES", "READ_AHEADS", "STREAM_COUNTS"]

READ_AHEADS = [256 * KiB, 1 * MiB, 8 * MiB]
STREAM_COUNTS = [1, 10, 100]
MEMORY_SIZES = [8 * MiB, 64 * MiB, 256 * MiB]
REQUEST_SIZE = 64 * KiB


def _point(scale: ExperimentScale, params: dict) -> float:
    """Measure mean latency (ms) for one (S, M, R) cell of Figure 15."""
    from repro.core import StreamServer

    num_streams = params["streams"]
    sim = Simulator()
    node = build_node(sim, base_topology(disk_spec=WD800JD,
                                         seed=num_streams))
    server_params = ServerParams(read_ahead=params["read_ahead"],
                                 dispatch_width=None,
                                 requests_per_residency=1,
                                 memory_budget=params["memory"])
    server = StreamServer(sim, node, server_params)
    specs = uniform_streams(num_streams, node.disk_ids,
                            node.capacity_bytes,
                            request_size=REQUEST_SIZE)
    report = ClientFleet(sim, server, specs).run(
        duration=scale.duration, warmup=scale.warmup,
        settle_requests=5)
    return report.mean_latency * 1e3


def sweep() -> SweepSpec:
    """Figure 15 as a declarative sweep (S x M curves over read-ahead)."""
    points = []
    for num_streams in STREAM_COUNTS:
        for memory in MEMORY_SIZES:
            label = f"S = {num_streams} (M = {memory // MiB}MBytes)"
            for read_ahead in READ_AHEADS:
                if memory < read_ahead:
                    continue
                points.append(Point(
                    series=label, x=format_size(read_ahead),
                    params={"streams": num_streams,
                            "memory": memory,
                            "read_ahead": read_ahead}))
    series_order = tuple(
        f"S = {num_streams} (M = {memory // MiB}MBytes)"
        for num_streams in STREAM_COUNTS
        for memory in MEMORY_SIZES)
    return SweepSpec(
        experiment_id="fig15",
        title="Average stream response time",
        x_label="read-ahead",
        y_label="msec",
        notes="mean client-side latency; D = M/(R*N), N = 1",
        point_fn=_point,
        points=tuple(points),
        series_order=series_order)


def run(scale: ExperimentScale = QUICK, jobs: int | None = None,
        cache: bool = True) -> ExperimentResult:
    """Reproduce Figure 15's latency curves (ms, vs read-ahead)."""
    return run_sweep(sweep(), scale, jobs=jobs, cache=cache)
