"""Figure 12 — 8-disk setup with every stream dispatched (D = S).

The paper's medium configuration (2 controllers x 4 disks): with all
streams dispatched (``D = S``, ``M = D·R·N``, ``N = 1``), aggregate
throughput degrades as per-disk streams grow, staying far below the
~450 MB/s hardware ceiling regardless of read-ahead — many concurrent
large requests cost seeks and buffer management.
"""

from __future__ import annotations

from repro.analysis import ExperimentResult
from repro.core import ServerParams
from repro.disk.specs import WD800JD
from repro.experiments.base import (
    QUICK,
    ExperimentScale,
    measure,
    server_wrapper,
)
from repro.experiments.executor import Point, SweepSpec, run_sweep
from repro.node import medium_topology
from repro.units import KiB, MiB, format_size
from repro.workload import uniform_streams

__all__ = ["run", "sweep", "series_label", "READ_AHEADS", "STREAM_COUNTS"]

READ_AHEADS = [0, 512 * KiB, 1 * MiB, 2 * MiB]
STREAM_COUNTS = [10, 30, 60, 100]  # per disk; x8 total
REQUEST_SIZE = 64 * KiB
NUM_DISKS = 8


def _params(read_ahead: int, total_streams: int) -> ServerParams:
    if read_ahead == 0:
        return ServerParams(read_ahead=0, memory_budget=0)
    return ServerParams(read_ahead=read_ahead,
                        dispatch_width=total_streams,
                        requests_per_residency=1,
                        memory_budget=total_streams * read_ahead)


def series_label(read_ahead: int) -> str:
    """The figure's curve label for a given R (shared with Figure 13)."""
    return (f"R = {format_size(read_ahead)}" if read_ahead
            else "No read-ahead")


def _point(scale: ExperimentScale, params: dict) -> float:
    """Measure one (read-ahead, per-disk streams) cell of Figure 12."""
    per_disk = params["streams_per_disk"]
    total = per_disk * NUM_DISKS
    topology = medium_topology(disk_spec=WD800JD, seed=per_disk)
    report = measure(
        topology, scale,
        specs_for=lambda node: uniform_streams(
            per_disk, node.disk_ids, node.capacity_bytes,
            request_size=REQUEST_SIZE),
        wrap_device=server_wrapper(_params(params["read_ahead"], total)))
    return report.throughput_mb


def sweep() -> SweepSpec:
    """Figure 12 as a declarative sweep (four curves x four counts)."""
    points = tuple(
        Point(series=series_label(read_ahead), x=per_disk,
              params={"read_ahead": read_ahead,
                      "streams_per_disk": per_disk})
        for read_ahead in READ_AHEADS
        for per_disk in STREAM_COUNTS)
    return SweepSpec(
        experiment_id="fig12",
        title="Throughput for an 8-disk setup (D = S, M = D*R*N, N = 1)",
        x_label="streams per disk",
        y_label="MBytes/s",
        notes="2 controllers x 4 WD800JD",
        point_fn=_point,
        points=points)


def run(scale: ExperimentScale = QUICK, jobs: int | None = None,
        cache: bool = True) -> ExperimentResult:
    """Reproduce Figure 12's read-ahead curves on 8 disks."""
    return run_sweep(sweep(), scale, jobs=jobs, cache=cache)
