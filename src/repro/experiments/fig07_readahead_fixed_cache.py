"""Figure 7 — read-ahead under a fixed 8 MB disk cache.

The cache is re-organised as {128x64K, 64x128K, 32x256K, 16x512K, 8x1M}
(segments x segment size). Larger segments amortise seeks better *while
segments outnumber streams*; once streams exceed segments, prefetched
data is reclaimed before use and throughput collapses below the
no-prefetch level.
"""

from __future__ import annotations

from repro.analysis import ExperimentResult
from repro.disk.specs import DISKSIM_GENERIC
from repro.experiments.base import QUICK, ExperimentScale, measure
from repro.experiments.executor import Point, SweepSpec, run_sweep
from repro.node import base_topology
from repro.units import KiB, MiB, format_size
from repro.workload import uniform_streams

__all__ = ["run", "sweep", "CONFIGURATIONS"]

#: (num_segments, segment_size) keeping 8 MB total.
CONFIGURATIONS = [
    (128, 64 * KiB),
    (64, 128 * KiB),
    (32, 256 * KiB),
    (16, 512 * KiB),
    (8, 1 * MiB),
]
STREAM_COUNTS = [1, 10, 20, 30, 50, 100]
REQUEST_SIZE = 64 * KiB
CACHE_BYTES = 8 * MiB


def _point(scale: ExperimentScale, params: dict) -> float:
    """Measure one (streams, cache organisation) cell of Figure 7."""
    num_streams = params["streams"]
    spec = DISKSIM_GENERIC.with_cache(
        cache_bytes=CACHE_BYTES,
        cache_segments=params["num_segments"],
        read_ahead_bytes=None)
    topology = base_topology(disk_spec=spec, seed=num_streams)
    report = measure(
        topology, scale,
        specs_for=lambda node: uniform_streams(
            num_streams, node.disk_ids, node.capacity_bytes,
            request_size=REQUEST_SIZE))
    return report.throughput_mb


def sweep() -> SweepSpec:
    """Figure 7 as a declarative sweep (six curves x five organisations)."""
    points = tuple(
        Point(series=f"{streams} streams",
              x=f"{num_segments}x{format_size(segment_size)}",
              params={"streams": streams, "num_segments": num_segments})
        for streams in STREAM_COUNTS
        for num_segments, segment_size in CONFIGURATIONS)
    return SweepSpec(
        experiment_id="fig07",
        title="Effect of read-ahead on throughput (8 MB cache, "
              "#segments x segment size)",
        x_label="#segments x segment size",
        y_label="MBytes/s",
        notes="collapse expected once streams exceed segment count",
        point_fn=_point,
        points=points)


def run(scale: ExperimentScale = QUICK, jobs: int | None = None,
        cache: bool = True) -> ExperimentResult:
    """Reproduce Figure 7's six stream-count curves."""
    return run_sweep(sweep(), scale, jobs=jobs, cache=cache)
