"""Figure 13 — disassociating dispatching from staging (8 disks).

Keeping the dispatch set small (``D = #disks = 8``) while each dispatched
stream issues long runs (``N = 128`` requests of R = 512 KB) amortises
seeks over 64 MB per stream visit: the node reaches ~80% of its hardware
ceiling and — unlike Figure 12's ``D = S`` — barely degrades with stream
count. Staged (buffered) streams can outnumber dispatched ones; memory in
practice stays near ``D·R·N``.
"""

from __future__ import annotations

from repro.analysis import ExperimentResult
from repro.core import ServerParams
from repro.disk.specs import WD800JD
from repro.experiments.base import (
    QUICK,
    ExperimentScale,
    measure,
    server_wrapper,
)
from repro.experiments import fig12_multidisk
from repro.node import medium_topology
from repro.units import GiB, KiB, MiB
from repro.workload import uniform_streams

__all__ = ["run", "STREAM_COUNTS"]

STREAM_COUNTS = [10, 30, 60, 100]  # per disk
REQUEST_SIZE = 64 * KiB
READ_AHEAD = 512 * KiB
NUM_DISKS = 8
RESIDENCY = 128  # N


def run(scale: ExperimentScale = QUICK,
        include_fig12_baseline: bool = True) -> ExperimentResult:
    """Reproduce Figure 13: small-D curve vs the Figure 12 D=S curve."""
    result = ExperimentResult(
        experiment_id="fig13",
        title="Throughput when fewer streams are dispatched than staged "
              "(8-disk setup)",
        x_label="streams per disk",
        y_label="MBytes/s",
        notes=f"D = {NUM_DISKS} (#disks), N = {RESIDENCY}, R = 512K")

    params = ServerParams(read_ahead=READ_AHEAD,
                          dispatch_width=NUM_DISKS,
                          requests_per_residency=RESIDENCY,
                          memory_budget=2 * GiB)
    series = result.new_series(
        f"R = 512K, D = #disks, N = {RESIDENCY}")
    for per_disk in STREAM_COUNTS:
        topology = medium_topology(disk_spec=WD800JD, seed=per_disk)
        report = measure(
            topology, scale,
            specs_for=lambda node, ns=per_disk: uniform_streams(
                ns, node.disk_ids, node.capacity_bytes,
                request_size=REQUEST_SIZE),
            wrap_device=server_wrapper(params))
        series.add(per_disk, report.throughput_mb)

    if include_fig12_baseline:
        baseline = result.new_series("R = 512K, from Figure 12 (D = S)")
        fig12 = fig12_multidisk.run(scale)
        for point in fig12.get("R = 512K").points:
            baseline.add(point.x, point.y)
    return result
