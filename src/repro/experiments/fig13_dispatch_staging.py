"""Figure 13 — disassociating dispatching from staging (8 disks).

Keeping the dispatch set small (``D = #disks = 8``) while each dispatched
stream issues long runs (``N = 128`` requests of R = 512 KB) amortises
seeks over 64 MB per stream visit: the node reaches ~80% of its hardware
ceiling and — unlike Figure 12's ``D = S`` — barely degrades with stream
count. Staged (buffered) streams can outnumber dispatched ones; memory in
practice stays near ``D·R·N``.
"""

from __future__ import annotations

from repro.analysis import ExperimentResult
from repro.core import ServerParams
from repro.disk.specs import WD800JD
from repro.experiments.base import (
    QUICK,
    ExperimentScale,
    measure,
    server_wrapper,
)
from repro.experiments import fig12_multidisk
from repro.experiments.executor import Point, SweepSpec, run_sweep
from repro.node import medium_topology
from repro.units import GiB, KiB
from repro.workload import uniform_streams

__all__ = ["run", "sweep", "STREAM_COUNTS"]

STREAM_COUNTS = [10, 30, 60, 100]  # per disk
REQUEST_SIZE = 64 * KiB
READ_AHEAD = 512 * KiB
NUM_DISKS = 8
RESIDENCY = 128  # N


def _point(scale: ExperimentScale, params: dict) -> float:
    """Measure one per-disk stream count with D = #disks, N = 128."""
    per_disk = params["streams_per_disk"]
    server_params = ServerParams(read_ahead=READ_AHEAD,
                                 dispatch_width=NUM_DISKS,
                                 requests_per_residency=RESIDENCY,
                                 memory_budget=2 * GiB)
    topology = medium_topology(disk_spec=WD800JD, seed=per_disk)
    report = measure(
        topology, scale,
        specs_for=lambda node: uniform_streams(
            per_disk, node.disk_ids, node.capacity_bytes,
            request_size=REQUEST_SIZE),
        wrap_device=server_wrapper(server_params))
    return report.throughput_mb


def sweep(include_fig12_baseline: bool = True) -> SweepSpec:
    """Figure 13's sweep; the Figure 12 baseline rides along as points.

    The baseline reuses :func:`fig12_multidisk._point` via a tiny
    trampoline, so its cache entries are shared with Figure 12 proper
    and the pool parallelises the baseline alongside the main curve.
    """
    points = [
        Point(series=f"R = 512K, D = #disks, N = {RESIDENCY}", x=per_disk,
              params={"streams_per_disk": per_disk})
        for per_disk in STREAM_COUNTS
    ]
    if include_fig12_baseline:
        points.extend(
            Point(series="R = 512K, from Figure 12 (D = S)", x=per_disk,
                  params={"read_ahead": READ_AHEAD,
                          "streams_per_disk": per_disk},
                  fn=fig12_multidisk._point)
            for per_disk in fig12_multidisk.STREAM_COUNTS)
    return SweepSpec(
        experiment_id="fig13",
        title="Throughput when fewer streams are dispatched than staged "
              "(8-disk setup)",
        x_label="streams per disk",
        y_label="MBytes/s",
        notes=f"D = {NUM_DISKS} (#disks), N = {RESIDENCY}, R = 512K",
        point_fn=_point,
        points=tuple(points))


def run(scale: ExperimentScale = QUICK,
        include_fig12_baseline: bool = True, jobs: int | None = None,
        cache: bool = True) -> ExperimentResult:
    """Reproduce Figure 13: small-D curve vs the Figure 12 D=S curve."""
    return run_sweep(sweep(include_fig12_baseline), scale, jobs=jobs,
                     cache=cache)
