"""Extension experiment — chaos: throughput/latency under injected faults.

Not a paper figure, but the paper's configuration exercised the way a
production deployment would be: the small-dispatch stream server
(D=1, N=128 — the insensitivity chart's ``server-small-d`` system at 10
streams) runs over a :class:`~repro.faults.FaultyDevice` that injects

* probabilistic transient per-request failures at increasing rates
  (the server retries with bounded exponential backoff, clients skip
  what the server gives up on), and
* straggler latency inflation (one disk running at 1/k fleet speed
  without failing outright).

The fault-free baseline point *is* the existing figure pipeline's
point: it embeds :func:`repro.experiments.ext_insensitivity._point`
via ``Point(fn=...)``, so its value (and cache entry) is bit-identical
to the insensitivity chart's ``server-small-d`` @ 10-streams cell.

The x axis is overloaded per series family, as the notes record:
*fault-rate* series plot against injection probability in percent;
*straggler* series plot against the slowdown factor.
"""

from __future__ import annotations

from repro.analysis import ExperimentResult
from repro.core import ServerParams, StreamServer
from repro.disk.specs import WD800JD
from repro.experiments.base import QUICK, ExperimentScale, measure
from repro.experiments.executor import Point, SweepSpec, run_sweep
from repro.experiments import ext_insensitivity
from repro.faults import FaultPlan, FaultyDevice, RandomFaults, \
    StragglerProfile
from repro.node import base_topology
from repro.units import GiB, KiB
from repro.workload import uniform_streams

__all__ = ["run", "sweep", "FAULT_RATES", "NUM_STREAMS", "SLOWDOWNS"]

#: Streams in every cell (matches the baseline's insensitivity cell).
NUM_STREAMS = 10
REQUEST_SIZE = 64 * KiB
#: Per-request transient failure probabilities, in percent.
FAULT_RATES = [0.5, 1.0, 2.0, 5.0]
#: Straggler service-time inflation factors.
SLOWDOWNS = [2.0, 4.0, 8.0]
#: Seed of every point's fault schedule (hash-anchored, so the same
#: requests fail run-to-run regardless of evaluation order).
FAULT_SEED = 42


def _server_params() -> ServerParams:
    """server-small-d plus the retry/quarantine policies under test."""
    return ServerParams(read_ahead=512 * KiB, dispatch_width=1,
                        requests_per_residency=128,
                        memory_budget=1 * GiB,
                        max_retries=3,
                        quarantine_threshold=5)


def _measure_with_plan(scale: ExperimentScale, plan: FaultPlan):
    """Run the small-dispatch server over a faulty node; full report."""
    topology = base_topology(disk_spec=WD800JD, seed=NUM_STREAMS)
    params = _server_params()

    def wrap(sim, node):
        faulty = FaultyDevice(sim, node, plan)
        return StreamServer(sim, faulty, params)

    return measure(
        topology, scale,
        specs_for=lambda node: uniform_streams(
            NUM_STREAMS, node.disk_ids, node.capacity_bytes,
            request_size=REQUEST_SIZE),
        wrap_device=wrap,
        tolerate_errors=True)


def _point(scale: ExperimentScale, params: dict) -> dict:
    """Measure one chaos cell; returns per-series throughput + p99."""
    mode = params["mode"]
    if mode == "faults":
        plan = FaultPlan(seed=FAULT_SEED, random_faults=(
            RandomFaults(probability=params["rate"]),))
        label = "faults"
    elif mode == "straggler":
        plan = FaultPlan(seed=FAULT_SEED, stragglers=(
            StragglerProfile(slowdown=params["slowdown"]),))
        label = "straggler"
    else:
        raise ValueError(f"unknown chaos mode {mode!r}")
    report = _measure_with_plan(scale, plan)
    return {
        f"{label} MB/s": report.throughput_mb,
        f"{label} p99 ms": report.p99_latency * 1e3,
    }


def sweep() -> SweepSpec:
    """Fault-rate and straggler series plus the embedded baseline."""
    points = [
        # Fault-free baseline: literally the insensitivity chart's
        # server-small-d cell (shared point fn => shared cache entry).
        Point(series="fault-free MB/s", x=0.0,
              params={"system": "server-small-d", "streams": NUM_STREAMS},
              fn=ext_insensitivity._point),
    ]
    points += [
        Point(series="faults", x=rate,
              params={"mode": "faults", "rate": rate / 100.0})
        for rate in FAULT_RATES
    ]
    points += [
        Point(series="straggler", x=slowdown,
              params={"mode": "straggler", "slowdown": slowdown})
        for slowdown in SLOWDOWNS
    ]
    return SweepSpec(
        experiment_id="ext-faults",
        title="Chaos: stream server under fault injection (D=1 N=128, "
              f"{NUM_STREAMS} streams)",
        x_label="fault rate % (faults) / slowdown x (straggler)",
        y_label="MBytes/s | p99 ms",
        notes="extension: retry/backoff + quarantine policies under "
              "seeded probabilistic faults and straggler inflation; "
              "x=0 point embeds ext-insensitivity's server-small-d cell",
        point_fn=_point,
        series_order=("fault-free MB/s", "faults MB/s", "faults p99 ms",
                      "straggler MB/s", "straggler p99 ms"),
        points=tuple(points))


def run(scale: ExperimentScale = QUICK, jobs: int | None = None,
        cache: bool = True) -> ExperimentResult:
    """Chaos experiment: faulted/straggled server vs fault-free baseline."""
    return run_sweep(sweep(), scale, jobs=jobs, cache=cache)
