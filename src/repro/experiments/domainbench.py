"""Domain-layer micro-workloads: the per-request hot path's ops/sec.

PR 1's kernel fast paths left figure-sweep wall time dominated by the
*domain* layer — geometry zone lookups, segmented-cache coverage scans,
and the drive's service loop run once (or more) per simulated request,
millions of times per sweep. These workloads time exactly those paths so
``python -m repro.experiments.bench`` can record them in
``BENCH_engine.json`` alongside the kernel tier:

* ``geometry_lookup`` — LBA → zone/cylinder mapping, sequential-heavy
  with periodic long jumps (the streaming access pattern the last-zone
  cache is built for).
* ``cache_churn`` — :class:`~repro.disk.cache.SegmentedCache` under more
  streams than segments: lookup/allocate/fill/invalidate thrash, the
  Figures 4–8 mechanism.
* ``drive_service`` — full :class:`~repro.disk.drive.DiskDrive` service
  loop (queue policy, positioning, cache, completion) under interleaved
  sequential readers.
* ``server_smoke`` — end-to-end :class:`~repro.core.server.StreamServer`
  over a drive with default D/N/R parameters: classifier, dispatch set,
  buffered set and device all on the request path.
* ``obs_overhead`` — the same end-to-end path with :mod:`repro.obs`
  off, pinning the zero-overhead-off guarantee of PR 5's dormant
  instrumentation hooks.
* ``streams_scale_100`` / ``streams_scale_1k`` / ``streams_scale_10k``
  — the server data plane over a zero-cost device at growing resident
  stream counts. Same per-stream work at every size, so if the hot
  paths are O(1)/O(log n) in the stream population (DESIGN.md
  "data-plane indexes") the three rates stay flat; ``bench --check``
  additionally enforces the flatness relation itself via
  :data:`repro.experiments.bench.FLATNESS_GATES`.
* ``hedge_overhead`` — the ``server_smoke`` path routed through a
  policies-off :class:`~repro.node.HedgedVolume`: hedging and EWMA
  selection disabled, so the recorded rate prices the resilience
  layer's dormant guards (one cached boolean per request) against the
  bare-volume baseline (DESIGN.md §9's zero-overhead-off guarantee).
* ``sketch_ingest`` — the observability plane's percentile engine:
  per-worker :class:`~repro.obs.sketch.QuantileSketch` ingest, the
  coordinator's merge reduce, and the SLO quantile reads (DESIGN.md
  §10), over a deterministic heavy-tailed sample stream.

A second, *slow* tier (``DRIVE_WORKLOADS``, nightly only via ``bench
--slow``) repeats the streams-scale flatness experiment over **real**
:class:`~repro.disk.drive.DiskDrive` instances — full queueing,
geometry and cache mechanics on every fetch — instead of the zero-cost
stub, so a stream-count-dependent cost hiding in the drive-facing path
(rather than the server indexes) cannot slip past the stub tier.

Every workload is deterministic (seeded or EXPECTED-rotation) and
returns the number of domain operations it performed, so callers convert
wall time into ops/sec exactly like the kernel tier converts into
events/sec. ``benchmarks/test_domain_micro.py`` wraps the same callables
in pytest-benchmark for local statistics.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

from repro.sim.microbench import events_per_second as ops_per_second

__all__ = [
    "DOMAIN_TOLERANCES",
    "DOMAIN_WORKLOADS",
    "DRIVE_TOLERANCES",
    "DRIVE_WORKLOADS",
    "cache_churn",
    "drive_service",
    "geometry_lookup",
    "hedge_overhead",
    "obs_overhead",
    "ops_per_second",
    "server_smoke",
    "sketch_ingest",
    "streams_scale",
    "streams_scale_drive",
]


def geometry_lookup(n: int = 200_000) -> int:
    """``n`` LBA → cylinder/zone mappings, sequential with long jumps.

    Models the drive's positioning path: runs of consecutive lookups
    inside one zone (a stream transferring sequentially) punctuated by a
    jump to a different disk region every 64 lookups (a seek to another
    stream). Returns the number of lookups performed.
    """
    from repro.disk.geometry import DiskGeometry

    geometry = DiskGeometry.from_capacity(80 * 10**9)
    total = geometry.total_sectors
    stride = 128                      # one 64 KiB request
    jump = (total // 7) | 1           # co-prime-ish long jump
    lba = 0
    cylinder_of_lba = geometry.cylinder_of_lba
    sectors_per_track_at = geometry.sectors_per_track_at
    checksum = 0
    for index in range(n):
        checksum += cylinder_of_lba(lba)
        checksum += sectors_per_track_at(lba)
        if index % 64 == 63:
            lba = (lba + jump) % (total - stride)
        else:
            lba = (lba + stride) % (total - stride)
    assert checksum > 0
    return n


def cache_churn(n: int = 40_000) -> int:
    """``n`` requests of segmented-cache traffic with streams > segments.

    320 sequential streams over a 256-segment cache of 32 KiB segments
    (the small-segment end of the Figure 6 sweep, where index costs
    peak): every request pays two ``lookup``\\ s — submit-time and
    service-time, as the drive does — and misses ``allocate`` + demand
    ``fill`` + prefetch ``fill``. Every 16th request also ``peek``\\ s and
    every 256th ``invalidate``\\ s a region (a write landing mid-stream).
    This is the thrashing regime of Figures 4–8 where the
    O(live-segments) index operations used to dominate. Returns ``n``.
    """
    from repro.disk.cache import SegmentedCache

    cache = SegmentedCache(num_segments=256, segment_sectors=64)
    streams = 320
    request = 64                      # sectors per lookup (32 KiB)
    positions = [i * 1_000_000 for i in range(streams)]
    for round_number in range(n):
        stream = round_number % streams
        position = positions[stream]
        if (cache.lookup(position, request) < request
                and cache.lookup(position, request) < request):
            segment = cache.allocate(position)
            cache.fill(segment, request)
            spare = cache.space_left(segment)
            if spare:
                cache.fill(segment, spare, prefetch=True)
        positions[stream] = position + request
        if round_number % 16 == 15:
            cache.peek(position, request)
        if round_number % 256 == 255:
            cache.invalidate(position - 4 * request, 2 * request)
    return n


def drive_service(n: int = 3_000) -> int:
    """``n`` requests through a full drive: queue → mechanics → cache.

    Eight interleaved sequential readers (64 KiB, one outstanding each)
    against the DiskSim base drive with deterministic EXPECTED rotation —
    each request exercises the policy select, cylinder mapping, cache
    lookup/fill and completion paths. Returns ``n``.
    """
    from repro.disk.drive import DiskDrive, DriveConfig
    from repro.disk.mechanics import RotationMode
    from repro.disk.specs import DISKSIM_GENERIC
    from repro.io import IOKind, IORequest
    from repro.sim import Simulator
    from repro.units import KiB

    sim = Simulator()
    drive = DiskDrive(sim, DISKSIM_GENERIC,
                      DriveConfig(rotation_mode=RotationMode.EXPECTED))
    streams = 8
    size = 64 * KiB
    per_stream = n // streams
    spacing = drive.capacity_bytes // streams
    spacing -= spacing % size

    def reader(sim, stream_id):
        offset = stream_id * spacing
        for _ in range(per_stream):
            request = IORequest(kind=IOKind.READ, disk_id=0,
                                offset=offset, size=size,
                                stream_id=stream_id)
            yield drive.submit(request)
            offset += size

    for stream_id in range(streams):
        sim.process(reader(sim, stream_id))
    sim.run()
    completed = streams * per_stream
    assert drive.stats.counter("completed").count == completed
    return completed


def server_smoke(streams: int = 12, duration: float = 0.5) -> int:
    """End-to-end StreamServer (default D/N/R) over one drive.

    ``streams`` sequential 64 KiB readers for ``duration`` simulated
    seconds: the classifier detects each stream, the dispatch set
    rotates them, read-ahead stages into the buffered set, and the drive
    underneath services the coalesced fetches. Returns the number of
    client requests completed (deterministic for a fixed configuration).
    """
    from repro.core.params import ServerParams
    from repro.core.server import StreamServer
    from repro.disk.drive import DiskDrive, DriveConfig
    from repro.disk.mechanics import RotationMode
    from repro.disk.specs import DISKSIM_GENERIC
    from repro.sim import Simulator
    from repro.units import KiB
    from repro.workload import ClientFleet, StreamSpec

    sim = Simulator()
    drive = DiskDrive(sim, DISKSIM_GENERIC,
                      DriveConfig(rotation_mode=RotationMode.EXPECTED))
    server = StreamServer(sim, drive, ServerParams())
    size = 64 * KiB
    spacing = drive.capacity_bytes // streams
    spacing -= spacing % size
    specs = [StreamSpec(stream_id=i, disk_id=0, start_offset=i * spacing,
                        request_size=size) for i in range(streams)]
    fleet = ClientFleet(sim, server, specs)
    report = fleet.run(duration=duration)
    completed = server.stats.counter("completed").count
    assert report.total_bytes > 0
    return completed


def obs_overhead(streams: int = 12, duration: float = 0.5) -> int:
    """``server_smoke`` with observability *off* — the zero-overhead gate.

    Identical work to :func:`server_smoke`, but asserts the ambient
    :mod:`repro.obs` context is the off sentinel first: the recorded
    ops/sec therefore prices the dormant instrumentation (one cached
    boolean per hook site) against the ``server_smoke`` baseline from
    before the hooks existed. A regression here means a hook leaked out
    of its ``if self._obs_on`` guard onto the default path.
    """
    from repro import obs

    assert not obs.current().enabled, \
        "obs_overhead must run with observability off"
    return server_smoke(streams=streams, duration=duration)


def hedge_overhead(streams: int = 12, duration: float = 0.5) -> int:
    """``server_smoke`` through a policies-off HedgedVolume.

    Identical fleet and drive to :func:`server_smoke`, but every
    request crosses :class:`~repro.node.HedgedVolume` with hedging and
    EWMA selection disabled — the exact configuration DESIGN.md §9
    guarantees is bit-identical to the bare volume. The recorded
    ops/sec therefore prices the resilience layer's dormant guards;
    a regression against the ``server_smoke`` baseline means work
    leaked out of the ``if self._hedging`` fast-path checks.
    """
    from repro.core.params import ServerParams
    from repro.core.server import StreamServer
    from repro.node import HedgedVolume, HedgePolicy, base_topology, \
        build_node
    from repro.sim import Simulator
    from repro.units import KiB
    from repro.workload import ClientFleet, StreamSpec

    sim = Simulator()
    node = build_node(sim, base_topology())
    volume = HedgedVolume(sim, node, list(node.disk_ids),
                          policy=HedgePolicy(select="roundrobin",
                                             hedge=False))
    server = StreamServer(sim, volume, ServerParams())
    size = 64 * KiB
    spacing = volume.capacity_bytes // streams
    spacing -= spacing % size
    specs = [StreamSpec(stream_id=i, disk_id=0, start_offset=i * spacing,
                        request_size=size) for i in range(streams)]
    fleet = ClientFleet(sim, server, specs)
    report = fleet.run(duration=duration)
    completed = server.stats.counter("completed").count
    assert report.total_bytes > 0
    return completed


def sketch_ingest(samples: int = 120_000, shards: int = 8) -> int:
    """Quantile-sketch hot path: ingest, merge, read (DESIGN.md §10).

    Feeds a deterministic heavy-tailed latency-like stream (a seeded
    LCG driving an exponential-ish transform, no ``random`` module
    state) across ``shards`` per-worker sketches, merges them into one
    fleet aggregate — the coordinator's reduce step — and reads the SLO
    quantiles. One op per ingested sample; the merge/read tail is fixed
    cost, so the recorded rate prices ``QuantileSketch.add`` the way
    ``ext-fleet`` and the SLO engine exercise it.
    """
    from repro.obs.sketch import QuantileSketch

    sketches = [QuantileSketch() for _ in range(shards)]
    state = 0x2545F4914F6CDD1D
    scale = 1.0 / 2 ** 63
    for index in range(samples):
        # xorshift64*: cheap, seeded, full-period — the value stream is
        # identical on every run and every platform.
        state ^= (state >> 12) & 0xFFFFFFFFFFFFFFFF
        state = (state ^ (state << 25)) & 0xFFFFFFFFFFFFFFFF
        state ^= state >> 27
        uniform = ((state * 0x2545F4914F6CDD1D) & 0xFFFFFFFFFFFFFFFF) >> 1
        # ~exponential via inverse CDF, latencies in the 1e-4..1 s band.
        value = 1e-4 - 2e-2 * math.log(1.0 - uniform * scale)
        sketches[index % shards].add(value)
    fleet = QuantileSketch()
    for shard in sketches:
        fleet.merge(shard)
    assert fleet.count == samples
    for q in (0.5, 0.99, 0.999):
        assert fleet.quantile(q) > 0.0
    return samples


def streams_scale(streams: int, per_stream: int = 16) -> int:
    """Server data plane with ``streams`` concurrent sequential readers.

    Every reader issues ``per_stream`` 64 KiB requests against a
    :class:`~repro.core.server.StreamServer` whose device completes any
    request after a fixed 200 µs — no geometry, no cache, no mechanics —
    so wall time is dominated by the server's own per-request work:
    classifier routing, dispatch-set admission, read-ahead staging and
    buffered-set lookups. Per-stream work is identical at every size;
    only the *resident population* grows (every classifier table,
    waiting set and buffer index holds ``streams`` entries at once), so
    the measured ops/sec directly exposes any O(streams) term left in a
    hot path. The indexed data plane keeps the 100 → 10k rates near
    flat, and ``bench --check`` fails if the 10k rate falls below half
    the 100-stream rate (:data:`repro.experiments.bench.FLATNESS_GATES`).

    Returns the number of client requests completed
    (``streams * per_stream``, asserted).
    """
    from repro.core.params import ServerParams
    from repro.core.server import StreamServer
    from repro.io import IOKind, IORequest
    from repro.sim import Simulator
    from repro.units import GiB, KiB, MiB

    size = 64 * KiB
    num_disks = 8
    latency = 200e-6

    sim = Simulator()

    class _FixedLatencyDisks:
        """Completes every request after ``latency``; per-disk 1 TiB."""

        capacity_bytes = 1024 * GiB

        def submit(self, request):
            request.complete_time = sim.now + latency
            return sim.event("stub.io").succeed(request, delay=latency)

    server = StreamServer(sim, _FixedLatencyDisks(),
                          ServerParams(memory_budget=64 * MiB))
    per_disk = -(-streams // num_disks)  # ceil
    spacing = (1024 * GiB // per_disk) // MiB * MiB \
        - (per_stream + 1) * size

    def client(disk_id, start, stream_id):
        offset = start
        for _ in range(per_stream):
            yield server.submit(IORequest(
                kind=IOKind.READ, disk_id=disk_id, offset=offset,
                size=size, stream_id=stream_id))
            offset += size

    processes = [
        sim.process(client(index % num_disks,
                           (index // num_disks) * spacing, index))
        for index in range(streams)]
    sim.run_until_event(sim.all_of(processes))
    completed = server.stats.counter("completed").count
    assert completed == streams * per_stream
    return completed


def streams_scale_100() -> int:
    """100 resident streams — the flat-cost baseline point."""
    return streams_scale(100)


def streams_scale_1k() -> int:
    """1,000 resident streams — the mid point."""
    return streams_scale(1_000)


def streams_scale_10k() -> int:
    """10,000 resident streams — the fleet-scale point."""
    return streams_scale(10_000)


def streams_scale_drive(streams: int, per_stream: int = 4) -> int:
    """Server data plane at scale over **real** drives (slow tier).

    The same growing-population shape as :func:`streams_scale`, but the
    device is eight full :class:`~repro.disk.drive.DiskDrive` instances
    (DiskSim base spec, deterministic EXPECTED rotation) behind a
    per-``disk_id`` router — every fetch pays queue policy, cylinder
    mapping, cache lookup and completion, exactly like production
    topologies. Per-stream work is constant, so the 100 → 10k rates
    expose any O(streams) term in the *drive-facing* path that the
    zero-cost-stub tier cannot see. Nightly only (``bench --slow``):
    the 10k point builds tens of thousands of real drive requests.

    Returns the number of client requests completed
    (``streams * per_stream``, asserted).
    """
    from repro.core.params import ServerParams
    from repro.core.server import StreamServer
    from repro.disk.drive import DiskDrive, DriveConfig
    from repro.disk.mechanics import RotationMode
    from repro.disk.specs import DISKSIM_GENERIC
    from repro.io import IOKind, IORequest
    from repro.sim import Simulator
    from repro.units import KiB, MiB

    size = 64 * KiB
    num_disks = 8

    sim = Simulator()
    drives = [DiskDrive(sim, DISKSIM_GENERIC,
                        DriveConfig(rotation_mode=RotationMode.EXPECTED))
              for _ in range(num_disks)]

    class _DriveArray:
        """Route ``request.disk_id`` to its drive; per-disk capacity."""

        capacity_bytes = drives[0].capacity_bytes
        disk_ids = list(range(num_disks))

        def submit(self, request):
            return drives[request.disk_id].submit(request)

    server = StreamServer(sim, _DriveArray(),
                          ServerParams(memory_budget=64 * MiB))
    per_disk = -(-streams // num_disks)  # ceil
    spacing = (drives[0].capacity_bytes // per_disk) // MiB * MiB \
        - (per_stream + 1) * size

    def client(disk_id, start, stream_id):
        offset = start
        for _ in range(per_stream):
            yield server.submit(IORequest(
                kind=IOKind.READ, disk_id=disk_id, offset=offset,
                size=size, stream_id=stream_id))
            offset += size

    processes = [
        sim.process(client(index % num_disks,
                           (index // num_disks) * spacing, index))
        for index in range(streams)]
    sim.run_until_event(sim.all_of(processes))
    completed = server.stats.counter("completed").count
    assert completed == streams * per_stream
    return completed


def streams_scale_drive_100() -> int:
    """100 streams over real drives — the slow-tier baseline point."""
    return streams_scale_drive(100)


def streams_scale_drive_1k() -> int:
    """1,000 streams over real drives — the slow-tier mid point."""
    return streams_scale_drive(1_000)


def streams_scale_drive_10k() -> int:
    """10,000 streams over real drives — the slow-tier scale point."""
    return streams_scale_drive(10_000)


#: name -> zero-argument workload returning its domain-op count.
DOMAIN_WORKLOADS: Dict[str, Callable[[], int]] = {
    "geometry_lookup": geometry_lookup,
    "cache_churn": cache_churn,
    "drive_service": drive_service,
    "server_smoke": server_smoke,
    "obs_overhead": obs_overhead,
    "hedge_overhead": hedge_overhead,
    "sketch_ingest": sketch_ingest,
    "streams_scale_100": streams_scale_100,
    "streams_scale_1k": streams_scale_1k,
    "streams_scale_10k": streams_scale_10k,
}

#: Slow tier: real-drive scale workloads, measured only by
#: ``bench --slow`` (the nightly lane) and recorded under ``"drive"``.
DRIVE_WORKLOADS: Dict[str, Callable[[], int]] = {
    "streams_scale_drive_100": streams_scale_drive_100,
    "streams_scale_drive_1k": streams_scale_drive_1k,
    "streams_scale_drive_10k": streams_scale_drive_10k,
}

#: ``bench --check --slow`` tolerances for the drive tier: the 10k
#: point allocates tens of thousands of live requests, so wall time
#: swings with allocator/GC state like the other scale workloads.
DRIVE_TOLERANCES: Dict[str, float] = {
    "streams_scale_drive_100": 0.35,
    "streams_scale_drive_1k": 0.35,
    "streams_scale_drive_10k": 0.35,
}

#: Per-workload ``bench --check`` tolerance overrides recorded into each
#: baseline entry. The streams_scale family builds 10k-process runs whose
#: wall time swings more with allocator/GC state than the small steady
#: workloads, so it carries the same loosened band as the kernel A/B tier.
DOMAIN_TOLERANCES: Dict[str, float] = {
    # Pure-Python ingest loop: the rate swings with allocator/GC state
    # like the scale family, so it carries the same loosened band.
    "sketch_ingest": 0.35,
    "streams_scale_100": 0.35,
    "streams_scale_1k": 0.35,
    "streams_scale_10k": 0.35,
}
