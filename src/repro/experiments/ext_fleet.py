"""Extension experiment — fleet-scale tail latency (ROADMAP item 2).

The paper evaluates at most a few hundred concurrent streams; this
extension pushes the same server to production shape: thousands of
sequential streams spread over a 60-drive fleet, with the dispatch set
acting as the admission edge (at most D streams generate disk traffic;
the rest wait their turn and are served from staged memory). Each point
runs traced and reports aggregate throughput plus client-side
p50/p99/p999 response times derived from ``repro.obs`` client root
spans — the tail-latency SLO view the paper's mean-throughput figures
cannot show.

The span recorder runs with a reserved ``client`` quota
(:class:`repro.obs.SpanRecorder`): at 10k streams a FULL run records
hundreds of thousands of requests, and the quota keeps every client
root (the percentile inputs) while high-volume server/disk phase spans
are the ones shed at capacity.

Only tractable because the server data plane is index-accelerated
(DESIGN.md "data-plane indexes"): with the reference linear scans,
per-event cost grew with the stream count and a 10k-stream simulation
was dominated by bookkeeping loops instead of the modeled disks (the
``streams_scale`` bench workloads record the flat-cost guarantee).

Percentiles come from a :class:`repro.obs.sketch.QuantileSketch`
(DESIGN.md §10) rather than a sorted raw list: bounded memory at any
request count, and every reported quantile is within
``PERCENTILE_ACCURACY`` relative error of the exact value (pinned by
``tests/test_obs_sketch.py``). ``SLO_SMOKE`` publishes the figure's
shape claims as a machine-checkable spec for
``python -m repro.obs.report slo``.
"""

from __future__ import annotations

from repro import obs
from repro.analysis import ExperimentResult
from repro.core import ServerParams, StreamServer
from repro.disk.specs import WD800JD
from repro.experiments.base import QUICK, ExperimentScale, spread_streams
from repro.experiments.executor import Point, SweepSpec, run_sweep
from repro.node import build_node, large_topology
from repro.obs.sketch import QuantileSketch
from repro.sim import Simulator
from repro.units import KiB, MiB
from repro.workload import ClientFleet

__all__ = ["run", "sweep", "NUM_DISKS", "SLO_SMOKE", "STREAM_COUNTS"]

STREAM_COUNTS = [1000, 4000, 10000]
NUM_DISKS = 60
REQUEST_SIZE = 64 * KiB
READ_AHEAD = 1 * MiB
REQUESTS_PER_RESIDENCY = 4

SERIES_THROUGHPUT = "throughput (MB/s)"
SERIES_P50 = "p50 (ms)"
SERIES_P99 = "p99 (ms)"
SERIES_P999 = "p999 (ms)"
#: Client root spans kept per point; disk-phase spans shed beyond the
#: shared pool. FULL at 10k streams is the sizing case: ~400k requests.
SPAN_CAPACITY = 1_000_000
CLIENT_SPAN_RESERVE = 600_000
#: Guaranteed relative error of the reported percentiles (sketch alpha).
PERCENTILE_ACCURACY = 0.01

#: Machine-checkable gate for a SMOKE-scale run of this figure
#: (``python -m repro.obs.report slo --spec
#: repro.experiments.ext_fleet:SLO_SMOKE --runner-json ... --figure
#: ext-fleet``). Bounds are deliberately loose shape claims — the fleet
#: keeps moving data and the p999 tail stays earthbound even at 10k
#: streams — not regression pins.
SLO_SMOKE = {
    "name": "ext-fleet-smoke",
    "objectives": [
        {"name": "throughput floor", "kind": "series_min",
         "series": SERIES_THROUGHPUT, "min": 1.0},
        {"name": "p99 ceiling at 1k streams", "kind": "series_max",
         "series": SERIES_P99, "max": 2000.0, "x": "1000"},
        {"name": "p999 ceiling", "kind": "series_max",
         "series": SERIES_P999, "max": 60000.0},
    ],
}


def _point(scale: ExperimentScale, params: dict) -> dict:
    """One stream-count cell → throughput + tail-latency series."""
    num_streams = params["streams"]
    with obs.activated(obs.ObsContext(
            span_capacity=SPAN_CAPACITY,
            span_reserved={"client": CLIENT_SPAN_RESERVE})) as context:
        sim = Simulator()
        node = build_node(sim, large_topology(NUM_DISKS,
                                              disk_spec=WD800JD,
                                              seed=num_streams))
        server_params = ServerParams(
            read_ahead=READ_AHEAD,
            dispatch_width=NUM_DISKS,
            requests_per_residency=REQUESTS_PER_RESIDENCY,
            memory_budget=2 * NUM_DISKS * READ_AHEAD
            * REQUESTS_PER_RESIDENCY)
        server = StreamServer(sim, node, server_params)
        specs = spread_streams(num_streams, node.disk_ids,
                               node.capacity_bytes,
                               request_size=REQUEST_SIZE)
        fleet = ClientFleet(sim, server, specs)
        report = fleet.run(duration=scale.duration, warmup=scale.warmup,
                           settle_requests=2)
    boundary = sim.now - scale.duration
    sketch = QuantileSketch(relative_accuracy=PERCENTILE_ACCURACY)
    sketch.extend(
        root.duration for root in context.spans.roots("client")
        if root.end is not None and root.end >= boundary)
    p50, p99, p999 = sketch.quantiles((0.50, 0.99, 0.999))
    return {
        SERIES_THROUGHPUT: report.throughput_mb,
        SERIES_P50: p50 * 1e3,
        SERIES_P99: p99 * 1e3,
        SERIES_P999: p999 * 1e3,
    }


def sweep() -> SweepSpec:
    """One point per stream count; each fans into the metric series."""
    points = tuple(
        Point(series=SERIES_THROUGHPUT, x=num_streams,
              params={"streams": num_streams})
        for num_streams in STREAM_COUNTS)
    return SweepSpec(
        experiment_id="ext-fleet",
        title=f"Fleet-scale tail latency ({NUM_DISKS} disks, "
              f"D={NUM_DISKS} admission edge)",
        x_label="total streams",
        y_label="see series (MB/s or msec)",
        notes="extension: thousands of streams over a striped fleet; "
              "percentiles from repro.obs client root spans under a "
              "reserved span quota",
        point_fn=_point,
        points=points,
        series_order=(SERIES_THROUGHPUT, SERIES_P50, SERIES_P99,
                      SERIES_P999))


def run(scale: ExperimentScale = QUICK, jobs: int | None = None,
        cache: bool = True) -> ExperimentResult:
    """Throughput and p50/p99/p999 vs total stream count."""
    return run_sweep(sweep(), scale, jobs=jobs, cache=cache)
