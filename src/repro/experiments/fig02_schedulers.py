"""Figure 2 — Linux I/O scheduler performance, one disk, 4 KB reads.

xdd-style readers through the buffer cache (readahead windows) and an I/O
scheduler onto a single commodity disk. All schedulers collapse once
streams outgrow the disk cache's segments (~16); anticipatory degrades
the least but still ~4x at 256 streams.
"""

from __future__ import annotations

from repro.analysis import ExperimentResult
from repro.disk import DISKSIM_GENERIC, DiskDrive, DriveConfig
from repro.experiments.base import QUICK, ExperimentScale
from repro.experiments.executor import Point, SweepSpec, run_sweep
from repro.host import BlockLayer, BufferCache, make_scheduler
from repro.sim import Simulator
from repro.units import GiB, KiB, MiB
from repro.workload import run_xdd

__all__ = ["run", "sweep", "client_turnaround"]

SCHEDULERS = ["anticipatory", "cfq", "noop"]
STREAM_COUNTS = [1, 2, 4, 8, 16, 32, 64, 128, 256]
BLOCK_SIZE = 4 * KiB
HOST_CACHE = 256 * MiB

#: Client turnaround model: the delay between a completed 4K read and the
#: process issuing the next one. On the paper's box this is syscall +
#: user copy + scheduler wake-up, and the wake-up component grows with
#: the number of reader processes contending for the run queue. The
#: per-read values below put the *inter-window-miss* gap (32 reads per
#: 128 KB readahead window) past the anticipatory window (~6.7 ms) in
#: the low hundreds of streams — the regime where the paper measures
#: anticipation losing its grip.
THINK_BASE = 5e-6
THINK_PER_STREAM = 1e-6


def client_turnaround(num_streams: int) -> float:
    """Per-read client-side delay for ``num_streams`` readers."""
    return THINK_BASE + THINK_PER_STREAM * num_streams


def _point(scale: ExperimentScale, params: dict) -> float:
    """Measure one (scheduler, streams) cell of Figure 2."""
    num_streams = params["streams"]
    sim = Simulator()
    drive = DiskDrive(sim, DISKSIM_GENERIC,
                      config=DriveConfig(seed=num_streams))
    layer = BlockLayer(sim, drive, make_scheduler(params["scheduler"]))
    cache = BufferCache(sim, layer, capacity_bytes=HOST_CACHE)
    report = run_xdd(sim, cache, num_streams=num_streams,
                     block_size=BLOCK_SIZE,
                     per_stream_bytes=4 * GiB,
                     duration=scale.duration,
                     think_time=client_turnaround(num_streams),
                     settle_blocks=96)
    return report.throughput_mb


def sweep() -> SweepSpec:
    """Figure 2 as a declarative sweep (3 schedulers x 9 counts)."""
    points = tuple(
        Point(series=scheduler, x=streams,
              params={"scheduler": scheduler, "streams": streams})
        for scheduler in SCHEDULERS
        for streams in STREAM_COUNTS)
    return SweepSpec(
        experiment_id="fig02",
        title="I/O scheduler performance (xdd, Ext3-like stack, 4K reads)",
        x_label="streams",
        y_label="MBytes/s",
        notes="through the buffer cache with per-stream readahead",
        point_fn=_point,
        points=points)


def run(scale: ExperimentScale = QUICK, jobs: int | None = None,
        cache: bool = True) -> ExperimentResult:
    """Reproduce Figure 2's three scheduler curves."""
    return run_sweep(sweep(), scale, jobs=jobs, cache=cache)
