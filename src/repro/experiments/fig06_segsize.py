"""Figure 6 — effect of disk prefetching via growing segment size.

30 sequential streams, 64 KB requests, the number of cache segments fixed
at 32 while segment size grows from 32 KB to 2 MB (total cache grows with
it). Throughput climbs from ~8 to ~40 MB/s: each miss prefetches a whole
segment, amortising one seek over more data.
"""

from __future__ import annotations

from repro.analysis import ExperimentResult
from repro.disk.specs import DISKSIM_GENERIC
from repro.experiments.base import QUICK, ExperimentScale, measure
from repro.experiments.executor import Point, SweepSpec, run_sweep
from repro.node import base_topology
from repro.units import KiB, MiB, format_size
from repro.workload import uniform_streams

__all__ = ["run", "sweep"]

SEGMENT_SIZES = [32 * KiB, 64 * KiB, 128 * KiB, 256 * KiB, 512 * KiB,
                 1 * MiB, 2 * MiB]
NUM_SEGMENTS = 32
NUM_STREAMS = 30
REQUEST_SIZE = 64 * KiB


def _point(scale: ExperimentScale, params: dict) -> float:
    """Measure one segment-size cell of Figure 6."""
    segment_size = params["segment_size"]
    spec = DISKSIM_GENERIC.with_cache(
        cache_bytes=NUM_SEGMENTS * segment_size,
        cache_segments=NUM_SEGMENTS,
        read_ahead_bytes=None)
    topology = base_topology(disk_spec=spec, seed=7)
    report = measure(
        topology, scale,
        specs_for=lambda node: uniform_streams(
            NUM_STREAMS, node.disk_ids, node.capacity_bytes,
            request_size=REQUEST_SIZE))
    return report.throughput_mb


def sweep() -> SweepSpec:
    """Figure 6 as a declarative sweep (one curve, seven sizes)."""
    points = tuple(
        Point(series=f"{NUM_STREAMS} streams", x=format_size(segment_size),
              params={"segment_size": segment_size})
        for segment_size in SEGMENT_SIZES)
    return SweepSpec(
        experiment_id="fig06",
        title=f"Effect of prefetching: segment size sweep "
              f"({NUM_STREAMS} streams, {NUM_SEGMENTS} segments)",
        x_label="segment size",
        y_label="MBytes/s",
        notes="cache grows with segment size; read-ahead fills segment",
        point_fn=_point,
        points=points)


def run(scale: ExperimentScale = QUICK, jobs: int | None = None,
        cache: bool = True) -> ExperimentResult:
    """Reproduce Figure 6's single curve."""
    return run_sweep(sweep(), scale, jobs=jobs, cache=cache)
