"""Sweep-fabric fan-out benchmark: points/s vs worker count.

The fabric's job is dispatch overlap: keep N workers busy, hedge
stragglers, reuse cached results. A CPU-bound point cannot demonstrate
that on a small (or single-core) CI box — N workers time-slice one
core and the speedup is ~1x by construction. So the benchmark point is
**wait-dominated**: a tiny real simulation (exercises the import +
event-core path every sweep point pays) followed by a fixed
``service_s`` sleep standing in for the device/IO time a paper-grade
point spends off-CPU. Points/s then measures what the fabric actually
controls — how well the coordinator overlaps point service times —
and the 1 -> 4 -> 8 worker curve is machine-independent: ~N× until
dispatch overhead bites.

``measure_sweep`` times ``Fabric.run_tasks`` only (worker spawn +
handshake happen in ``Fabric.start`` beforehand): the steady-state
dispatch rate is the regression-gated quantity, not process startup.
Runs are cache-cold (``use_cache=False``) so every point is computed.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Tuple

__all__ = ["FANOUT_POINTS", "SERVICE_S", "WORKER_COUNTS",
           "SWEEP_TOLERANCE", "fanout_point", "fanout_tasks",
           "measure_sweep"]

#: Points per measured sweep. 16 points at 50 ms service time give a
#: 0.8 s serial floor — long enough to swamp dispatch overhead, short
#: enough for CI.
FANOUT_POINTS = 16

#: Simulated service time per point (``time.sleep``), seconds.
SERVICE_S = 0.05

#: Worker counts recorded in BENCH_engine.json.
WORKER_COUNTS = (1, 4, 8)

#: ``--check`` tolerance for the sweep tier. The rates are sleep-paced
#: and therefore stable, but the coordinator shares the CPU with the
#: workers on small boxes, so leave generous headroom.
SWEEP_TOLERANCE = 0.5


def fanout_point(scale, params: dict) -> float:
    """One wait-dominated sweep point.

    Runs a real (tiny) simulation so the point pays the same per-point
    setup a figure point does, then sleeps ``params["service_s"]`` to
    model the off-CPU service time. Deterministic in ``params`` so
    duplicate (hedged) executions are bit-identical.
    """
    from repro.sim import Simulator

    sim = Simulator()
    ticks = []

    def clock(sim, period, count):
        for _ in range(count):
            yield sim.timeout(period)
            ticks.append(sim.now)

    sim.process(clock(sim, 0.5, 8))
    sim.run()
    time.sleep(float(params["service_s"]))
    return float(params["index"]) + ticks[-1]


def fanout_tasks(count: int = FANOUT_POINTS,
                 service_s: float = SERVICE_S) -> Iterable[Tuple]:
    """The ``(point_fn, scale, params)`` task list for one sweep."""
    from repro.experiments import SMOKE
    return [(fanout_point, SMOKE, {"index": index,
                                   "service_s": service_s})
            for index in range(count)]


def measure_sweep(worker_counts: Iterable[int] = WORKER_COUNTS,
                  points: int = FANOUT_POINTS,
                  service_s: float = SERVICE_S) -> Dict[str, dict]:
    """points/s through the fabric at each worker count.

    Returns the ``sweep`` tier for BENCH_engine.json::

        {"sweep_fanout": {"points_per_run": 16,
                          "service_s": 0.05,
                          "points_per_sec": {"1": ..., "4": ..., "8": ...},
                          "speedup_4": ...,
                          "tolerance": 0.5}}
    """
    from repro.experiments.fabric import Fabric

    tasks = list(fanout_tasks(points, service_s))
    rates: Dict[str, float] = {}
    for workers in worker_counts:
        with Fabric(str(workers)) as fabric:
            fabric.start()          # spawn + handshake, not measured
            started = time.perf_counter()
            values = fabric.run_tasks(tasks, use_cache=False)
            elapsed = time.perf_counter() - started
        expected = [fanout_point(None, task[2]) for task in tasks]
        if values != expected:
            raise RuntimeError(
                f"sweep_fanout: fabric values diverged at "
                f"{workers} worker(s)")
        rates[str(workers)] = round(len(tasks) / elapsed, 2)
    entry = {
        "points_per_run": len(tasks),
        "service_s": service_s,
        "points_per_sec": rates,
        "tolerance": SWEEP_TOLERANCE,
    }
    base = rates.get("1")
    if base and "4" in rates:
        entry["speedup_4"] = round(rates["4"] / base, 2)
    return {"sweep_fanout": entry}
