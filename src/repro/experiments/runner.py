"""Command-line experiment runner.

Usage::

    python -m repro.experiments.runner               # all figures, quick
    python -m repro.experiments.runner fig10 fig13   # a subset
    python -m repro.experiments.runner --scale full  # paper-grade runs
    python -m repro.experiments.runner --jobs 8      # 8 worker processes
    python -m repro.experiments.runner --no-cache    # force re-simulation
    python -m repro.experiments.runner --json out.json

Prints each figure's series as an ASCII table; this is what populated
EXPERIMENTS.md. Every experiment is a sweep of independent points
(see :mod:`repro.experiments.executor`): ``--jobs`` fans points across a
process pool (default ``REPRO_JOBS`` or all cores) and completed points
are memoized on disk so re-runs and ``--check`` passes are near-instant.
``--json`` writes the machine-readable per-figure series and wall times
consumed by ``BENCH_engine.json`` (see ``python -m
repro.experiments.bench``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.analysis import format_table
from repro.experiments import EXPERIMENTS, EXTENSIONS, FULL, QUICK, SMOKE
from repro.experiments.executor import resolve_jobs

_SCALES = {"smoke": SMOKE, "quick": QUICK, "full": FULL}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    catalogue = {**EXPERIMENTS, **EXTENSIONS}
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's figures on the simulator.")
    parser.add_argument("figures", nargs="*",
                        help=f"figure ids (default: the paper figures "
                             f"{sorted(EXPERIMENTS)}; extensions: "
                             f"{sorted(EXTENSIONS)})")
    parser.add_argument("--scale", choices=sorted(_SCALES),
                        default="quick",
                        help="simulated seconds per measured point")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for sweep points "
                             "(default: REPRO_JOBS or all cores; "
                             "1 = serial in-process)")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the on-disk sweep result cache "
                             "(~/.cache/repro-sweeps) and re-simulate")
    parser.add_argument("--json", metavar="PATH", dest="json_path",
                        help="also write per-figure series and wall "
                             "times as JSON (consumed by "
                             "BENCH_engine.json; '-' for stdout)")
    parser.add_argument("--check", action="store_true",
                        help="verify each figure's shape against the "
                             "paper's claims (exit 1 on violations)")
    arguments = parser.parse_args(argv)

    requested = arguments.figures or sorted(EXPERIMENTS)
    unknown = [f for f in requested if f not in catalogue]
    if unknown:
        parser.error(f"unknown figure ids: {unknown}; "
                     f"choose from {sorted(catalogue)}")
    scale = _SCALES[arguments.scale]
    jobs = resolve_jobs(arguments.jobs)
    use_cache = not arguments.no_cache
    failures = 0
    report = {"scale": scale.name, "jobs": jobs,
              "cache": use_cache, "figures": {}}
    total_started = time.time()
    for figure_id in requested:
        started = time.time()
        result = catalogue[figure_id](scale, jobs=jobs, cache=use_cache)
        wall = time.time() - started
        print(format_table(result))
        print(f"[{figure_id}: {wall:.1f}s wall, "
              f"scale={scale.name}, jobs={jobs}]")
        report["figures"][figure_id] = {
            "wall_s": wall,
            "title": result.title,
            "x_label": result.x_label,
            "y_label": result.y_label,
            "series": {label: dict(zip(series.xs, series.ys))
                       for label, series in
                       zip(result.labels, result.series)},
        }
        if arguments.check:
            from repro.analysis.verify import verify_result
            violations = verify_result(result)
            if violations:
                failures += 1
                for violation in violations:
                    print(f"  SHAPE VIOLATION: {violation}")
            else:
                print(f"  shape check: OK")
        print()
    report["total_wall_s"] = time.time() - total_started

    if arguments.json_path:
        payload = json.dumps(report, indent=2, sort_keys=True)
        if arguments.json_path == "-":
            print(payload)
        else:
            with open(arguments.json_path, "w", encoding="utf-8") as out:
                out.write(payload + "\n")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
