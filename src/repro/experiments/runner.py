"""Command-line experiment runner.

Usage::

    python -m repro.experiments.runner               # all figures, quick
    python -m repro.experiments.runner fig10 fig13   # a subset
    python -m repro.experiments.runner --scale full  # paper-grade runs
    python -m repro.experiments.runner --jobs 8      # 8 worker processes
    python -m repro.experiments.runner --no-cache    # force re-simulation
    python -m repro.experiments.runner --json out.json

Prints each figure's series as an ASCII table; this is what populated
EXPERIMENTS.md. Every experiment is a sweep of independent points
(see :mod:`repro.experiments.executor`): ``--jobs`` fans points across a
process pool (default ``REPRO_JOBS`` or all cores) and completed points
are memoized on disk so re-runs and ``--check`` passes are near-instant.
``--json`` writes the machine-readable per-figure series and wall times
consumed by ``BENCH_engine.json`` (see ``python -m
repro.experiments.bench``).

``--trace-out PATH`` runs the figures under an active ``repro.obs``
context and writes a Chrome trace (open in Perfetto), a JSONL event log
(``PATH.jsonl``, input of ``python -m repro.obs.report``), and — when
``--telemetry SECS`` enables the time-series sampler — a Prometheus
text dump (``PATH.prom``). Tracing forces ``--jobs 1`` and disables the
sweep cache: spans live in this process, and a cache hit would skip the
simulation that produces them.

``--workers SPEC`` dispatches sweep points over the distributed fabric
(:mod:`repro.experiments.fabric`) instead of the local process pool: an
integer spawns that many local worker processes, a comma-separated
``host:port`` list dials long-lived remote workers. ``--fabric-trace
PATH`` additionally writes the coordinator's per-worker telemetry
(queue depth, hedges, cache hits) as a JSONL log that ``python -m
repro.obs.report`` renders.

``--workers`` composes with ``--trace-out`` (DESIGN.md §10): each
worker runs its points under a worker-local obs context and ships
spans + telemetry back with its results; the coordinator merges them
into one worker-tagged Chrome trace, and ``PATH.prom`` becomes the
fleet-wide Prometheus dump (worker telemetry plus the fabric's
per-worker cache/dispatch counters).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.analysis import format_table
from repro.experiments import EXPERIMENTS, EXTENSIONS, FULL, QUICK, SMOKE
from repro.experiments.executor import resolve_jobs

_SCALES = {"smoke": SMOKE, "quick": QUICK, "full": FULL}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    catalogue = {**EXPERIMENTS, **EXTENSIONS}
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's figures on the simulator.")
    parser.add_argument("figures", nargs="*",
                        help=f"figure ids (default: the paper figures "
                             f"{sorted(EXPERIMENTS)}; extensions: "
                             f"{sorted(EXTENSIONS)})")
    parser.add_argument("--scale", choices=sorted(_SCALES),
                        default="quick",
                        help="simulated seconds per measured point")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for sweep points "
                             "(default: REPRO_JOBS or all cores; "
                             "1 = serial in-process)")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the on-disk sweep result cache "
                             "(~/.cache/repro-sweeps) and re-simulate")
    parser.add_argument("--json", metavar="PATH", dest="json_path",
                        help="also write per-figure series and wall "
                             "times as JSON (consumed by "
                             "BENCH_engine.json; '-' for stdout)")
    parser.add_argument("--check", action="store_true",
                        help="verify each figure's shape against the "
                             "paper's claims (exit 1 on violations)")
    parser.add_argument("--trace-out", metavar="PATH", dest="trace_out",
                        help="run traced (repro.obs) and write a Chrome "
                             "trace JSON to PATH plus a JSONL event log "
                             "to PATH.jsonl (forces --jobs 1, no cache)")
    parser.add_argument("--telemetry", type=float, default=None,
                        metavar="SECS",
                        help="with --trace-out: sample telemetry every "
                             "SECS simulated seconds and also write a "
                             "Prometheus text dump to PATH.prom")
    parser.add_argument("--workers", metavar="SPEC", dest="workers",
                        help="run sweep points on the distributed "
                             "fabric: an integer spawns that many local "
                             "worker processes, 'host:port,...' dials "
                             "remote workers started with 'python -m "
                             "repro.experiments.fabric worker --listen' "
                             "(default: REPRO_FABRIC if set)")
    parser.add_argument("--fabric-trace", metavar="PATH",
                        dest="fabric_trace",
                        help="with --workers: write per-worker fabric "
                             "telemetry (queue depth, hedges, cache "
                             "hits) as a repro.obs JSONL log to PATH "
                             "(read with python -m repro.obs.report)")
    arguments = parser.parse_args(argv)
    if arguments.telemetry is not None and not arguments.trace_out:
        parser.error("--telemetry requires --trace-out")
    if arguments.fabric_trace and not arguments.workers:
        parser.error("--fabric-trace requires --workers")

    requested = arguments.figures or sorted(EXPERIMENTS)
    unknown = [f for f in requested if f not in catalogue]
    if unknown:
        parser.error(f"unknown figure ids: {unknown}; "
                     f"choose from {sorted(catalogue)}")
    scale = _SCALES[arguments.scale]
    jobs = resolve_jobs(arguments.jobs)
    use_cache = not arguments.no_cache
    obs_context = None
    fabric = None
    if arguments.trace_out:
        from repro import obs
        from repro.experiments import executor
        obs_context = obs.ObsContext(
            telemetry_interval=arguments.telemetry)
        jobs = 1          # local fallbacks stay in this traced process
        use_cache = False  # a cache hit would skip the traced run
        if not arguments.workers:
            # A REPRO_FABRIC default would move points off-process
            # untraced; with --workers the fabric *is* the traced path
            # (workers ship their spans back, see DESIGN.md §10).
            executor.set_default_fabric(executor.FABRIC_OFF)
    if arguments.workers:
        from repro.experiments import executor
        from repro.experiments.fabric import Fabric, FabricError
        fabric = Fabric(arguments.workers)
        try:
            fabric.start()
        except FabricError as exc:
            print(f"error: fabric start failed: {exc}", file=sys.stderr)
            return 2
        executor.set_default_fabric(fabric)
    failures = 0
    report = {"scale": scale.name, "jobs": jobs,
              "cache": use_cache, "figures": {}}
    total_started = time.time()
    for figure_id in requested:
        started = time.time()
        if obs_context is not None:
            from repro import obs
            with obs.activated(obs_context):
                result = catalogue[figure_id](scale, jobs=jobs,
                                              cache=use_cache)
        else:
            result = catalogue[figure_id](scale, jobs=jobs,
                                          cache=use_cache)
        wall = time.time() - started
        print(format_table(result))
        print(f"[{figure_id}: {wall:.1f}s wall, "
              f"scale={scale.name}, jobs={jobs}]")
        report["figures"][figure_id] = {
            "wall_s": wall,
            "title": result.title,
            "x_label": result.x_label,
            "y_label": result.y_label,
            "series": {label: dict(zip(series.xs, series.ys))
                       for label, series in
                       zip(result.labels, result.series)},
        }
        if arguments.check:
            from repro.analysis.verify import verify_result
            violations = verify_result(result)
            if violations:
                failures += 1
                for violation in violations:
                    print(f"  SHAPE VIOLATION: {violation}")
            else:
                print(f"  shape check: OK")
        print()
    report["total_wall_s"] = time.time() - total_started

    fabric_metrics = None
    if fabric is not None:
        stats = fabric.stats()
        report["fabric"] = stats
        # Snapshot before close(): per-worker rows need live workers.
        fabric_metrics = fabric.prometheus_metrics()
        if arguments.fabric_trace:
            fabric.export_telemetry(
                arguments.fabric_trace,
                meta={"figures": requested, "scale": scale.name})
            print(f"[fabric trace -> {arguments.fabric_trace}]")
        print(f"[fabric: {stats['workers']} workers, "
              f"{stats['completed']} computed, "
              f"{stats['cache_local_hits'] + stats['cache_peer_hits']} "
              f"cache hits, {stats['hedges_issued']} hedges "
              f"({stats['hedges_won']} won), "
              f"{stats['requeued']} requeued]")
        fabric.close()
        executor.set_default_fabric(None)

    if obs_context is not None:
        from repro.obs.export import (export_chrome_trace, export_jsonl,
                                      export_prometheus)
        last = max((span.end if span.end is not None else span.start
                    for span in obs_context.spans.spans), default=0.0)
        truncated = obs_context.spans.close_open(last)
        meta = {"figures": requested, "scale": scale.name,
                "truncated": truncated}
        if fabric_metrics is not None:
            meta["fabric"] = arguments.workers
        export_chrome_trace(obs_context, arguments.trace_out, meta=meta)
        export_jsonl(obs_context, arguments.trace_out + ".jsonl",
                     meta=meta)
        written = [arguments.trace_out, arguments.trace_out + ".jsonl"]
        if arguments.telemetry is not None or fabric_metrics is not None:
            # The fleet-wide Prometheus dump: local + worker-shipped
            # telemetry plus the fabric's per-worker counters/EWMAs.
            export_prometheus(obs_context, arguments.trace_out + ".prom",
                              extra=fabric_metrics)
            written.append(arguments.trace_out + ".prom")
        print(f"[trace: {len(obs_context.spans.spans)} spans "
              f"({obs_context.spans.dropped} dropped) -> "
              f"{', '.join(written)}]")

    if arguments.json_path:
        payload = json.dumps(report, indent=2, sort_keys=True)
        if arguments.json_path == "-":
            print(payload)
        else:
            with open(arguments.json_path, "w", encoding="utf-8") as out:
                out.write(payload + "\n")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
