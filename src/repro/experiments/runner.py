"""Command-line experiment runner.

Usage::

    python -m repro.experiments.runner               # all figures, quick
    python -m repro.experiments.runner fig10 fig13   # a subset
    python -m repro.experiments.runner --scale full  # paper-grade runs

Prints each figure's series as an ASCII table; this is what populated
EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.analysis import format_table
from repro.experiments import EXPERIMENTS, EXTENSIONS, FULL, QUICK, SMOKE

_SCALES = {"smoke": SMOKE, "quick": QUICK, "full": FULL}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    catalogue = {**EXPERIMENTS, **EXTENSIONS}
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's figures on the simulator.")
    parser.add_argument("figures", nargs="*",
                        help=f"figure ids (default: the paper figures "
                             f"{sorted(EXPERIMENTS)}; extensions: "
                             f"{sorted(EXTENSIONS)})")
    parser.add_argument("--scale", choices=sorted(_SCALES),
                        default="quick",
                        help="simulated seconds per measured point")
    parser.add_argument("--check", action="store_true",
                        help="verify each figure's shape against the "
                             "paper's claims (exit 1 on violations)")
    arguments = parser.parse_args(argv)

    requested = arguments.figures or sorted(EXPERIMENTS)
    unknown = [f for f in requested if f not in catalogue]
    if unknown:
        parser.error(f"unknown figure ids: {unknown}; "
                     f"choose from {sorted(catalogue)}")
    scale = _SCALES[arguments.scale]
    failures = 0
    for figure_id in requested:
        started = time.time()
        result = catalogue[figure_id](scale)
        print(format_table(result))
        print(f"[{figure_id}: {time.time() - started:.1f}s wall, "
              f"scale={scale.name}]")
        if arguments.check:
            from repro.analysis.verify import verify_result
            violations = verify_result(result)
            if violations:
                failures += 1
                for violation in violations:
                    print(f"  SHAPE VIOLATION: {violation}")
            else:
                print(f"  shape check: OK")
        print()
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
