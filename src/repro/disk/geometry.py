"""Zoned disk geometry and LBA → physical mapping.

A drive is modelled as ``heads`` recording surfaces over a run of cylinders
split into zones. Within a zone every track holds the same number of
sectors; outer zones hold more, so their media transfer rate is higher.
LBAs are laid out cylinder-major from the outermost cylinder inward, which
is how real drives map logical blocks (low LBAs are fast).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.units import SECTOR_BYTES

__all__ = ["DiskGeometry", "Zone"]


@dataclass(frozen=True)
class Zone:
    """A run of cylinders sharing a sectors-per-track value.

    Attributes
    ----------
    index:
        Zone number, 0 = outermost.
    start_cylinder / cylinder_count:
        Cylinder range ``[start_cylinder, start_cylinder + cylinder_count)``.
    sectors_per_track:
        Sectors on each track in this zone.
    start_lba:
        First LBA mapped into this zone (cumulative over outer zones).
    heads:
        Surfaces per cylinder (copied from the geometry for convenience).
    sectors_per_cylinder / sector_count / end_lba / end_cylinder:
        Derived values, precomputed once at construction — they are the
        operands of every LBA → cylinder mapping, so the hot path loads
        plain attributes instead of re-deriving through properties.
    """

    index: int
    start_cylinder: int
    cylinder_count: int
    sectors_per_track: int
    start_lba: int
    heads: int
    #: Sectors across all surfaces of one cylinder (derived).
    sectors_per_cylinder: int = field(init=False)
    #: Total sectors mapped into this zone (derived).
    sector_count: int = field(init=False)
    #: One past the last LBA of the zone (derived).
    end_lba: int = field(init=False)
    #: One past the last cylinder of the zone (derived).
    end_cylinder: int = field(init=False)

    def __post_init__(self) -> None:
        per_cylinder = self.sectors_per_track * self.heads
        object.__setattr__(self, "sectors_per_cylinder", per_cylinder)
        object.__setattr__(self, "sector_count",
                           self.cylinder_count * per_cylinder)
        object.__setattr__(self, "end_lba",
                           self.start_lba + self.sector_count)
        object.__setattr__(self, "end_cylinder",
                           self.start_cylinder + self.cylinder_count)


class DiskGeometry:
    """Immutable zoned layout with fast LBA↔cylinder mapping.

    Parameters
    ----------
    heads:
        Number of recording surfaces.
    zones:
        Outer-to-inner zone descriptions as
        ``(cylinder_count, sectors_per_track)`` pairs.
    """

    __slots__ = ("heads", "zones", "cylinders", "total_sectors",
                 "_zone_lba_starts", "_zone_cyl_starts", "_last_zone")

    def __init__(self, heads: int,
                 zones: Sequence[tuple[int, int]]):
        if heads < 1:
            raise ValueError(f"heads must be >= 1, got {heads}")
        if not zones:
            raise ValueError("geometry needs at least one zone")
        self.heads = heads
        self.zones: List[Zone] = []
        cylinder = 0
        lba = 0
        for index, (cylinder_count, spt) in enumerate(zones):
            if cylinder_count < 1 or spt < 1:
                raise ValueError(
                    f"zone {index}: counts must be >= 1 "
                    f"(cylinders={cylinder_count}, spt={spt})")
            zone = Zone(index=index, start_cylinder=cylinder,
                        cylinder_count=cylinder_count,
                        sectors_per_track=spt, start_lba=lba, heads=heads)
            self.zones.append(zone)
            cylinder += cylinder_count
            lba += zone.sector_count
        self.cylinders = cylinder
        self.total_sectors = lba
        self._zone_lba_starts = [z.start_lba for z in self.zones]
        self._zone_cyl_starts = [z.start_cylinder for z in self.zones]
        # Last-hit zone memo: sequential streams issue runs of lookups
        # landing in the same zone, so one range check usually replaces
        # the bisect. Stored as (start_lba, end_lba, zone) to keep the
        # hot-path check to two integer compares.
        last = self.zones[0]
        self._last_zone = (last.start_lba, last.end_lba, last)

    @property
    def capacity_bytes(self) -> int:
        """Addressable bytes."""
        return self.total_sectors * SECTOR_BYTES

    # -- mapping -------------------------------------------------------------
    def _zone_of_lba_unchecked(self, lba: int) -> Zone:
        """Zone containing a *known-valid* ``lba`` (last-zone memo).

        Internal fast path: callers that already validated the LBA (or
        derived it from validated geometry arithmetic) skip the range
        re-check that :meth:`zone_of_lba` performs.
        """
        start, end, zone = self._last_zone
        if start <= lba < end:
            return zone
        zone = self.zones[bisect_right(self._zone_lba_starts, lba) - 1]
        self._last_zone = (zone.start_lba, zone.end_lba, zone)
        return zone

    def zone_of_lba(self, lba: int) -> Zone:
        """Zone containing ``lba``."""
        start, end, zone = self._last_zone
        if start <= lba < end:
            # Memo hit implies a valid LBA: zone ranges never leave
            # [0, total_sectors), so the range re-check is subsumed.
            return zone
        self._check_lba(lba)
        return self._zone_of_lba_unchecked(lba)

    def zone_of_cylinder(self, cylinder: int) -> Zone:
        """Zone containing ``cylinder``."""
        if not 0 <= cylinder < self.cylinders:
            raise ValueError(
                f"cylinder {cylinder} out of range [0, {self.cylinders})")
        return self.zones[bisect_right(self._zone_cyl_starts, cylinder) - 1]

    def cylinder_of_lba(self, lba: int) -> int:
        """Cylinder holding ``lba``."""
        start, end, zone = self._last_zone
        if not (start <= lba < end):
            self._check_lba(lba)
            zone = self._zone_of_lba_unchecked(lba)
        return (zone.start_cylinder
                + (lba - zone.start_lba) // zone.sectors_per_cylinder)

    def zone_and_cylinder_of_lba(self, lba: int) -> Tuple[Zone, int]:
        """(zone, cylinder) of ``lba`` in one lookup.

        The drive's positioning path needs both; fusing them pays the
        zone resolution (memo check or bisect) once instead of twice.
        """
        start, end, zone = self._last_zone
        if not (start <= lba < end):
            self._check_lba(lba)
            zone = self._zone_of_lba_unchecked(lba)
        return zone, (zone.start_cylinder
                      + (lba - zone.start_lba) // zone.sectors_per_cylinder)

    def sectors_per_track_at(self, lba: int) -> int:
        """Sectors per track of the zone containing ``lba``."""
        start, end, zone = self._last_zone
        if not (start <= lba < end):
            self._check_lba(lba)
            zone = self._zone_of_lba_unchecked(lba)
        return zone.sectors_per_track

    def _check_lba(self, lba: int) -> None:
        if not 0 <= lba < self.total_sectors:
            raise ValueError(
                f"LBA {lba} out of range [0, {self.total_sectors})")

    # -- construction helpers --------------------------------------------------
    @classmethod
    def from_capacity(cls, capacity_bytes: int, heads: int = 4,
                      num_zones: int = 16, outer_spt: int = 900,
                      inner_spt: int = 540) -> "DiskGeometry":
        """Build a geometry of roughly ``capacity_bytes``.

        Sectors-per-track declines linearly from ``outer_spt`` to
        ``inner_spt`` across ``num_zones`` zones of equal cylinder count;
        the innermost zone is trimmed/extended so total capacity lands
        within one cylinder of the request.
        """
        if capacity_bytes < SECTOR_BYTES:
            raise ValueError(f"capacity too small: {capacity_bytes}")
        if num_zones < 1:
            raise ValueError(f"num_zones must be >= 1, got {num_zones}")
        if inner_spt > outer_spt:
            raise ValueError("inner_spt must not exceed outer_spt")
        target_sectors = capacity_bytes // SECTOR_BYTES
        if num_zones == 1:
            spts = [outer_spt]
        else:
            step = (outer_spt - inner_spt) / (num_zones - 1)
            spts = [max(1, round(outer_spt - step * i))
                    for i in range(num_zones)]
        mean_sectors_per_cylinder = heads * sum(spts) / len(spts)
        cylinders_per_zone = max(
            1, round(target_sectors / (mean_sectors_per_cylinder * num_zones)))
        zones = [(cylinders_per_zone, spt) for spt in spts]
        mapped = sum(c * heads * spt for c, spt in zones)
        # Trim or extend the innermost zone to approach the target.
        inner_cyl_sectors = heads * spts[-1]
        deficit_cylinders = round((target_sectors - mapped)
                                  / inner_cyl_sectors)
        last_count = max(1, zones[-1][0] + deficit_cylinders)
        zones[-1] = (last_count, spts[-1])
        return cls(heads=heads, zones=zones)

    def __repr__(self) -> str:
        return (f"<DiskGeometry {self.capacity_bytes / 1e9:.1f} GB "
                f"heads={self.heads} cylinders={self.cylinders} "
                f"zones={len(self.zones)}>")
