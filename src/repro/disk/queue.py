"""Disk-internal request scheduling policies.

The drive keeps a small queue of pending commands and picks the next one
to service given the current head position. Three classic policies are
provided; the policy only *selects* — timing lives in the drive.
"""

from __future__ import annotations

import abc
from typing import List, Sequence

__all__ = [
    "FCFSPolicy",
    "LookPolicy",
    "QueuePolicy",
    "SSTFPolicy",
    "make_policy",
]


class QueuePolicy(abc.ABC):
    """Selects which pending request the head services next.

    Implementations receive the pending requests' target cylinders (in
    arrival order) and the current head cylinder, and return the index of
    the chosen request.
    """

    __slots__ = ()

    name: str = "abstract"

    @abc.abstractmethod
    def select(self, cylinders: Sequence[int], head_cylinder: int) -> int:
        """Index into ``cylinders`` of the request to service next."""

    def select_one(self, cylinder: int, head_cylinder: int) -> None:
        """Apply any selection side effects for a single candidate.

        With exactly one pending request every policy picks index 0, so
        the drive skips the list build and the ``select`` call — but a
        stateful policy (LOOK's sweep direction) must still observe the
        selection. The default is stateless: nothing to record. Must
        behave exactly like ``select((cylinder,), head_cylinder)`` minus
        the return value.
        """

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class FCFSPolicy(QueuePolicy):
    """First-come first-served: arrival order, no reordering."""

    __slots__ = ()

    name = "fcfs"

    def select(self, cylinders: Sequence[int], head_cylinder: int) -> int:
        if not cylinders:
            raise ValueError("select() on empty queue")
        return 0


class SSTFPolicy(QueuePolicy):
    """Shortest seek time first: nearest cylinder wins (FIFO tiebreak)."""

    __slots__ = ()

    name = "sstf"

    def select(self, cylinders: Sequence[int], head_cylinder: int) -> int:
        if not cylinders:
            raise ValueError("select() on empty queue")
        best_index = 0
        best_distance = abs(cylinders[0] - head_cylinder)
        for index in range(1, len(cylinders)):
            distance = abs(cylinders[index] - head_cylinder)
            if distance < best_distance:
                best_index, best_distance = index, distance
        return best_index


class LookPolicy(QueuePolicy):
    """LOOK elevator: sweep in one direction, reverse at the last request.

    Stateful: remembers the sweep direction between selections. The
    selection is a single pass tracking the nearest request ahead of and
    behind the sweep direction (strict ``<`` keeps the FIFO tiebreak of
    the earlier two-list implementation: the lowest index among equally
    near candidates wins).
    """

    __slots__ = ("_ascending",)

    name = "look"

    def __init__(self):
        self._ascending = True

    def select(self, cylinders: Sequence[int], head_cylinder: int) -> int:
        if not cylinders:
            raise ValueError("select() on empty queue")
        ascending = self._ascending
        best_ahead = -1
        best_ahead_distance = 0
        best_behind = -1
        best_behind_distance = 0
        # Two loop bodies (one per sweep direction) keep the direction
        # test out of the per-candidate work — select runs once per
        # serviced command with the whole firmware queue as input.
        if ascending:
            for index, cylinder in enumerate(cylinders):
                distance = cylinder - head_cylinder
                if distance >= 0:
                    if best_ahead < 0 or distance < best_ahead_distance:
                        best_ahead, best_ahead_distance = index, distance
                else:
                    distance = -distance
                    if best_behind < 0 or distance < best_behind_distance:
                        best_behind, best_behind_distance = index, distance
        else:
            for index, cylinder in enumerate(cylinders):
                distance = head_cylinder - cylinder
                if distance >= 0:
                    if best_ahead < 0 or distance < best_ahead_distance:
                        best_ahead, best_ahead_distance = index, distance
                else:
                    distance = -distance
                    if best_behind < 0 or distance < best_behind_distance:
                        best_behind, best_behind_distance = index, distance
        if best_ahead >= 0:
            return best_ahead
        self._ascending = not ascending
        return best_behind

    def select_one(self, cylinder: int, head_cylinder: int) -> None:
        """Single-candidate fast path: keep the sweep direction exact.

        Mirrors ``select`` for ``len(cylinders) == 1``: a candidate behind
        the sweep direction reverses it; one ahead (or at the head) does
        not.
        """
        distance = cylinder - head_cylinder
        if not self._ascending:
            distance = -distance
        if distance < 0:
            self._ascending = not self._ascending


_POLICIES = {
    FCFSPolicy.name: FCFSPolicy,
    SSTFPolicy.name: SSTFPolicy,
    LookPolicy.name: LookPolicy,
}


def make_policy(name: str) -> QueuePolicy:
    """Instantiate a policy by name ('fcfs', 'sstf', 'look')."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown queue policy {name!r}; "
            f"choose from {sorted(_POLICIES)}") from None
