"""Disk drive specification presets.

Numbers for the WD800JD come from the paper (Section 5) and the drive's
datasheet; the generic spec mirrors the paper's DiskSim base configuration
(Section 3) with an 8 MByte cache whose segmentation the experiments vary.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.units import KiB, MS, MiB

__all__ = ["DISKSIM_GENERIC", "WD800JD", "DiskSpec"]


@dataclass(frozen=True)
class DiskSpec:
    """Static description of a disk drive model.

    Attributes
    ----------
    name:
        Model label for reports.
    capacity_bytes:
        Addressable capacity (geometry is fitted to approximate it).
    rpm:
        Spindle speed.
    heads:
        Recording surfaces.
    num_zones:
        Zone count for the fitted geometry.
    single_cylinder_seek_s / average_seek_s:
        Datasheet seek characteristics calibrating the seek curve.
    outer_media_rate / inner_media_rate:
        Sustained media rates (bytes/s) at the outermost/innermost zone.
    cache_bytes / cache_segments:
        On-disk cache size and default segmentation.
    read_ahead_bytes:
        Default drive read-ahead past a demand miss; ``None`` means "fill
        the rest of the segment" (typical firmware behaviour).
    interface_rate:
        Host interface bandwidth (bytes/s), e.g. SATA-1 150 MB/s.
    command_overhead_s:
        Fixed controller/firmware overhead charged per command.
    track_switch_s:
        Head settle charged per track boundary during media transfer.
    queue_depth:
        Advisory device queue depth (enforced by the layer above).
    """

    name: str
    capacity_bytes: int
    rpm: float
    heads: int
    num_zones: int
    single_cylinder_seek_s: float
    average_seek_s: float
    outer_media_rate: float
    inner_media_rate: float
    cache_bytes: int
    cache_segments: int
    read_ahead_bytes: int | None
    interface_rate: float
    command_overhead_s: float
    track_switch_s: float
    queue_depth: int
    #: Dirty-data budget for write-back caching (0 = write-through, the
    #: default; the paper's workloads are read-dominated). When positive,
    #: writes that fit complete at interface speed and destage to media
    #: in the background at lower priority than reads.
    write_cache_bytes: int = 0

    def with_write_cache(self, write_cache_bytes: int) -> "DiskSpec":
        """Copy with write-back caching en/disabled."""
        return replace(self, write_cache_bytes=write_cache_bytes)

    def with_cache(self, cache_bytes: int | None = None,
                   cache_segments: int | None = None,
                   read_ahead_bytes: int | None | str = "keep") -> "DiskSpec":
        """Copy with a different cache organisation.

        ``read_ahead_bytes`` keeps the current value unless given
        (``None`` is meaningful: fill-segment).
        """
        kwargs: dict = {}
        if cache_bytes is not None:
            kwargs["cache_bytes"] = cache_bytes
        if cache_segments is not None:
            kwargs["cache_segments"] = cache_segments
        if read_ahead_bytes != "keep":
            kwargs["read_ahead_bytes"] = read_ahead_bytes
        return replace(self, **kwargs)

    @property
    def segment_bytes(self) -> int:
        """Bytes per cache segment."""
        return self.cache_bytes // self.cache_segments

    @property
    def rotation_time_s(self) -> float:
        """Seconds per revolution."""
        return 60.0 / self.rpm


#: The paper's real-system disk: WD Caviar SE WD800JD — 80 GB, 7200 RPM,
#: 8.9 ms average seek, 8 MB cache, SATA-1. The paper measures 55–60 MB/s
#: maximum application-level throughput; the outer-zone media rate is set
#: to reproduce that envelope.
WD800JD = DiskSpec(
    name="WD800JD",
    capacity_bytes=80 * 10**9,
    rpm=7200.0,
    heads=4,
    num_zones=16,
    single_cylinder_seek_s=0.8 * MS,
    average_seek_s=8.9 * MS,
    outer_media_rate=60.0 * MiB,
    inner_media_rate=35.0 * MiB,
    cache_bytes=8 * MiB,
    cache_segments=16,
    read_ahead_bytes=None,
    interface_rate=150.0 * MiB,
    command_overhead_s=0.1 * MS,
    track_switch_s=0.3 * MS,
    queue_depth=4,
)

#: Base configuration for the simulation study (Section 3): a commodity
#: drive with an 8 MB cache whose segment size / count / read-ahead the
#: experiments sweep. 32 segments of 256 KiB is the neutral default.
DISKSIM_GENERIC = DiskSpec(
    name="disksim-generic",
    capacity_bytes=80 * 10**9,
    rpm=7200.0,
    heads=4,
    num_zones=16,
    single_cylinder_seek_s=0.8 * MS,
    average_seek_s=8.9 * MS,
    outer_media_rate=60.0 * MiB,
    inner_media_rate=35.0 * MiB,
    cache_bytes=8 * MiB,
    cache_segments=32,
    read_ahead_bytes=None,
    interface_rate=150.0 * MiB,
    command_overhead_s=0.1 * MS,
    track_switch_s=0.3 * MS,
    queue_depth=8,
)
