"""Mechanical timing: seeks, rotation, media transfer.

The seek model is the classic square-root curve
``seek(d) = a + b * sqrt(d)`` (d = cylinder distance, d > 0), calibrated
from two published numbers every datasheet provides: the single-cylinder
seek time and the average (random) seek time. For uniformly random start
and target cylinders the normalised distance ``x = d / C`` has density
``2(1 - x)``, whose expected ``sqrt(x)`` is ``8/15`` — that pins ``a`` and
``b`` exactly and yields a realistic full-stroke time for free.
"""

from __future__ import annotations

import enum
import math
from typing import Optional

import numpy as np

from repro.disk.geometry import DiskGeometry
from repro.units import SECTOR_BYTES

__all__ = ["Mechanics", "RotationMode", "SeekModel"]

#: E[sqrt(x)] for x with density 2(1-x) on [0,1]: the mean normalised
#: sqrt-distance of a uniformly random seek.
_EXPECTED_SQRT_DISTANCE = 8.0 / 15.0


class RotationMode(enum.Enum):
    """How rotational latency is charged on non-contiguous accesses."""

    #: Sample uniformly in [0, rotation_time) from a seeded RNG.
    UNIFORM = "uniform"
    #: Always charge the expected value, rotation_time / 2 (deterministic).
    EXPECTED = "expected"
    #: Track the platter's angular position: latency is the actual wait
    #: for the target sector to pass under the head. Deterministic and
    #: the most faithful; requires the caller to pass the current time
    #: and target LBA.
    POSITIONED = "positioned"


class SeekModel:
    """Square-root seek-time curve calibrated to datasheet numbers.

    Parameters
    ----------
    single_cylinder_time:
        Seek time for a one-cylinder move (seconds).
    average_time:
        Average seek time over uniformly random moves (seconds).
    max_cylinders:
        Total cylinder count of the drive.
    """

    def __init__(self, single_cylinder_time: float, average_time: float,
                 max_cylinders: int):
        if single_cylinder_time <= 0 or average_time <= 0:
            raise ValueError("seek times must be positive")
        if average_time < single_cylinder_time:
            raise ValueError(
                f"average seek {average_time} below single-cylinder "
                f"{single_cylinder_time}")
        if max_cylinders < 2:
            raise ValueError(f"max_cylinders must be >= 2: {max_cylinders}")
        self.max_cylinders = max_cylinders
        root_full = math.sqrt(max_cylinders)
        # Solve a + b = single (d = 1) and
        #       a + b * root_full * 8/15 = average.
        denominator = root_full * _EXPECTED_SQRT_DISTANCE - 1.0
        self._b = (average_time - single_cylinder_time) / denominator
        self._a = single_cylinder_time - self._b
        self.single_cylinder_time = single_cylinder_time
        self.average_time = average_time

    def seek_time(self, distance: int) -> float:
        """Seconds to move the head ``distance`` cylinders (0 → 0.0)."""
        if distance < 0:
            raise ValueError(f"negative seek distance: {distance}")
        if distance == 0:
            return 0.0
        return self._a + self._b * math.sqrt(distance)

    @property
    def full_stroke_time(self) -> float:
        """Seek time across the whole cylinder range."""
        return self.seek_time(self.max_cylinders - 1)

    def __repr__(self) -> str:
        return (f"<SeekModel single={self.single_cylinder_time * 1e3:.2f}ms "
                f"avg={self.average_time * 1e3:.2f}ms "
                f"full={self.full_stroke_time * 1e3:.2f}ms>")


class Mechanics:
    """Rotational and transfer timing bound to a geometry.

    Parameters
    ----------
    geometry:
        The drive's zoned layout.
    rpm:
        Spindle speed.
    seek_model:
        Calibrated :class:`SeekModel`.
    rotation_mode:
        Deterministic vs sampled rotational latency.
    seed:
        Seed for the rotational-latency RNG (UNIFORM mode).
    track_switch_time:
        Extra settle time charged per track boundary crossed during a
        multi-track media transfer.
    """

    def __init__(self, geometry: DiskGeometry, rpm: float,
                 seek_model: SeekModel,
                 rotation_mode: RotationMode = RotationMode.UNIFORM,
                 seed: Optional[int] = 0,
                 track_switch_time: float = 0.0):
        if rpm <= 0:
            raise ValueError(f"rpm must be positive, got {rpm}")
        if track_switch_time < 0:
            raise ValueError("track_switch_time must be >= 0")
        self.geometry = geometry
        self.rpm = rpm
        self.seek_model = seek_model
        self.rotation_mode = rotation_mode
        self.track_switch_time = track_switch_time
        self._rng = np.random.default_rng(seed)

    @property
    def rotation_time(self) -> float:
        """Seconds per revolution."""
        return 60.0 / self.rpm

    def rotational_latency(self, now: Optional[float] = None,
                           target_lba: Optional[int] = None) -> float:
        """Latency for a non-contiguous access (mode-dependent).

        POSITIONED mode needs the current simulated time and the target
        LBA: all platters spin in phase from t=0, so the head angle is
        ``(now / T) mod 1`` and the target sector's angle is its index
        within its track over the track's sector count.
        """
        if self.rotation_mode is RotationMode.EXPECTED:
            return self.rotation_time / 2.0
        if self.rotation_mode is RotationMode.POSITIONED:
            if now is None or target_lba is None:
                raise ValueError(
                    "POSITIONED rotation needs now and target_lba")
            return self._positioned_latency(now, target_lba)
        return float(self._rng.uniform(0.0, self.rotation_time))

    def _positioned_latency(self, now: float, target_lba: int) -> float:
        # Internal call: target_lba was validated at submit time, so use
        # the geometry's unchecked last-zone fast path.
        zone = self.geometry._zone_of_lba_unchecked(target_lba)
        sector_in_track = ((target_lba - zone.start_lba)
                           % zone.sectors_per_track)
        target_angle = sector_in_track / zone.sectors_per_track
        head_angle = (now / self.rotation_time) % 1.0
        wait_fraction = (target_angle - head_angle) % 1.0
        return wait_fraction * self.rotation_time

    def media_rate_at(self, lba: int) -> float:
        """Sustained media transfer rate (bytes/s) at ``lba``'s zone."""
        spt = self.geometry.sectors_per_track_at(lba)
        return spt * SECTOR_BYTES / self.rotation_time

    def transfer_time(self, start_lba: int, nsectors: int) -> float:
        """Media time to stream ``nsectors`` starting at ``start_lba``.

        Uses the start zone's rate for the whole span (spans crossing a
        zone boundary are rare and the rate step is small), plus track
        switch settles. Crossings are counted against *absolute* track
        boundaries, so a sequential run read in sub-track chunks pays
        the same switches as one large read.
        """
        if nsectors <= 0:
            raise ValueError(f"nsectors must be positive, got {nsectors}")
        # Hot path (once per media transfer): the drive validated the
        # range at submit, so skip the redundant LBA re-check.
        zone = self.geometry._zone_of_lba_unchecked(start_lba)
        spt = zone.sectors_per_track
        base = nsectors * self.rotation_time / spt
        # Count crossings against absolute track boundaries, including
        # the entry boundary when the run starts exactly on one — so a
        # sequential run read in chunks that tile track boundaries pays
        # the same switches as one large read.
        in_zone = start_lba - zone.start_lba
        entry_track = (in_zone - 1) // spt if in_zone > 0 else 0
        end_track = (in_zone + nsectors - 1) // spt
        return base + (end_track - entry_track) * self.track_switch_time

    def seek_between(self, from_lba: int, to_lba: int) -> float:
        """Seek time between the cylinders of two LBAs."""
        from_cyl = self.geometry.cylinder_of_lba(from_lba)
        to_cyl = self.geometry.cylinder_of_lba(to_lba)
        return self.seek_model.seek_time(abs(to_cyl - from_cyl))
