"""Segmented cache used by disks and controllers.

Real disk caches are divided into *segments*: chunks of contiguous data,
managed LRU. A read miss allocates a segment and the drive may keep reading
past the demand range to fill it (read-ahead). The cache's behaviour under
many sequential streams — each stream pinning a segment, thrashing once
streams outnumber segments — is the mechanism behind the paper's Figures
4–8, so this module tracks prefetch-efficiency statistics explicitly.

Addresses here are sectors; callers convert from bytes at the boundary.
"""

from __future__ import annotations

import itertools
from bisect import bisect_right, insort
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["CacheStats", "Segment", "SegmentedCache"]


@dataclass(slots=True)
class CacheStats:
    """Aggregate counters for one cache instance.

    ``wasted_prefetch_sectors`` counts sectors that were prefetched into a
    segment but evicted before any lookup touched them — the thrashing
    signal.
    """

    lookups: int = 0
    full_hits: int = 0
    partial_hits: int = 0
    misses: int = 0
    hit_sectors: int = 0
    inserted_sectors: int = 0
    prefetched_sectors: int = 0
    evictions: int = 0
    wasted_prefetch_sectors: int = 0
    invalidated_sectors: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups that were full hits."""
        return self.full_hits / self.lookups if self.lookups else 0.0

    @property
    def prefetch_efficiency(self) -> float:
        """Fraction of prefetched sectors not known to be wasted."""
        if not self.prefetched_sectors:
            return 1.0
        return 1.0 - self.wasted_prefetch_sectors / self.prefetched_sectors


class Segment:
    """One cache segment: a contiguous run of valid sectors.

    ``used_high`` is the high-water mark (relative to ``start``) of sectors
    returned to lookups; sectors past it at eviction time were prefetched
    for nothing.
    """

    __slots__ = ("segment_id", "start", "count", "used_high", "prefetched")

    def __init__(self, segment_id: int):
        self.segment_id = segment_id
        self.start = 0
        self.count = 0
        self.used_high = 0
        self.prefetched = 0

    @property
    def end(self) -> int:
        """One past the last valid sector."""
        return self.start + self.count

    def __repr__(self) -> str:
        return (f"<Segment#{self.segment_id} [{self.start},{self.end}) "
                f"used={self.used_high}>")


#: Bisect sentinel: sorts after any (start, segment_id) entry with the
#: same start. Built once — the coverage walk runs per simulated request.
_AFTER_ANY_ID = float("inf")


class SegmentedCache:
    """LRU cache of ``num_segments`` segments of ``segment_sectors`` each.

    Segments hold arbitrary (unaligned) contiguous sector runs: a segment
    is bound to a start sector at allocation and only ever extended at its
    end (by demand fill or read-ahead), which keeps the start-sorted index
    stable.

    The start-sorted index tolerates *tombstones*: retiring or
    invalidating a segment only drops it from the LRU dict (O(1)) and
    leaves its index entry behind to be skipped by lookups (liveness is
    one dict-membership test) and reclaimed by a periodic compaction.
    That removes the O(live-segments) ``list.remove`` the per-request
    path used to pay on every eviction — the dominant cost in the
    thrashing regime of Figures 4–8 where every miss evicts.
    """

    def __init__(self, num_segments: int, segment_sectors: int):
        if num_segments < 1:
            raise ValueError(f"num_segments must be >= 1: {num_segments}")
        if segment_sectors < 1:
            raise ValueError(
                f"segment_sectors must be >= 1: {segment_sectors}")
        self.num_segments = num_segments
        self.segment_sectors = segment_sectors
        self.stats = CacheStats()
        self._ids = itertools.count()
        #: LRU order: oldest first. Maps segment_id -> Segment. This is
        #: the source of truth for liveness; the index may lag.
        self._lru: "OrderedDict[int, Segment]" = OrderedDict()
        #: start-sorted index of segments: (start, segment_id) tuples.
        #: May contain tombstones (ids no longer in ``_lru``).
        self._index: List[Tuple[int, int]] = []
        #: Tombstoned entries currently in ``_index``.
        self._dead_entries = 0
        #: Compact once tombstones rival the live segment count.
        self._compact_threshold = num_segments // 2 + 4
        self._free_slots = num_segments

    # -- derived sizes ---------------------------------------------------------
    @property
    def capacity_sectors(self) -> int:
        """Total sectors the cache can hold."""
        return self.num_segments * self.segment_sectors

    @property
    def live_segments(self) -> int:
        """Segments currently holding data."""
        return len(self._lru)

    def cached_sectors(self) -> int:
        """Sectors currently valid across all segments."""
        return sum(seg.count for seg in self._lru.values())

    # -- lookup ------------------------------------------------------------------
    def lookup(self, start: int, nsectors: int) -> int:
        """Return how many sectors from ``start`` are cached (prefix).

        Touches the LRU position and used-high-water of every segment that
        contributes, and classifies the lookup in :attr:`stats`. Coverage
        chains across contiguous segments.
        """
        if nsectors < 1:
            raise ValueError(f"nsectors must be >= 1: {nsectors}")
        stats = self.stats
        stats.lookups += 1
        covered = self._coverage(start, nsectors, touch=True)
        if covered == nsectors:
            stats.full_hits += 1
        elif covered:
            stats.partial_hits += 1
        else:
            stats.misses += 1
        stats.hit_sectors += covered
        return covered

    def peek(self, start: int, nsectors: int) -> int:
        """Coverage check without touching LRU or stats.

        Shares :meth:`_coverage` with :meth:`lookup` — one source of
        truth for the bounded coverage walk.
        """
        return self._coverage(start, nsectors, touch=False)

    def _coverage(self, start: int, nsectors: int, touch: bool) -> int:
        """Contiguously covered prefix of ``[start, start + nsectors)``.

        One fused walk over the start-sorted index: each chained target
        re-bisects with the previous position as the lower bound (targets
        only grow), and each candidate entry is checked live-ness first
        (tombstones are skipped) then containment. With ``touch`` the
        contributing segments' LRU position and used-high-water advance,
        exactly as a drive's cache controller would on a host read.
        """
        index = self._index
        lru = self._lru
        segment_sectors = self.segment_sectors
        covered = 0
        position = 0
        while covered < nsectors:
            target = start + covered
            position = bisect_right(index, (target, _AFTER_ANY_ID),
                                    position)
            # Only segments with start in (target - segment_sectors,
            # target] can cover the target, so the backward scan is
            # bounded regardless of tombstone density.
            scan = position
            segment = None
            while scan > 0:
                entry_start, segment_id = index[scan - 1]
                if target - entry_start >= segment_sectors:
                    break
                candidate = lru.get(segment_id)
                if candidate is not None \
                        and candidate.start <= target < candidate.end:
                    segment = candidate
                    break
                scan -= 1
            if segment is None:
                break
            take = segment.end - target
            remaining = nsectors - covered
            if take > remaining:
                take = remaining
            covered += take
            if touch:
                used = target + take - segment.start
                if used > segment.used_high:
                    segment.used_high = used
                lru.move_to_end(segment.segment_id)
        return covered

    def _segment_containing(self, sector: int) -> Optional[Segment]:
        """The live segment holding ``sector``, or None (index walk)."""
        index = self._index
        lru = self._lru
        position = bisect_right(index, (sector, _AFTER_ANY_ID))
        while position > 0:
            entry_start, segment_id = index[position - 1]
            if sector - entry_start >= self.segment_sectors:
                return None
            segment = lru.get(segment_id)
            if segment is not None \
                    and segment.start <= sector < segment.end:
                return segment
            position -= 1
        return None

    # -- allocation & fill -----------------------------------------------------
    def allocate(self, start: int) -> Segment:
        """Claim a segment bound to ``start`` (evicting LRU if needed).

        Returns a *fresh* segment object every time: a reference to an
        evicted segment stays dead, so stale fills (e.g. a read-ahead
        racing an eviction) are detected instead of corrupting the cache.
        """
        if start < 0:
            raise ValueError(f"negative start sector: {start}")
        if self._free_slots > 0:
            self._free_slots -= 1
        else:
            _sid, victim = self._lru.popitem(last=False)
            self._retire(victim)
        segment = Segment(next(self._ids))
        segment.start = start
        self._lru[segment.segment_id] = segment
        index = self._index
        if not index or start >= index[-1][0]:
            # Sequential streams allocate at increasing starts: O(1)
            # append instead of an insort shift.
            index.append((start, segment.segment_id))
        else:
            insort(index, (start, segment.segment_id))
        return segment

    def fill(self, segment: Segment, nsectors: int,
             prefetch: bool = False) -> None:
        """Extend ``segment`` by ``nsectors`` of newly read data."""
        if nsectors < 0:
            raise ValueError(f"negative fill: {nsectors}")
        count = segment.count + nsectors
        if count > self.segment_sectors:
            if segment.segment_id not in self._lru:
                raise ValueError(f"fill on evicted {segment!r}")
            raise ValueError(
                f"fill overflows segment: {segment.count} + {nsectors} > "
                f"{self.segment_sectors}")
        try:
            # Doubles as the liveness check: evicted ids are gone.
            self._lru.move_to_end(segment.segment_id)
        except KeyError:
            raise ValueError(f"fill on evicted {segment!r}") from None
        segment.count = count
        self.stats.inserted_sectors += nsectors
        if prefetch:
            segment.prefetched += nsectors
            self.stats.prefetched_sectors += nsectors

    def is_live(self, segment: Segment) -> bool:
        """True while ``segment`` has not been evicted or invalidated."""
        return segment.segment_id in self._lru

    def space_left(self, segment: Segment) -> int:
        """Unwritten sectors remaining in ``segment``."""
        return self.segment_sectors - segment.count

    # -- invalidation & eviction ---------------------------------------------
    def invalidate(self, start: int, nsectors: int) -> None:
        """Drop any cached data overlapping ``[start, start + nsectors)``.

        Overlapping segments are dropped whole — disks invalidate at
        segment granularity on writes.
        """
        end = start + nsectors
        index = self._index
        lru = self._lru
        # Overlapping segments must have start in (start - segment_sectors,
        # end): anything earlier ends at or before ``start``, anything
        # later begins at or after ``end``. Bisect both bounds instead of
        # scanning every live segment.
        lo = bisect_right(index, (start - self.segment_sectors,
                                  _AFTER_ANY_ID))
        hi = bisect_right(index, (end - 1, _AFTER_ANY_ID), lo)
        victims = []
        for position in range(lo, hi):
            _entry_start, segment_id = index[position]
            segment = lru.get(segment_id)
            if segment is not None \
                    and segment.start < end and start < segment.end:
                victims.append(segment)
        for segment in victims:
            self.stats.invalidated_sectors += segment.count
            del lru[segment.segment_id]
            self._dead_entries += 1
            segment.count = 0
            self._free_slots += 1
        if victims:
            self._maybe_compact()

    def _retire(self, segment: Segment) -> None:
        """Book-keeping when LRU eviction reclaims ``segment``.

        The index entry becomes a tombstone (skipped by lookups,
        reclaimed by :meth:`_maybe_compact`) — no O(n) ``list.remove``.
        """
        self.stats.evictions += 1
        unused_prefetch = min(segment.prefetched,
                              segment.count - segment.used_high)
        if unused_prefetch > 0:
            self.stats.wasted_prefetch_sectors += unused_prefetch
        dead = self._dead_entries + 1
        self._dead_entries = dead
        if dead > self._compact_threshold:
            self._compact()

    def _maybe_compact(self) -> None:
        """Compact when tombstones exceed the threshold."""
        if self._dead_entries > self._compact_threshold:
            self._compact()

    def _compact(self) -> None:
        """Drop tombstones from the start-sorted index.

        Amortised O(1): each compaction is O(index) but only runs after
        O(num_segments) retirements, keeping both the memory footprint
        and the bounded backward scans proportional to live segments.
        """
        lru = self._lru
        self._index = [entry for entry in self._index if entry[1] in lru]
        self._dead_entries = 0

    def __repr__(self) -> str:
        return (f"<SegmentedCache {self.live_segments}/{self.num_segments} "
                f"x {self.segment_sectors} sectors>")
