"""Segmented cache used by disks and controllers.

Real disk caches are divided into *segments*: chunks of contiguous data,
managed LRU. A read miss allocates a segment and the drive may keep reading
past the demand range to fill it (read-ahead). The cache's behaviour under
many sequential streams — each stream pinning a segment, thrashing once
streams outnumber segments — is the mechanism behind the paper's Figures
4–8, so this module tracks prefetch-efficiency statistics explicitly.

Addresses here are sectors; callers convert from bytes at the boundary.
"""

from __future__ import annotations

import itertools
from bisect import bisect_right, insort
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["CacheStats", "Segment", "SegmentedCache"]


@dataclass
class CacheStats:
    """Aggregate counters for one cache instance.

    ``wasted_prefetch_sectors`` counts sectors that were prefetched into a
    segment but evicted before any lookup touched them — the thrashing
    signal.
    """

    lookups: int = 0
    full_hits: int = 0
    partial_hits: int = 0
    misses: int = 0
    hit_sectors: int = 0
    inserted_sectors: int = 0
    prefetched_sectors: int = 0
    evictions: int = 0
    wasted_prefetch_sectors: int = 0
    invalidated_sectors: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups that were full hits."""
        return self.full_hits / self.lookups if self.lookups else 0.0

    @property
    def prefetch_efficiency(self) -> float:
        """Fraction of prefetched sectors not known to be wasted."""
        if not self.prefetched_sectors:
            return 1.0
        return 1.0 - self.wasted_prefetch_sectors / self.prefetched_sectors


class Segment:
    """One cache segment: a contiguous run of valid sectors.

    ``used_high`` is the high-water mark (relative to ``start``) of sectors
    returned to lookups; sectors past it at eviction time were prefetched
    for nothing.
    """

    __slots__ = ("segment_id", "start", "count", "used_high", "prefetched")

    def __init__(self, segment_id: int):
        self.segment_id = segment_id
        self.start = 0
        self.count = 0
        self.used_high = 0
        self.prefetched = 0

    @property
    def end(self) -> int:
        """One past the last valid sector."""
        return self.start + self.count

    def __repr__(self) -> str:
        return (f"<Segment#{self.segment_id} [{self.start},{self.end}) "
                f"used={self.used_high}>")


class SegmentedCache:
    """LRU cache of ``num_segments`` segments of ``segment_sectors`` each.

    Segments hold arbitrary (unaligned) contiguous sector runs: a segment
    is bound to a start sector at allocation and only ever extended at its
    end (by demand fill or read-ahead), which keeps the start-sorted index
    stable.
    """

    def __init__(self, num_segments: int, segment_sectors: int):
        if num_segments < 1:
            raise ValueError(f"num_segments must be >= 1: {num_segments}")
        if segment_sectors < 1:
            raise ValueError(
                f"segment_sectors must be >= 1: {segment_sectors}")
        self.num_segments = num_segments
        self.segment_sectors = segment_sectors
        self.stats = CacheStats()
        self._ids = itertools.count()
        #: LRU order: oldest first. Maps segment_id -> Segment.
        self._lru: "OrderedDict[int, Segment]" = OrderedDict()
        #: start-sorted index of live segments: (start, segment_id) tuples.
        self._index: List[Tuple[int, int]] = []
        self._free_slots = num_segments

    # -- derived sizes ---------------------------------------------------------
    @property
    def capacity_sectors(self) -> int:
        """Total sectors the cache can hold."""
        return self.num_segments * self.segment_sectors

    @property
    def live_segments(self) -> int:
        """Segments currently holding data."""
        return len(self._lru)

    def cached_sectors(self) -> int:
        """Sectors currently valid across all segments."""
        return sum(seg.count for seg in self._lru.values())

    # -- lookup ------------------------------------------------------------------
    def lookup(self, start: int, nsectors: int) -> int:
        """Return how many sectors from ``start`` are cached (prefix).

        Touches the LRU position and used-high-water of every segment that
        contributes, and classifies the lookup in :attr:`stats`. Coverage
        chains across contiguous segments.
        """
        if nsectors < 1:
            raise ValueError(f"nsectors must be >= 1: {nsectors}")
        self.stats.lookups += 1
        covered = 0
        while covered < nsectors:
            segment = self._segment_containing(start + covered)
            if segment is None:
                break
            take = min(segment.end - (start + covered), nsectors - covered)
            covered += take
            segment.used_high = max(segment.used_high,
                                    start + covered - segment.start)
            self._lru.move_to_end(segment.segment_id)
        if covered == nsectors:
            self.stats.full_hits += 1
        elif covered:
            self.stats.partial_hits += 1
        else:
            self.stats.misses += 1
        self.stats.hit_sectors += covered
        return covered

    def peek(self, start: int, nsectors: int) -> int:
        """Coverage check without touching LRU or stats."""
        covered = 0
        while covered < nsectors:
            segment = self._segment_containing(start + covered)
            if segment is None:
                break
            covered += min(segment.end - (start + covered),
                           nsectors - covered)
        return covered

    def _segment_containing(self, sector: int) -> Optional[Segment]:
        # Only segments with start in (sector - segment_sectors, sector]
        # can cover the sector, so the backward scan is bounded.
        position = bisect_right(self._index, (sector, float("inf")))
        while position > 0:
            start, segment_id = self._index[position - 1]
            if sector - start >= self.segment_sectors:
                return None
            segment = self._lru[segment_id]
            if segment.start <= sector < segment.end:
                return segment
            position -= 1
        return None

    # -- allocation & fill -----------------------------------------------------
    def allocate(self, start: int) -> Segment:
        """Claim a segment bound to ``start`` (evicting LRU if needed).

        Returns a *fresh* segment object every time: a reference to an
        evicted segment stays dead, so stale fills (e.g. a read-ahead
        racing an eviction) are detected instead of corrupting the cache.
        """
        if start < 0:
            raise ValueError(f"negative start sector: {start}")
        if self._free_slots > 0:
            self._free_slots -= 1
        else:
            _sid, victim = self._lru.popitem(last=False)
            self._retire(victim)
        segment = Segment(next(self._ids))
        segment.start = start
        self._lru[segment.segment_id] = segment
        insort(self._index, (start, segment.segment_id))
        return segment

    def fill(self, segment: Segment, nsectors: int,
             prefetch: bool = False) -> None:
        """Extend ``segment`` by ``nsectors`` of newly read data."""
        if nsectors < 0:
            raise ValueError(f"negative fill: {nsectors}")
        if segment.segment_id not in self._lru:
            raise ValueError(f"fill on evicted {segment!r}")
        if segment.count + nsectors > self.segment_sectors:
            raise ValueError(
                f"fill overflows segment: {segment.count} + {nsectors} > "
                f"{self.segment_sectors}")
        segment.count += nsectors
        self.stats.inserted_sectors += nsectors
        if prefetch:
            segment.prefetched += nsectors
            self.stats.prefetched_sectors += nsectors
        self._lru.move_to_end(segment.segment_id)

    def is_live(self, segment: Segment) -> bool:
        """True while ``segment`` has not been evicted or invalidated."""
        return segment.segment_id in self._lru

    def space_left(self, segment: Segment) -> int:
        """Unwritten sectors remaining in ``segment``."""
        return self.segment_sectors - segment.count

    # -- invalidation & eviction ---------------------------------------------
    def invalidate(self, start: int, nsectors: int) -> None:
        """Drop any cached data overlapping ``[start, start + nsectors)``.

        Overlapping segments are dropped whole — disks invalidate at
        segment granularity on writes.
        """
        end = start + nsectors
        victims = [seg for seg in self._lru.values()
                   if seg.start < end and start < seg.end]
        for segment in victims:
            self.stats.invalidated_sectors += segment.count
            del self._lru[segment.segment_id]
            self._index.remove((segment.start, segment.segment_id))
            segment.count = 0
            self._free_slots += 1

    def _retire(self, segment: Segment) -> None:
        """Book-keeping when LRU eviction reclaims ``segment``."""
        self.stats.evictions += 1
        unused_prefetch = min(segment.prefetched,
                              segment.count - segment.used_high)
        if unused_prefetch > 0:
            self.stats.wasted_prefetch_sectors += unused_prefetch
        self._index.remove((segment.start, segment.segment_id))

    def __repr__(self) -> str:
        return (f"<SegmentedCache {self.live_segments}/{self.num_segments} "
                f"x {self.segment_sectors} sectors>")
