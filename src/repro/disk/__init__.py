"""Disk drive model (DiskSim substitute).

Implements an analytic-mechanics disk drive with:

* zoned geometry — outer zones hold more sectors per track and therefore
  transfer faster (:mod:`repro.disk.geometry`);
* a three-parameter seek-time curve, rotational latency, and zoned media
  transfer (:mod:`repro.disk.mechanics`);
* a **segmented on-disk cache** with per-segment read-ahead — the structure
  whose thrashing the paper analyses in Figures 4–7
  (:mod:`repro.disk.cache`);
* an internal request queue with pluggable scheduling (FCFS/SSTF/LOOK)
  (:mod:`repro.disk.queue`);
* the :class:`~repro.disk.drive.DiskDrive` tying these together behind the
  :class:`~repro.io.BlockDevice` protocol;
* spec presets, including the paper's WD Caviar SE WD800JD
  (:mod:`repro.disk.specs`).
"""

from repro.disk.cache import CacheStats, SegmentedCache
from repro.disk.drive import DiskDrive, DriveConfig
from repro.disk.geometry import DiskGeometry, Zone
from repro.disk.mechanics import Mechanics, RotationMode, SeekModel
from repro.disk.queue import (
    FCFSPolicy,
    LookPolicy,
    QueuePolicy,
    SSTFPolicy,
    make_policy,
)
from repro.disk.specs import DISKSIM_GENERIC, WD800JD, DiskSpec

__all__ = [
    "CacheStats",
    "DISKSIM_GENERIC",
    "DiskDrive",
    "DiskGeometry",
    "DiskSpec",
    "DriveConfig",
    "FCFSPolicy",
    "LookPolicy",
    "Mechanics",
    "QueuePolicy",
    "RotationMode",
    "SSTFPolicy",
    "SeekModel",
    "WD800JD",
    "Zone",
    "make_policy",
]
