"""The disk drive: queue + mechanics + segmented cache + interface.

Timing model (see DESIGN.md §4):

* A **cache hit** bypasses the mechanics entirely: the request pays command
  overhead plus an interface transfer (shared SATA pipe).
* A **miss** holds the head (one mechanical timeline per drive): seek to the
  missing range's cylinder, rotational latency (zero when the media position
  is already contiguous), media transfer at the zone's rate, then the drive
  keeps reading into the allocated cache segment (read-ahead) *while still
  holding the head* — the demand portion completes to the host in parallel.

That last point is what lets a single sequential stream run at full media
rate with synchronous requests, while many interleaved streams pay a seek
per segment fill — the phenomenon the paper studies.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional

from repro import obs
from repro.disk.cache import SegmentedCache
from repro.disk.geometry import DiskGeometry
from repro.disk.mechanics import Mechanics, RotationMode, SeekModel
from repro.disk.queue import QueuePolicy, make_policy
from repro.disk.specs import DiskSpec
from repro.io import IOKind, IORequest
from repro.sim import Pipe, Simulator
from repro.sim.events import Event
from repro.sim.stats import StatsRegistry
from repro.units import SECTOR_BYTES

__all__ = ["DiskDrive", "DriveConfig"]


@dataclass
class DriveConfig:
    """Runtime configuration for a :class:`DiskDrive`.

    Attributes
    ----------
    scheduler:
        Internal queue policy name: 'fcfs', 'sstf' or 'look'.
    rotation_mode:
        Deterministic (EXPECTED) or sampled (UNIFORM) rotational latency.
    seed:
        RNG seed for sampled rotational latency.
    trace:
        Optional :class:`repro.sim.trace.Tracer`.
    """

    scheduler: str = "look"
    rotation_mode: RotationMode = RotationMode.UNIFORM
    seed: Optional[int] = 0
    trace: object = None


class _Queued:
    """A pending command: request + completion event + cached geometry.

    ``cylinder``, ``start_lba`` and ``nsectors`` are computed once at
    submit time — the policy select reads ``cylinder`` on every service
    iteration and ``_service`` consumes the LBA range, so neither pays
    the byte→sector conversion or cylinder mapping again.
    """

    __slots__ = ("request", "event", "cylinder", "start_lba", "nsectors")

    def __init__(self, request: IORequest, event: Event, cylinder: int,
                 start_lba: int, nsectors: int):
        self.request = request
        self.event = event
        self.cylinder = cylinder
        self.start_lba = start_lba
        self.nsectors = nsectors


class DiskDrive:
    """A single disk drive implementing :class:`repro.io.BlockDevice`.

    Parameters
    ----------
    sim:
        Owning simulator.
    spec:
        Static drive description (geometry, seek curve, cache layout...).
    config:
        Runtime knobs; defaults are sensible.
    name:
        Label for stats/tracing (default: spec name).
    """

    __slots__ = (
        "sim", "spec", "config", "name", "geometry", "mechanics", "cache",
        "interface", "stats", "_active", "_waiting", "_policy",
        "_head_cylinder", "_media_end_lba", "_worker_running", "busy_time",
        "_tail_segment", "_idle_credit", "_idle_chunk_sectors", "_dirty",
        "_dirty_sectors", "_flush_waiters", "_hit_name", "_done_name",
        "_wce_name", "_worker_name", "_capacity_bytes", "_cmd_overhead",
        "_cylinder_of_lba", "_c_completed", "_l_latency",
        "_c_media_read", "_c_media_write", "_c_readahead", "_c_seeks",
        "_l_seek_time", "_obs", "_obs_on",
    )

    def __init__(self, sim: Simulator, spec: DiskSpec,
                 config: Optional[DriveConfig] = None, name: str = ""):
        self.sim = sim
        self.spec = spec
        self.config = config or DriveConfig()
        self.name = name or spec.name
        outer_spt = max(
            1, round(spec.outer_media_rate * spec.rotation_time_s
                     / SECTOR_BYTES))
        inner_spt = max(
            1, round(spec.inner_media_rate * spec.rotation_time_s
                     / SECTOR_BYTES))
        self.geometry = DiskGeometry.from_capacity(
            spec.capacity_bytes, heads=spec.heads,
            num_zones=spec.num_zones, outer_spt=outer_spt,
            inner_spt=inner_spt)
        self.mechanics = Mechanics(
            self.geometry, rpm=spec.rpm,
            seek_model=SeekModel(spec.single_cylinder_seek_s,
                                 spec.average_seek_s,
                                 self.geometry.cylinders),
            rotation_mode=self.config.rotation_mode,
            seed=self.config.seed,
            track_switch_time=spec.track_switch_s)
        segment_sectors = max(1, spec.segment_bytes // SECTOR_BYTES)
        self.cache = SegmentedCache(num_segments=spec.cache_segments,
                                    segment_sectors=segment_sectors)
        self.interface = Pipe(sim, bandwidth=spec.interface_rate,
                              name=f"{self.name}.sata")
        self.stats = StatsRegistry()
        # Commands the firmware can reorder (bounded by spec.queue_depth)...
        self._active: List[_Queued] = []
        # ...and the FIFO backlog behind them (host/driver queue).
        self._waiting: deque[_Queued] = deque()
        self._policy: QueuePolicy = make_policy(self.config.scheduler)
        self._head_cylinder = 0
        self._media_end_lba: Optional[int] = None
        self._worker_running = False
        self.busy_time = 0.0
        # Idle-time sequential prefetch state: the segment at the media
        # position (if any) and a credit that allows at most one idle
        # segment per serviced command or cache hit (prevents runaway
        # prefetch when the host stops reading).
        self._tail_segment = None
        self._idle_credit = 0
        self._idle_chunk_sectors = max(
            1, (64 * 1024) // SECTOR_BYTES)
        # Write-back cache state: FIFO of dirty (start_lba, nsectors)
        # runs awaiting background destage, and flush barriers.
        self._dirty: deque[tuple[int, int]] = deque()
        self._dirty_sectors = 0
        self._flush_waiters: List[Event] = []
        # Per-request event/process names, precomputed once: the f-string
        # per submit/complete was measurable across millions of requests,
        # and the request object on the event carries the identifying id.
        self._hit_name = f"{self.name}.hit"
        self._done_name = f"{self.name}.done"
        self._wce_name = f"{self.name}.wce"
        self._worker_name = f"{self.name}.worker"
        # Hot-path metric objects, resolved once: StatsRegistry.counter()
        # is a dict probe + method call per update, and completions alone
        # touch two metrics per request.
        self._capacity_bytes = self.geometry.capacity_bytes
        self._cmd_overhead = spec.command_overhead_s
        #: bound once — the attribute chain per mapping was measurable
        self._cylinder_of_lba = self.geometry.cylinder_of_lba
        stats = self.stats
        self._c_completed = stats.counter("completed")
        self._l_latency = stats.latency("latency")
        self._c_media_read = stats.counter("media_read")
        self._c_media_write = stats.counter("media_write")
        self._c_readahead = stats.counter("readahead")
        self._c_seeks = stats.counter("seeks")
        self._l_seek_time = stats.latency("seek_time")
        # Ambient observability, captured once; every hook below guards
        # on the cached boolean so the default path is unchanged.
        self._obs = obs.current()
        self._obs_on = self._obs.enabled
        if self._obs_on:
            telemetry = self._obs.telemetry_for(sim)
            if telemetry is not None \
                    and f"disk.{self.name}.queue_length" \
                    not in telemetry.series:
                telemetry.watch_drive(self)
                telemetry.start()

    # -- BlockDevice protocol -------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        """Addressable bytes (actual fitted geometry, ≈ spec capacity)."""
        return self.geometry.capacity_bytes

    def submit(self, request: IORequest) -> Event:
        """Queue ``request``; returns its completion event.

        Read requests fully covered by the cache complete without touching
        the mechanics (fast path).
        """
        # Alignment is enforced by IORequest.__post_init__, so plain
        # floor division replaces the re-validating sectors() helper on
        # this once-per-request path.
        offset = request.offset
        size = request.size
        start_lba = offset // SECTOR_BYTES
        nsectors = size // SECTOR_BYTES
        if offset + size > self._capacity_bytes:
            raise ValueError(
                f"{request!r} beyond capacity {self._capacity_bytes}")
        sim = self.sim
        if request.submit_time == 0.0:  # inlined stamp_submit()
            request.submit_time = sim.now
        event = sim.event("io")
        is_read = request.kind is IOKind.READ  # inlined is_read property
        if self._obs_on:
            # Structural span for the drive residency; phase spans
            # (queue/seek/rotate/transfer/complete/cache-hit) tile it.
            span = self._obs.begin_child(request, "disk.request", "disk",
                                         sim.now, args={"disk": self.name})
            request.annotations["obs.disk"] = span
            self._obs.link(request, span)
        if is_read and (
                self.cache.lookup(start_lba, nsectors) == nsectors
                or (self._dirty
                    and self._dirty_covers(start_lba, nsectors))):
            request.annotations["disk.hit"] = "submit"
            self.sim.process(self._complete(request, event),
                             name=self._hit_name)
            # A consuming stream re-arms idle read-ahead.
            self._idle_credit = 1
            self._kick_worker()
            return event
        if not is_read and self._absorb_write(request, event,
                                                      start_lba, nsectors):
            return event
        if self._obs_on:
            request.annotations["obs.diskq"] = self._obs.begin_child(
                request, "disk.queue", "disk", sim.now)
        queued = _Queued(request, event,
                         self._cylinder_of_lba(start_lba),
                         start_lba, nsectors)
        self._waiting.append(queued)
        self._kick_worker()
        return event

    def _kick_worker(self) -> None:
        if not self._worker_running:
            self._worker_running = True
            self.sim.process(self._worker(), name=self._worker_name)

    def _dirty_covers(self, start_lba: int, nsectors: int) -> bool:
        """Whole range inside one not-yet-destaged dirty run? (WCE
        drives serve such reads from the write buffer.)"""
        return any(run_start <= start_lba
                   and start_lba + nsectors <= run_start + run_len
                   for run_start, run_len in self._dirty)

    def _absorb_write(self, request: IORequest, event: Event,
                      start_lba: int, nsectors: int) -> bool:
        """Write-back fast path: absorb the write into the dirty buffer.

        Returns False (caller queues a media write) when write caching is
        off or the dirty budget is exhausted.
        """
        budget = self.spec.write_cache_bytes // SECTOR_BYTES
        if budget <= 0 or self._dirty_sectors + nsectors > budget:
            return False
        self.cache.invalidate(start_lba, nsectors)
        self._dirty.append((start_lba, nsectors))
        self._dirty_sectors += nsectors
        request.annotations["disk.wce"] = True
        self.stats.counter("write_absorbed").add(request.size)
        self.sim.process(self._complete(request, event),
                         name=self._wce_name)
        self._kick_worker()
        return True

    def flush(self) -> Event:
        """Barrier: fires once all dirty write data has reached media."""
        event = self.sim.event(name=f"{self.name}.flush")
        if not self._dirty:
            event.succeed()
        else:
            self._flush_waiters.append(event)
            self._kick_worker()
        return event

    @property
    def queue_length(self) -> int:
        """Currently pending (not yet serviced) commands."""
        return len(self._waiting) + len(self._active)

    # -- service paths -----------------------------------------------------------
    def _worker(self):
        """Mechanical timeline: service pending commands one at a time.

        The firmware only reorders within its small internal queue
        (``spec.queue_depth`` commands); the backlog drains into it FIFO.
        This bounded reorder window is what makes cache segments mortal
        under many streams — with an unbounded window the head would
        always favour the freshly prefetched stream and segments would
        never thrash.
        """
        sim = self.sim
        waiting = self._waiting
        active = self._active
        select = self._policy.select
        select_one = self._policy.select_one
        queue_depth = self.spec.queue_depth
        pop_waiting = waiting.popleft
        push_active = active.append
        while True:
            if waiting or active:
                while waiting and len(active) < queue_depth:
                    push_active(pop_waiting())
                if len(active) == 1:
                    # Sole candidate: every policy picks index 0; only
                    # its selection side effects (LOOK's sweep
                    # direction) still need to run.
                    queued = active.pop()
                    select_one(queued.cylinder, self._head_cylinder)
                else:
                    index = select([q.cylinder for q in active],
                                   self._head_cylinder)
                    queued = active.pop(index)
                started = sim.now
                yield from self._service(queued)
                self.busy_time += sim.now - started
                self._idle_credit = 1
            elif self._dirty:
                # Destage dirty write data at lower priority than reads.
                started = self.sim.now
                yield from self._destage_one()
                self.busy_time += self.sim.now - started
            elif self._idle_credit > 0 and self._can_idle_prefetch():
                started = self.sim.now
                yield from self._idle_prefetch()
                self.busy_time += self.sim.now - started
            else:
                break
        self._worker_running = False

    def _destage_one(self):
        """Write the oldest dirty run to media and release its budget."""
        start_lba, nsectors = self._dirty.popleft()
        yield from self._position(start_lba)
        yield self.sim.timeout(
            self.mechanics.transfer_time(start_lba, nsectors))
        self._advance_media(start_lba, nsectors)
        self._dirty_sectors -= nsectors
        self.stats.counter("media_write").add(nsectors * SECTOR_BYTES)
        self.stats.counter("destaged").add(nsectors * SECTOR_BYTES)
        if not self._dirty and self._flush_waiters:
            waiters, self._flush_waiters = self._flush_waiters, []
            for waiter in waiters:
                waiter.succeed()

    def _can_idle_prefetch(self) -> bool:
        """True when the tail segment can be extended into a new one."""
        if self.spec.read_ahead_bytes == 0 or self._media_end_lba is None:
            return False
        tail = self._tail_segment
        return (tail is not None and self.cache.is_live(tail)
                and tail.end == self._media_end_lba)

    def _idle_prefetch(self):
        """Continue sequential read-ahead while the queue is idle.

        Reads one further segment in interruptible chunks: a command
        arriving mid-prefetch stops the run at the next chunk boundary —
        real firmware aborts read-ahead for new work the same way.
        """
        self._idle_credit = 0
        start = self._media_end_lba
        remaining = min(self.cache.segment_sectors,
                        self.geometry.total_sectors - start)
        if remaining <= 0:
            return
        segment = self.cache.allocate(start)
        self._tail_segment = segment
        while remaining > 0 and not (self._waiting or self._active):
            chunk = min(self._idle_chunk_sectors, remaining)
            yield self.sim.timeout(
                self.mechanics.transfer_time(self._media_end_lba, chunk))
            if not self.cache.is_live(segment):
                return
            self.cache.fill(segment, chunk, prefetch=True)
            self._advance_media(self._media_end_lba, chunk)
            self._c_readahead.add(chunk * SECTOR_BYTES)
            remaining -= chunk

    def _service(self, queued: _Queued):
        request = queued.request
        start_lba = queued.start_lba
        nsectors = queued.nsectors
        if self._obs_on:
            span = request.annotations.pop("obs.diskq", None)
            if span is not None:
                self._obs.spans.end(span, self.sim.now)
        if request.is_read:
            yield from self._service_read(request, queued.event,
                                          start_lba, nsectors)
        else:
            yield from self._service_write(request, queued.event,
                                           start_lba, nsectors)

    def _service_read(self, request: IORequest, event: Event,
                      start_lba: int, nsectors: int):
        sim = self.sim
        covered = self.cache.lookup(start_lba, nsectors)
        if covered == nsectors:
            # Filled (e.g. by read-ahead) while waiting in the queue.
            request.annotations["disk.hit"] = "queue"
            sim.process(self._complete(request, event),
                        name=self._hit_name)
            return
        missing_start = start_lba + covered
        missing = nsectors - covered
        yield from self._position(missing_start, request=request)
        transfer = self.mechanics.transfer_time(missing_start, missing)
        if self._obs_on:
            span = self._obs.begin_child(
                request, "disk.transfer", "disk", sim.now,
                args={"sectors": missing})
            yield sim.timeout(transfer)
            self._obs.spans.end(span, sim.now)
        else:
            yield sim.timeout(transfer)
        self._advance_media(missing_start, missing)
        segment = self._insert_demand(missing_start, missing)
        self._tail_segment = segment
        self._c_media_read.add(missing * SECTOR_BYTES)
        # Demand satisfied: complete to the host while read-ahead continues.
        # The interface transfer overlapped the (slower) media read.
        sim.process(self._complete(request, event,
                                   charge_interface=False),
                    name=self._done_name)
        if segment is not None:
            yield from self._read_ahead(segment, request=request)

    def _service_write(self, request: IORequest, event: Event,
                       start_lba: int, nsectors: int):
        self.cache.invalidate(start_lba, nsectors)
        yield from self._position(start_lba, request=request)
        transfer = self.mechanics.transfer_time(start_lba, nsectors)
        if self._obs_on:
            span = self._obs.begin_child(
                request, "disk.transfer", "disk", self.sim.now,
                args={"sectors": nsectors})
            yield self.sim.timeout(transfer)
            self._obs.spans.end(span, self.sim.now)
        else:
            yield self.sim.timeout(transfer)
        self._advance_media(start_lba, nsectors)
        self._c_media_write.add(nsectors * SECTOR_BYTES)
        self.sim.process(self._complete(request, event),
                         name=self._done_name)

    def _position(self, target_lba: int,
                  request: Optional[IORequest] = None):
        """Seek + rotational latency to reach ``target_lba``.

        In POSITIONED rotation mode the rotational wait is computed
        *after* the seek completes — the platter kept spinning while the
        arm moved. ``request`` (when tracing) hangs the seek/rotate
        phase spans off the request's drive span; destage and idle
        prefetch position without one.
        """
        if self._media_end_lba == target_lba:
            # Head is already streaming here: no seek, no rotation.
            return
        sim = self.sim
        mechanics = self.mechanics
        target_cylinder = self._cylinder_of_lba(target_lba)
        distance = abs(target_cylinder - self._head_cylinder)
        seek = mechanics.seek_model.seek_time(distance)
        self._c_seeks.add()
        self._l_seek_time.observe(seek)
        traced = self._obs_on and request is not None
        if seek > 0:
            if traced:
                span = self._obs.begin_child(
                    request, "disk.seek", "disk", sim.now,
                    args={"cylinders": distance})
                yield sim.timeout(seek)
                self._obs.spans.end(span, sim.now)
            else:
                yield sim.timeout(seek)
        if self.config.rotation_mode is RotationMode.POSITIONED:
            rotation = mechanics.rotational_latency(
                now=sim.now, target_lba=target_lba)
        else:
            rotation = mechanics.rotational_latency()
        if rotation > 0:
            if traced:
                span = self._obs.begin_child(request, "disk.rotate",
                                             "disk", sim.now)
                yield sim.timeout(rotation)
                self._obs.spans.end(span, sim.now)
            else:
                yield sim.timeout(rotation)

    def _advance_media(self, start_lba: int, nsectors: int) -> None:
        end = start_lba + nsectors
        self._media_end_lba = end if end < self.geometry.total_sectors \
            else None
        last = min(end, self.geometry.total_sectors) - 1
        self._head_cylinder = self._cylinder_of_lba(last)

    def _insert_demand(self, start_lba: int, nsectors: int):
        """Cache the demand data; returns the segment for read-ahead.

        When the demand exceeds one segment, only the tail fits — that is
        the part a sequential stream will extend, so keep it.
        """
        capacity = self.cache.segment_sectors
        if nsectors >= capacity:
            segment = self.cache.allocate(start_lba + nsectors - capacity)
            self.cache.fill(segment, capacity)
            return segment
        segment = self.cache.allocate(start_lba)
        self.cache.fill(segment, nsectors)
        return segment

    def _read_ahead(self, segment, request: Optional[IORequest] = None):
        """Continue reading into ``segment`` while holding the head."""
        if self._media_end_lba is None:
            return
        space = self.cache.space_left(segment)
        target = self.spec.read_ahead_bytes
        if target is not None:
            space = min(space, target // SECTOR_BYTES)
        space = min(space,
                    self.geometry.total_sectors - self._media_end_lba)
        if space <= 0:
            return
        start = self._media_end_lba
        if segment.end != start:
            # Demand was tail-inserted from a multi-segment read and the
            # segment is full, or positions diverged: nothing to extend.
            return
        transfer = self.mechanics.transfer_time(start, space)
        span = None
        if self._obs_on and request is not None:
            # Overlaps the demand completion (the head keeps reading
            # while the host is answered), so attribution ignores it —
            # it exists for the timeline view.
            span = self._obs.begin_child(request, "disk.readahead",
                                         "disk", self.sim.now,
                                         args={"sectors": space})
        yield self.sim.timeout(transfer)
        if span is not None:
            self._obs.spans.end(span, self.sim.now)
        self._advance_media(start, space)
        if self.cache.is_live(segment):
            self.cache.fill(segment, space, prefetch=True)
        self._c_readahead.add(space * SECTOR_BYTES)

    def _complete(self, request: IORequest, event: Event,
                  charge_interface: bool = True):
        """Command overhead (+ interface transfer), then fire completion.

        Misses skip the interface charge: the transfer streams off the
        platter concurrently with the media read, and the interface is
        always faster than the media here.
        """
        sim = self.sim
        phase = None
        if self._obs_on:
            annotations = request.annotations
            if "disk.hit" in annotations:
                name = "disk.cachehit"
            elif "disk.wce" in annotations:
                name = "disk.wce"
            else:
                name = "disk.complete"
            phase = self._obs.begin_child(request, name, "disk", sim.now)
        yield sim.timeout(self._cmd_overhead)
        if charge_interface:
            yield from self.interface.transfer(request.size)
        request.complete_time = sim.now
        self._c_completed.add(request.size)
        self._l_latency.observe(request.latency)
        if phase is not None:
            self._obs.spans.end(phase, sim.now)
            span = request.annotations.pop("obs.disk", None)
            if span is not None:
                self._obs.spans.end(span, sim.now)
        if self.config.trace is not None:
            self.config.trace.emit(sim.now, self.name, "complete",
                                   (request.request_id, request.offset,
                                    request.size))
        event.succeed(request)

    # -- reporting ------------------------------------------------------------------
    def throughput(self, elapsed: float) -> float:
        """Completed bytes per second over ``elapsed`` seconds."""
        return self.stats.counter("completed").throughput(elapsed)

    def __repr__(self) -> str:
        return (f"<DiskDrive {self.name!r} "
                f"{self.capacity_bytes / 1e9:.1f} GB "
                f"pending={self.queue_length}>")
