"""The paper's contribution: a host-level stream-aware storage server.

The server transparently (1) detects sequential streams with small
dynamically-allocated region bitmaps, (2) coalesces each stream's small
requests into large read-ahead requests of size ``R`` issued from a bounded
*dispatch set* of ``D`` streams (``N`` requests per residency, round-robin
rotation), and (3) stages prefetched data in a memory-bounded *buffered
set* (``M ≥ D·R·N``) from which client requests complete.

Public surface: :class:`~repro.core.server.StreamServer` +
:class:`~repro.core.params.ServerParams`.
"""

from repro.core.bitmap import BitmapTable, RegionBitmap
from repro.core.buffered_set import BufferedSet, StreamBuffer
from repro.core.classifier import SequentialClassifier
from repro.core.dispatch import DispatchSet
from repro.core.params import ServerParams
from repro.core.policies import (
    OffsetAwarePolicy,
    ReplacementPolicy,
    RoundRobinPolicy,
    make_replacement_policy,
)
from repro.core.server import StreamServer
from repro.core.static_bitmap import CoarseBitmapClassifier
from repro.core.stream import StreamQueue, StreamState
from repro.core.writeback import WriteCoalescer, WriteCoalescerParams

__all__ = [
    "BitmapTable",
    "BufferedSet",
    "CoarseBitmapClassifier",
    "DispatchSet",
    "OffsetAwarePolicy",
    "RegionBitmap",
    "ReplacementPolicy",
    "RoundRobinPolicy",
    "SequentialClassifier",
    "ServerParams",
    "StreamBuffer",
    "StreamQueue",
    "StreamServer",
    "StreamState",
    "WriteCoalescer",
    "WriteCoalescerParams",
    "make_replacement_policy",
]
