"""Periodic garbage collection for the storage server.

The paper's Section 4.3: "a periodic thread garbage collects I/O buffers
allocated to streams that are inactive, as well as hash entries and stream
queues that, although classified as sequential, have not received a large
number of sequential requests."
"""

from __future__ import annotations

import typing

from repro import obs

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.server import StreamServer

__all__ = ["GarbageCollector"]


class GarbageCollector:
    """Drives periodic reclamation; self-terminates when nothing lives.

    The collector process runs only while the server holds state (live
    streams, staged buffers, region bitmaps) so an idle simulation can
    drain its event heap instead of ticking forever.
    """

    def __init__(self, server: "StreamServer"):
        self.server = server
        self.running = False
        self.cycles = 0
        self.buffers_reclaimed_bytes = 0
        self.streams_dropped = 0
        self._obs = obs.current()
        self._obs_on = self._obs.enabled

    def ensure_running(self) -> None:
        """Start the collector loop if it is not already alive."""
        if self.running:
            return
        self.running = True
        self.server.sim.process(self._loop(), name="server.gc")

    def _has_work(self) -> bool:
        server = self.server
        return bool(server.classifier.streams
                    or len(server.buffered)
                    or server.classifier.bitmaps.live_count)

    def _idle_streams(self, now: float):
        """Streams idle past the timeout, in reference drop order.

        :class:`~repro.core.classifier.SequentialClassifier` tracks
        streams in activity order, so the scan touches only idle
        streams; duck-typed classifier replacements without that index
        fall back to the full scan over ``streams``.
        """
        classifier = self.server.classifier
        timeout = self.server.params.stream_timeout
        candidates = getattr(classifier, "idle_candidates", None)
        if candidates is not None:
            return candidates(now, timeout)
        return [stream for stream in list(classifier.streams.values())
                if now - stream.last_activity >= timeout]

    def _loop(self):
        server = self.server
        params = server.params
        while self._has_work():
            yield server.sim.timeout(params.gc_period)
            now = server.sim.now
            self.cycles += 1
            reclaimed = server.buffered.collect(now, params.buffer_timeout)
            self.buffers_reclaimed_bytes += reclaimed
            if self._obs_on:
                self._obs.spans.instant(
                    "gc.cycle", "mark", now,
                    args={"reclaimed": reclaimed,
                          "in_use": server.buffered.in_use})
            server.classifier.expire_bitmaps(now)
            for stream in self._idle_streams(now):
                if stream.has_demand:
                    continue
                # Quiet stream: reclaim everything it holds.
                server.buffered.release_stream(stream.stream_id)
                server.dispatch.rotate_out(stream)
                server.dispatch.drop_waiting(stream)
                server.classifier.drop_stream(stream)
                self.streams_dropped += 1
        self.running = False
