"""Server parameters: the paper's D, R, N, M plus classifier/GC knobs.

The paper names four tunables and one invariant:

* ``R`` — read-ahead: bytes fetched per disk request for a dispatched
  stream;
* ``D`` — dispatch set size: streams issuing disk requests concurrently;
* ``N`` — requests each stream issues per dispatch-set residency;
* ``M`` — host memory devoted to I/O buffering, with ``M ≥ D·R·N``.

``ServerParams`` validates the invariant and derives whichever of ``D``
is left implicit, and :meth:`ServerParams.autotune` implements the
paper's "statically adjust to the storage node configuration" rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.units import KiB, MiB, SECTOR_BYTES

__all__ = ["ServerParams"]


@dataclass(frozen=True)
class ServerParams:
    """Complete configuration of a :class:`~repro.core.server.StreamServer`.

    Attributes
    ----------
    read_ahead:
        R — bytes per coalesced disk request. 0 disables coalescing
        entirely (requests pass through; useful as a baseline).
    dispatch_width:
        D — concurrent dispatched streams. ``None`` derives
        ``M // (R * N)`` at construction.
    requests_per_residency:
        N — disk requests a stream issues before round-robin rotation.
    memory_budget:
        M — bytes of host memory for the buffered set.
    classifier_block:
        Bitmap granularity (one bit per block of this many bytes).
    classifier_window_blocks:
        The paper's ``offset``: a bitmap covers ``[B - w, B + w]`` blocks
        around the first request's block ``B``.
    classifier_threshold:
        Set-bit count that declares a region sequential.
    classifier_interval:
        Proximity-in-time horizon: bitmaps older than this are recycled
        without having detected anything.
    gap_tolerance:
        Bytes of forward skip a request may have from a stream's expected
        next offset and still belong to it (0 = strictly sequential; the
        paper treats near-sequential streams as out of scope).
    gc_period / buffer_timeout / stream_timeout:
        Garbage-collection cadence and idleness thresholds for staged
        buffers and classified-but-quiet streams.
    completion_copy_s:
        CPU time to complete one client request from a staged buffer.
    """

    read_ahead: int = 1 * MiB
    dispatch_width: Optional[int] = None
    requests_per_residency: int = 1
    memory_budget: int = 128 * MiB
    classifier_block: int = 64 * KiB
    classifier_window_blocks: int = 32
    classifier_threshold: int = 3
    classifier_interval: float = 10.0
    gap_tolerance: int = 0
    gc_period: float = 1.0
    buffer_timeout: float = 4.0
    stream_timeout: float = 8.0
    completion_copy_s: float = 10e-6
    #: Extension (DESIGN.md §5): coalesce sequential write streams into
    #: large write-behind flushes instead of passing writes through.
    coalesce_writes: bool = False
    write_coalesce_bytes: int = 1024 * 1024
    write_memory_budget: int = 64 * 1024 * 1024
    #: Fault/degradation policies (DESIGN.md §6). All default *off* so
    #: the fault-free request path is bit-identical to the historical
    #: server; the chaos experiment and production profiles turn them on.
    #: ``request_deadline_s`` bounds each downstream request's service
    #: time (0 disables; expiry raises ``RequestTimeout`` to the retry
    #: policy). ``max_retries`` bounds per-request retries of *transient*
    #: errors, spaced by exponential backoff from ``retry_backoff_s``
    #: (doubling per attempt, capped at ``retry_backoff_cap_s``) with
    #: ``retry_backoff_jitter`` multiplicative jitter drawn from a
    #: ``retry_seed``-seeded RNG (deterministic per run).
    #: ``quarantine_threshold`` consecutive failed read-ahead fetches
    #: quarantine the stream: it leaves the dispatch machinery, its
    #: staged pages are reclaimed, and its client falls back to the
    #: direct path (0 disables).
    request_deadline_s: float = 0.0
    max_retries: int = 0
    retry_backoff_s: float = 2e-3
    retry_backoff_cap_s: float = 0.25
    retry_backoff_jitter: float = 0.5
    retry_seed: int = 0
    quarantine_threshold: int = 0
    #: Open-loop admission control (DESIGN.md §9). Default *off* (0 =
    #: unbounded) so the fault-free path stays bit-identical.
    #: ``admission_limit`` caps client requests in service at once;
    #: overflow waits in a bounded FIFO of ``admission_queue_depth``
    #: entries. When that queue is also full the *oldest* waiting
    #: request is shed (FIFO shedding keeps the queue fresh) with an
    #: ``AdmissionShedError`` carrying a retry-after hint:
    #: ``shed_backoff_s`` with ``shed_backoff_jitter`` multiplicative
    #: jitter from an ``admission_seed``-seeded RNG, scaled by
    #: dispatch-set load.
    admission_limit: int = 0
    admission_queue_depth: int = 0
    shed_backoff_s: float = 5e-3
    shed_backoff_jitter: float = 0.5
    admission_seed: int = 0

    def __post_init__(self):
        if self.read_ahead < 0 or self.read_ahead % SECTOR_BYTES:
            raise ValueError(
                f"read_ahead must be sector-aligned and >= 0: "
                f"{self.read_ahead}")
        if self.requests_per_residency < 1:
            raise ValueError(
                f"requests_per_residency must be >= 1: "
                f"{self.requests_per_residency}")
        if self.memory_budget < 0:
            raise ValueError(f"negative memory budget: {self.memory_budget}")
        if self.classifier_block < SECTOR_BYTES or \
                self.classifier_block % SECTOR_BYTES:
            raise ValueError(
                f"classifier_block must be sector-aligned: "
                f"{self.classifier_block}")
        if self.classifier_window_blocks < 1:
            raise ValueError("classifier window must be >= 1 block")
        if self.classifier_threshold < 1:
            raise ValueError("classifier threshold must be >= 1")
        if self.gap_tolerance < 0:
            raise ValueError("gap_tolerance must be >= 0")
        if self.gc_period <= 0 or self.buffer_timeout <= 0 \
                or self.stream_timeout <= 0:
            raise ValueError("GC periods/timeouts must be positive")
        if self.dispatch_width is not None and self.dispatch_width < 1:
            raise ValueError(
                f"dispatch_width must be >= 1: {self.dispatch_width}")
        if self.request_deadline_s < 0:
            raise ValueError(
                f"request_deadline_s must be >= 0: "
                f"{self.request_deadline_s}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0: {self.max_retries}")
        if self.retry_backoff_s <= 0 or self.retry_backoff_cap_s <= 0:
            raise ValueError("retry backoff times must be positive")
        if not 0.0 <= self.retry_backoff_jitter < 1.0:
            raise ValueError(
                f"retry_backoff_jitter must be in [0, 1): "
                f"{self.retry_backoff_jitter}")
        if self.quarantine_threshold < 0:
            raise ValueError(
                f"quarantine_threshold must be >= 0: "
                f"{self.quarantine_threshold}")
        if self.admission_limit < 0:
            raise ValueError(
                f"admission_limit must be >= 0: {self.admission_limit}")
        if self.admission_queue_depth < 0:
            raise ValueError(
                f"admission_queue_depth must be >= 0: "
                f"{self.admission_queue_depth}")
        if self.shed_backoff_s <= 0:
            raise ValueError(
                f"shed_backoff_s must be positive: {self.shed_backoff_s}")
        if not 0.0 <= self.shed_backoff_jitter < 1.0:
            raise ValueError(
                f"shed_backoff_jitter must be in [0, 1): "
                f"{self.shed_backoff_jitter}")
        if self.read_ahead and self.memory_budget < self.residency_bytes:
            raise ValueError(
                f"memory budget {self.memory_budget} below one residency "
                f"(R*N = {self.residency_bytes}): M >= D*R*N unsatisfiable")

    # -- derived quantities -----------------------------------------------------
    @property
    def residency_bytes(self) -> int:
        """R * N: memory one dispatched stream pins."""
        return self.read_ahead * self.requests_per_residency

    @property
    def effective_dispatch_width(self) -> int:
        """D, deriving ``M // (R * N)`` when left implicit."""
        if self.dispatch_width is not None:
            return self.dispatch_width
        if not self.read_ahead:
            return 1
        return max(1, self.memory_budget // self.residency_bytes)

    @property
    def dispatch_memory(self) -> int:
        """D * R * N — memory pinned by a full dispatch set."""
        return self.effective_dispatch_width * self.residency_bytes

    def validated_against(self, memory_bytes: int) -> "ServerParams":
        """Raise unless this configuration fits ``memory_bytes`` of host
        memory; returns self for chaining."""
        if self.memory_budget > memory_bytes:
            raise ValueError(
                f"M={self.memory_budget} exceeds host memory "
                f"{memory_bytes}")
        if self.dispatch_memory > self.memory_budget:
            raise ValueError(
                f"D*R*N={self.dispatch_memory} exceeds M="
                f"{self.memory_budget}")
        return self

    # -- the paper's static adaptation rule ------------------------------------
    @classmethod
    def autotune(cls, num_disks: int, memory_bytes: int,
                 read_ahead: int = 512 * KiB,
                 requests_per_residency: int = 128) -> "ServerParams":
        """Pick D, R, N, M for a node (Section 5.4's configuration).

        One dispatched stream per disk with a long residency amortises
        seeks best (Figure 13/14); memory is capped at half the host's so
        staging headroom remains.
        """
        if num_disks < 1:
            raise ValueError(f"num_disks must be >= 1: {num_disks}")
        if memory_bytes < 1:
            raise ValueError(f"memory_bytes must be >= 1: {memory_bytes}")
        budget = memory_bytes // 2
        residency = read_ahead * requests_per_residency
        # Shrink the residency until one stream per disk fits.
        while num_disks * residency > budget and requests_per_residency > 1:
            requests_per_residency //= 2
            residency = read_ahead * requests_per_residency
        while num_disks * residency > budget and read_ahead > 64 * KiB:
            read_ahead //= 2
            residency = read_ahead * requests_per_residency
        return cls(read_ahead=read_ahead,
                   dispatch_width=num_disks,
                   requests_per_residency=requests_per_residency,
                   memory_budget=max(budget, residency * num_disks))

    def replace(self, **kwargs) -> "ServerParams":
        """Copy with fields overridden."""
        return replace(self, **kwargs)
