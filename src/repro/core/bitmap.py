"""Dynamically-allocated region bitmaps for sequential-stream detection.

The paper rejects one whole-disk bitmap (too large at one bit per block)
in favour of small bitmaps allocated on demand around the first request
to a region: a bitmap covers blocks ``[B - w, B + w]`` and each arriving
request sets the bits it spans. Once the number of set bits crosses a
threshold the region is declared sequential.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

__all__ = ["BitmapTable", "RegionBitmap"]


class RegionBitmap:
    """One window of blocks around an anchor block.

    Python ints are the bitmap (arbitrary precision, popcount via
    ``int.bit_count``), so a 65-block window costs one small object.
    ``end_block`` is a plain attribute (not a property): the classifier
    probes it on every unknown request, and the window never moves.
    """

    __slots__ = ("start_block", "num_blocks", "end_block", "bits",
                 "created_at", "last_touch")

    def __init__(self, anchor_block: int, window_blocks: int,
                 now: float = 0.0):
        if window_blocks < 1:
            raise ValueError(f"window must be >= 1 block: {window_blocks}")
        self.start_block = max(0, anchor_block - window_blocks)
        self.num_blocks = anchor_block + window_blocks + 1 - self.start_block
        #: One past the last covered block (fixed at construction).
        self.end_block = self.start_block + self.num_blocks
        self.bits = 0
        self.created_at = now
        self.last_touch = now

    def covers(self, block: int) -> bool:
        """True when ``block`` falls inside this window."""
        return self.start_block <= block < self.end_block

    def set_range(self, first_block: int, count: int, now: float) -> int:
        """Set bits for ``count`` blocks from ``first_block`` (clipped).

        Returns the resulting popcount.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1: {count}")
        lo = max(first_block, self.start_block)
        hi = min(first_block + count, self.end_block)
        if lo < hi:
            width = hi - lo
            self.bits |= ((1 << width) - 1) << (lo - self.start_block)
            self.last_touch = now
        return self.popcount

    @property
    def popcount(self) -> int:
        """Number of set bits."""
        return self.bits.bit_count()

    def __repr__(self) -> str:
        return (f"<RegionBitmap [{self.start_block},{self.end_block}) "
                f"set={self.popcount}>")


class _DiskBitmaps:
    """Per-disk parallel-array index: start blocks + (id, bitmap) pairs.

    ``starts`` is a plain int list so :meth:`BitmapTable.find` bisects
    int-against-int (no per-call sentinel tuple, no tuple-vs-tuple
    comparisons); ``entries[i]`` carries the allocation id and bitmap for
    ``starts[i]``. Both lists mutate in lock-step.
    """

    __slots__ = ("starts", "entries")

    def __init__(self) -> None:
        self.starts: List[int] = []
        self.entries: List[Tuple[int, RegionBitmap]] = []


class BitmapTable:
    """Per-disk collections of region bitmaps with expiry.

    Lookup is by (disk, block): bitmaps are indexed by start block in a
    sorted list per disk. Windows have bounded width, so the containing
    bitmap (if any) is found with one bisect and a short backward scan.
    Overlapping windows are allowed; the most recently allocated wins.
    """

    __slots__ = ("window_blocks", "interval", "_max_width", "_tables",
                 "_next_id", "allocated", "expired")

    def __init__(self, window_blocks: int, interval: float):
        if window_blocks < 1:
            raise ValueError(f"window must be >= 1 block: {window_blocks}")
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        self.window_blocks = window_blocks
        self.interval = interval
        #: Widest possible window ([B - w, B + w]); bounds the backward
        #: scan in :meth:`find`.
        self._max_width = 2 * window_blocks + 1
        self._tables: Dict[int, _DiskBitmaps] = {}
        self._next_id = 0
        self.allocated = 0
        self.expired = 0

    def find(self, disk_id: int, block: int) -> Optional[RegionBitmap]:
        """The newest live bitmap covering ``block``, or None."""
        table = self._tables.get(disk_id)
        if table is None:
            return None
        starts = table.starts
        entries = table.entries
        max_width = self._max_width
        position = bisect_right(starts, block)
        best_id = -1
        best: Optional[RegionBitmap] = None
        while position > 0:
            start = starts[position - 1]
            if block - start >= max_width:
                break
            bitmap_id, bitmap = entries[position - 1]
            # start <= block is implied by the bisect; only the end of
            # the (possibly zero-clipped) window needs checking.
            if block < bitmap.end_block and bitmap_id > best_id:
                best_id, best = bitmap_id, bitmap
            position -= 1
        return best

    def allocate(self, disk_id: int, anchor_block: int,
                 now: float) -> RegionBitmap:
        """Create a bitmap centred on ``anchor_block``."""
        bitmap = RegionBitmap(anchor_block, self.window_blocks, now=now)
        table = self._tables.get(disk_id)
        if table is None:
            table = self._tables[disk_id] = _DiskBitmaps()
        # bisect_right + monotonic ids == the old insort of
        # (start, id, bitmap) tuples: equal starts stay in id order.
        position = bisect_right(table.starts, bitmap.start_block)
        table.starts.insert(position, bitmap.start_block)
        table.entries.insert(position, (self._next_id, bitmap))
        self._next_id += 1
        self.allocated += 1
        return bitmap

    def remove(self, disk_id: int, bitmap: RegionBitmap) -> None:
        """Drop a specific bitmap (e.g. once its stream is classified)."""
        table = self._tables.get(disk_id)
        if table is not None:
            for index, (_bid, candidate) in enumerate(table.entries):
                if candidate is bitmap:
                    del table.starts[index]
                    del table.entries[index]
                    return
        raise ValueError("bitmap not present")

    def expire(self, now: float) -> int:
        """Recycle bitmaps idle past the interval; returns count dropped."""
        dropped = 0
        interval = self.interval
        for table in self._tables.values():
            entries = table.entries
            keep = [index for index, (_bid, bitmap) in enumerate(entries)
                    if now - bitmap.last_touch < interval]
            if len(keep) != len(entries):
                dropped += len(entries) - len(keep)
                starts = table.starts
                table.starts = [starts[i] for i in keep]
                table.entries = [entries[i] for i in keep]
        self.expired += dropped
        return dropped

    @property
    def live_count(self) -> int:
        """Bitmaps currently allocated."""
        return sum(len(t.starts) for t in self._tables.values())

    def memory_bytes(self) -> int:
        """Rough memory footprint: one bit per covered block."""
        return sum((self._max_width + 7) // 8 * len(t.starts)
                   for t in self._tables.values())
