"""Dynamically-allocated region bitmaps for sequential-stream detection.

The paper rejects one whole-disk bitmap (too large at one bit per block)
in favour of small bitmaps allocated on demand around the first request
to a region: a bitmap covers blocks ``[B - w, B + w]`` and each arriving
request sets the bits it spans. Once the number of set bits crosses a
threshold the region is declared sequential.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Dict, List, Optional, Tuple

__all__ = ["BitmapTable", "RegionBitmap"]


class RegionBitmap:
    """One window of blocks around an anchor block.

    Python ints are the bitmap (arbitrary precision, popcount via
    ``int.bit_count``), so a 65-block window costs one small object.
    """

    __slots__ = ("start_block", "num_blocks", "bits", "created_at",
                 "last_touch")

    def __init__(self, anchor_block: int, window_blocks: int,
                 now: float = 0.0):
        if window_blocks < 1:
            raise ValueError(f"window must be >= 1 block: {window_blocks}")
        self.start_block = max(0, anchor_block - window_blocks)
        self.num_blocks = anchor_block + window_blocks + 1 - self.start_block
        self.bits = 0
        self.created_at = now
        self.last_touch = now

    @property
    def end_block(self) -> int:
        """One past the last covered block."""
        return self.start_block + self.num_blocks

    def covers(self, block: int) -> bool:
        """True when ``block`` falls inside this window."""
        return self.start_block <= block < self.end_block

    def set_range(self, first_block: int, count: int, now: float) -> int:
        """Set bits for ``count`` blocks from ``first_block`` (clipped).

        Returns the resulting popcount.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1: {count}")
        lo = max(first_block, self.start_block)
        hi = min(first_block + count, self.end_block)
        if lo < hi:
            width = hi - lo
            self.bits |= ((1 << width) - 1) << (lo - self.start_block)
            self.last_touch = now
        return self.popcount

    @property
    def popcount(self) -> int:
        """Number of set bits."""
        return self.bits.bit_count()

    def __repr__(self) -> str:
        return (f"<RegionBitmap [{self.start_block},{self.end_block}) "
                f"set={self.popcount}>")


class BitmapTable:
    """Per-disk collections of region bitmaps with expiry.

    Lookup is by (disk, block): bitmaps are indexed by start block in a
    sorted list per disk. Windows have bounded width, so the containing
    bitmap (if any) is found with one bisect and a short backward scan.
    Overlapping windows are allowed; the most recently allocated wins.
    """

    def __init__(self, window_blocks: int, interval: float):
        if window_blocks < 1:
            raise ValueError(f"window must be >= 1 block: {window_blocks}")
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        self.window_blocks = window_blocks
        self.interval = interval
        self._tables: Dict[int, List[Tuple[int, int, RegionBitmap]]] = {}
        self._next_id = 0
        self.allocated = 0
        self.expired = 0

    def find(self, disk_id: int, block: int) -> Optional[RegionBitmap]:
        """The newest live bitmap covering ``block``, or None."""
        table = self._tables.get(disk_id)
        if not table:
            return None
        max_width = 2 * self.window_blocks + 1
        position = bisect_right(table, (block, float("inf"), None))  # type: ignore[arg-type]
        best: Optional[Tuple[int, RegionBitmap]] = None
        while position > 0:
            start, bitmap_id, bitmap = table[position - 1]
            if block - start >= max_width:
                break
            if bitmap.covers(block) and (best is None
                                         or bitmap_id > best[0]):
                best = (bitmap_id, bitmap)
            position -= 1
        return best[1] if best else None

    def allocate(self, disk_id: int, anchor_block: int,
                 now: float) -> RegionBitmap:
        """Create a bitmap centred on ``anchor_block``."""
        bitmap = RegionBitmap(anchor_block, self.window_blocks, now=now)
        table = self._tables.setdefault(disk_id, [])
        insort(table, (bitmap.start_block, self._next_id, bitmap))
        self._next_id += 1
        self.allocated += 1
        return bitmap

    def remove(self, disk_id: int, bitmap: RegionBitmap) -> None:
        """Drop a specific bitmap (e.g. once its stream is classified)."""
        table = self._tables.get(disk_id, [])
        for index, (_start, _bid, candidate) in enumerate(table):
            if candidate is bitmap:
                del table[index]
                return
        raise ValueError("bitmap not present")

    def expire(self, now: float) -> int:
        """Recycle bitmaps idle past the interval; returns count dropped."""
        dropped = 0
        for disk_id, table in self._tables.items():
            keep = [entry for entry in table
                    if now - entry[2].last_touch < self.interval]
            dropped += len(table) - len(keep)
            self._tables[disk_id] = keep
        self.expired += dropped
        return dropped

    @property
    def live_count(self) -> int:
        """Bitmaps currently allocated."""
        return sum(len(t) for t in self._tables.values())

    def memory_bytes(self) -> int:
        """Rough memory footprint: one bit per covered block."""
        return sum((2 * self.window_blocks + 1 + 7) // 8 * len(t)
                   for t in self._tables.values())
