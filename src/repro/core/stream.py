"""Per-stream state for the storage server."""

from __future__ import annotations

import enum
import itertools
from collections import deque
from typing import Deque, Optional, Tuple

from repro.io import IORequest
from repro.sim.events import Event

__all__ = ["StreamQueue", "StreamState"]

_stream_ids = itertools.count(1)


class StreamState(enum.Enum):
    """Lifecycle of a classified stream."""

    #: Classified; waiting for a dispatch-set slot.
    WAITING = "waiting"
    #: In the dispatch set, issuing read-ahead requests.
    DISPATCHED = "dispatched"
    #: Out of the dispatch set with staged data still being consumed.
    BUFFERED = "buffered"


class StreamQueue:
    """One detected sequential stream.

    Tracks where the client has read up to (``client_next``), where
    read-ahead has fetched up to (``fetch_next``), the private queue of
    client requests awaiting data, and dispatch accounting.
    """

    __slots__ = ("stream_id", "disk_id", "client_id", "state",
                 "client_next", "fetch_next", "filled_until", "pending",
                 "issued_in_residency", "total_issued", "created_at",
                 "last_activity", "initial_offset", "fetch_failures")

    def __init__(self, disk_id: int, start_offset: int, now: float,
                 client_id: Optional[int] = None):
        self.stream_id = next(_stream_ids)
        self.disk_id = disk_id
        self.client_id = client_id
        self.state = StreamState.WAITING
        #: Next client byte the stream expects (strictly increasing).
        self.client_next = start_offset
        #: Next byte read-ahead will fetch.
        self.fetch_next = start_offset
        #: Contiguously staged-and-filled frontier (requests ending at or
        #: below it complete from memory).
        self.filled_until = start_offset
        #: (request, completion_event) pairs awaiting staged data.
        self.pending: Deque[Tuple[IORequest, Event]] = deque()
        self.issued_in_residency = 0
        self.total_issued = 0
        self.created_at = now
        self.last_activity = now
        self.initial_offset = start_offset
        #: Consecutive failed read-ahead fetches (reset on success);
        #: the server's quarantine policy trips on this.
        self.fetch_failures = 0

    def touch(self, now: float) -> None:
        """Record activity (classifier routing, request arrival)."""
        self.last_activity = now

    @property
    def has_demand(self) -> bool:
        """True when client requests are waiting on unfetched data."""
        return bool(self.pending)

    @property
    def backlog_bytes(self) -> int:
        """Bytes between the client position and the fetch frontier."""
        return max(0, self.fetch_next - self.client_next)

    def matches(self, request: IORequest, gap_tolerance: int) -> bool:
        """Does ``request`` continue this stream?

        Strict continuation (``offset == client_next``) or a bounded
        forward skip when ``gap_tolerance`` allows near-sequential
        streams.
        """
        if request.disk_id != self.disk_id:
            return False
        return (self.client_next <= request.offset
                <= self.client_next + gap_tolerance)

    def __repr__(self) -> str:
        return (f"<Stream#{self.stream_id} d{self.disk_id} "
                f"{self.state.value} client@{self.client_next} "
                f"fetch@{self.fetch_next} pending={len(self.pending)}>")
