"""Request classification: detecting sequential streams.

Two-level routing, mirroring the paper's Section 4.1:

1. **Known streams** — a request continuing an existing stream (exact
   next offset, or within the near-sequential gap tolerance) routes to
   that stream's queue in O(1).
2. **Unknown requests** — the region bitmap around the request's block is
   updated; when its popcount crosses the threshold a new stream is
   created and read-ahead enabled for it. Until then the caller issues
   the request directly to the disk.

Out-of-order requests and re-reads simply fail to match and go direct —
"this mechanism ignores out of order requests [and] multiple requests to
the same block" (the paper, verbatim).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.bitmap import BitmapTable
from repro.core.params import ServerParams
from repro.core.stream import StreamQueue
from repro.io import IORequest

__all__ = ["SequentialClassifier"]


class SequentialClassifier:
    """Stateful request → stream routing and stream detection."""

    __slots__ = ("params", "bitmaps", "_by_next", "streams", "detected",
                 "routed", "direct")

    def __init__(self, params: ServerParams):
        self.params = params
        self.bitmaps = BitmapTable(
            window_blocks=params.classifier_window_blocks,
            interval=params.classifier_interval)
        #: (disk_id, client_next_offset) -> stream: the O(1) hot path.
        self._by_next: Dict[Tuple[int, int], StreamQueue] = {}
        #: All live streams by id.
        self.streams: Dict[int, StreamQueue] = {}
        self.detected = 0
        self.routed = 0
        self.direct = 0

    # -- routing ---------------------------------------------------------------
    def route(self, request: IORequest,
              now: float) -> Optional[StreamQueue]:
        """Return the stream this read continues, or None (go direct).

        A matching stream's expected-next index is advanced to the
        request's end.
        """
        if not request.is_read:
            self.direct += 1
            return None
        key = (request.disk_id, request.offset)
        stream = self._by_next.get(key)
        if stream is None and self.params.gap_tolerance:
            stream = self._match_with_gap(request)
        if stream is not None:
            self._advance(stream, request.end)
            stream.touch(now)
            self.routed += 1
            return stream
        detected = self._observe_unknown(request, now)
        if detected is not None:
            self.detected += 1
            self.routed += 1
            return detected
        self.direct += 1
        return None

    def _match_with_gap(self, request: IORequest) -> Optional[StreamQueue]:
        for stream in self.streams.values():
            if stream.matches(request, self.params.gap_tolerance) \
                    and stream.client_next != request.offset:
                return stream
        return None

    def _advance(self, stream: StreamQueue, new_next: int) -> None:
        # fetch_next is owned by the dispatcher's pump — only the client
        # expectation moves here.
        self._by_next.pop((stream.disk_id, stream.client_next), None)
        stream.client_next = new_next
        self._by_next[(stream.disk_id, new_next)] = stream

    # -- detection ----------------------------------------------------------------
    def _observe_unknown(self, request: IORequest,
                         now: float) -> Optional[StreamQueue]:
        """Update the region bitmap; create a stream on threshold.

        The newly created stream starts at the request's *end*: the
        request itself is serviced directly while read-ahead takes over
        from there.
        """
        block_size = self.params.classifier_block
        first_block = request.offset // block_size
        span = (request.end - 1) // block_size - first_block + 1
        bitmap = self.bitmaps.find(request.disk_id, first_block)
        if bitmap is None:
            bitmap = self.bitmaps.allocate(request.disk_id, first_block, now)
        popcount = bitmap.set_range(first_block, span, now)
        if popcount < self.params.classifier_threshold:
            return None
        stream = StreamQueue(request.disk_id, request.end, now,
                             client_id=request.stream_id)
        self.streams[stream.stream_id] = stream
        self._by_next[(stream.disk_id, stream.client_next)] = stream
        self.bitmaps.remove(request.disk_id, bitmap)
        return stream

    # -- maintenance ----------------------------------------------------------------
    def drop_stream(self, stream: StreamQueue) -> None:
        """Forget a stream (GC of inactive streams)."""
        self.streams.pop(stream.stream_id, None)
        self._by_next.pop((stream.disk_id, stream.client_next), None)

    def expire_bitmaps(self, now: float) -> int:
        """Recycle stale region bitmaps; returns count dropped."""
        return self.bitmaps.expire(now)

    @property
    def live_streams(self) -> int:
        """Number of currently tracked streams."""
        return len(self.streams)

    def __repr__(self) -> str:
        return (f"<SequentialClassifier streams={len(self.streams)} "
                f"bitmaps={self.bitmaps.live_count} "
                f"detected={self.detected}>")
