"""Request classification: detecting sequential streams.

Two-level routing, mirroring the paper's Section 4.1:

1. **Known streams** — a request continuing an existing stream (exact
   next offset, or within the near-sequential gap tolerance) routes to
   that stream's queue in O(1).
2. **Unknown requests** — the region bitmap around the request's block is
   updated; when its popcount crosses the threshold a new stream is
   created and read-ahead enabled for it. Until then the caller issues
   the request directly to the disk.

Out-of-order requests and re-reads simply fail to match and go direct —
"this mechanism ignores out of order requests [and] multiple requests to
the same block" (the paper, verbatim).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.core.bitmap import BitmapTable
from repro.core.params import ServerParams
from repro.core.stream import StreamQueue
from repro.io import IORequest

__all__ = ["SequentialClassifier"]


class SequentialClassifier:
    """Stateful request → stream routing and stream detection."""

    __slots__ = ("params", "bitmaps", "_by_next", "streams", "_activity",
                 "_gap_width", "_gap_buckets", "detected", "routed",
                 "direct")

    def __init__(self, params: ServerParams):
        self.params = params
        self.bitmaps = BitmapTable(
            window_blocks=params.classifier_window_blocks,
            interval=params.classifier_interval)
        #: (disk_id, client_next_offset) -> stream: the O(1) hot path.
        self._by_next: Dict[Tuple[int, int], StreamQueue] = {}
        #: All live streams by id.
        self.streams: Dict[int, StreamQueue] = {}
        #: Streams in last-activity order (every route() match moves the
        #: stream to the end; simulated time is monotone, so iteration
        #: order == ascending ``last_activity``). The GC walks this from
        #: the front and stops at the first non-idle stream instead of
        #: scanning every live stream each period.
        self._activity: "OrderedDict[int, StreamQueue]" = OrderedDict()
        #: Near-sequential matching index, only maintained when the gap
        #: tolerance is on (the default 0 keeps the hot path free of
        #: it): (disk_id, client_next // gap) -> {stream_id: stream}.
        #: A request's match window [offset - gap, offset] covers at
        #: most two buckets.
        self._gap_width = max(1, params.gap_tolerance)
        self._gap_buckets: Dict[Tuple[int, int],
                                Dict[int, StreamQueue]] = {}
        self.detected = 0
        self.routed = 0
        self.direct = 0

    # -- routing ---------------------------------------------------------------
    def route(self, request: IORequest,
              now: float) -> Optional[StreamQueue]:
        """Return the stream this read continues, or None (go direct).

        A matching stream's expected-next index is advanced to the
        request's end.
        """
        if not request.is_read:
            self.direct += 1
            return None
        key = (request.disk_id, request.offset)
        stream = self._by_next.get(key)
        if stream is None and self.params.gap_tolerance:
            stream = self._match_with_gap(request)
        if stream is not None:
            self._advance(stream, request.end)
            stream.touch(now)
            self._activity.move_to_end(stream.stream_id)
            self.routed += 1
            return stream
        detected = self._observe_unknown(request, now)
        if detected is not None:
            self.detected += 1
            self.routed += 1
            return detected
        self.direct += 1
        return None

    def _match_with_gap(self, request: IORequest) -> Optional[StreamQueue]:
        """Oldest stream the request near-continues (bounded skip).

        Candidates come from the two gap-width buckets covering
        ``[offset - gap, offset]``; the lowest stream id wins, which is
        the stream the reference insertion-order scan found first
        (streams are created with monotonically increasing ids and
        never re-inserted).
        """
        gap = self.params.gap_tolerance
        width = self._gap_width
        buckets = self._gap_buckets
        disk_id = request.disk_id
        offset = request.offset
        best: Optional[StreamQueue] = None
        for bucket in range((offset - gap) // width, offset // width + 1):
            candidates = buckets.get((disk_id, bucket))
            if not candidates:
                continue
            for stream in candidates.values():
                if stream.matches(request, gap) \
                        and stream.client_next != offset \
                        and (best is None
                             or stream.stream_id < best.stream_id):
                    best = stream
        return best

    def _advance(self, stream: StreamQueue, new_next: int) -> None:
        # fetch_next is owned by the dispatcher's pump — only the client
        # expectation moves here.
        self._by_next.pop((stream.disk_id, stream.client_next), None)
        if self.params.gap_tolerance:
            self._gap_unindex(stream)
            stream.client_next = new_next
            self._gap_index(stream)
        else:
            stream.client_next = new_next
        self._by_next[(stream.disk_id, new_next)] = stream

    def _gap_index(self, stream: StreamQueue) -> None:
        key = (stream.disk_id, stream.client_next // self._gap_width)
        bucket = self._gap_buckets.get(key)
        if bucket is None:
            bucket = self._gap_buckets[key] = {}
        bucket[stream.stream_id] = stream

    def _gap_unindex(self, stream: StreamQueue) -> None:
        key = (stream.disk_id, stream.client_next // self._gap_width)
        bucket = self._gap_buckets.get(key)
        if bucket is not None:
            bucket.pop(stream.stream_id, None)
            if not bucket:
                del self._gap_buckets[key]

    # -- detection ----------------------------------------------------------------
    def _observe_unknown(self, request: IORequest,
                         now: float) -> Optional[StreamQueue]:
        """Update the region bitmap; create a stream on threshold.

        The newly created stream starts at the request's *end*: the
        request itself is serviced directly while read-ahead takes over
        from there.
        """
        block_size = self.params.classifier_block
        first_block = request.offset // block_size
        span = (request.end - 1) // block_size - first_block + 1
        bitmap = self.bitmaps.find(request.disk_id, first_block)
        if bitmap is None:
            bitmap = self.bitmaps.allocate(request.disk_id, first_block, now)
        popcount = bitmap.set_range(first_block, span, now)
        if popcount < self.params.classifier_threshold:
            return None
        stream = StreamQueue(request.disk_id, request.end, now,
                             client_id=request.stream_id)
        self._register_stream(stream)
        self.bitmaps.remove(request.disk_id, bitmap)
        return stream

    def _register_stream(self, stream: StreamQueue) -> None:
        """Install a newly detected stream in every routing index.

        Subclasses with their own detection (``CoarseBitmapClassifier``)
        must create streams through this so the activity and gap
        indexes stay consistent."""
        self.streams[stream.stream_id] = stream
        self._by_next[(stream.disk_id, stream.client_next)] = stream
        self._activity[stream.stream_id] = stream
        if self.params.gap_tolerance:
            self._gap_index(stream)

    # -- maintenance ----------------------------------------------------------------
    def drop_stream(self, stream: StreamQueue) -> None:
        """Forget a stream (GC of inactive streams)."""
        self.streams.pop(stream.stream_id, None)
        self._by_next.pop((stream.disk_id, stream.client_next), None)
        self._activity.pop(stream.stream_id, None)
        if self.params.gap_tolerance:
            self._gap_unindex(stream)

    def idle_candidates(self, now: float,
                        timeout: float) -> List[StreamQueue]:
        """Streams idle for at least ``timeout``, in ascending-id order.

        Cost is O(idle streams), not O(live streams): the activity list
        is walked front-to-back and the first non-idle stream ends the
        scan (everything behind it is more recent). The id sort
        reproduces the drop order of the reference full scan over the
        ``streams`` dict (insertion order == creation order).
        """
        idle: List[StreamQueue] = []
        for stream in self._activity.values():
            if now - stream.last_activity < timeout:
                break
            idle.append(stream)
        idle.sort(key=lambda stream: stream.stream_id)
        return idle

    def expire_bitmaps(self, now: float) -> int:
        """Recycle stale region bitmaps; returns count dropped."""
        return self.bitmaps.expire(now)

    @property
    def live_streams(self) -> int:
        """Number of currently tracked streams."""
        return len(self.streams)

    def __repr__(self) -> str:
        return (f"<SequentialClassifier streams={len(self.streams)} "
                f"bitmaps={self.bitmaps.live_count} "
                f"detected={self.detected}>")
