"""The buffered set: staged read-ahead data awaiting consumption.

Each dispatched read-ahead request owns a :class:`StreamBuffer` covering
its byte range. Client requests complete from filled buffers; requests
arriving while the fetch is in flight attach to the buffer and complete
when it fills. Total buffer memory is bounded by ``M``; the garbage
collector reclaims buffers nobody read (a stream that stopped, a region
misclassified as sequential).

Lookup and reclamation are index-accelerated (DESIGN.md "data-plane
indexes"): per-disk and per-stream start-sorted span indexes make
:meth:`BufferedSet.find` / :meth:`BufferedSet.find_in_stream`
O(log buffers) and a lazily-invalidated idle heap makes
:meth:`BufferedSet.collect` touch only expired buffers. All three are
pure accelerations — observable behaviour (results, tie-breaks, release
order, callback order) is bit-identical to the reference linear scans,
which ``tests/test_core_differential.py`` pins.
"""

from __future__ import annotations

import itertools
from bisect import bisect_right
from heapq import heappop, heappush
from typing import Dict, Iterable, List, Optional, Tuple

from repro.io import IORequest
from repro.sim.events import Event

__all__ = ["BufferedSet", "StreamBuffer"]

_buffer_ids = itertools.count(1)


class StreamBuffer:
    """One staged extent of a stream.

    ``filled`` flips when the disk read completes; ``consumed_until`` is
    the high-water byte the client has read (buffers are consumed in
    order because streams are sequential).
    """

    __slots__ = ("buffer_id", "stream_id", "disk_id", "offset", "size",
                 "filled", "consumed_until", "created_at", "last_access",
                 "waiters")

    def __init__(self, stream_id: int, disk_id: int, offset: int,
                 size: int, now: float):
        if size <= 0:
            raise ValueError(f"buffer size must be positive: {size}")
        self.buffer_id = next(_buffer_ids)
        self.stream_id = stream_id
        self.disk_id = disk_id
        self.offset = offset
        self.size = size
        self.filled = False
        self.consumed_until = offset
        self.created_at = now
        self.last_access = now
        #: (request, event) pairs to complete when the buffer fills.
        self.waiters: List[Tuple[IORequest, Event]] = []

    @property
    def end(self) -> int:
        """One past the last byte staged."""
        return self.offset + self.size

    @property
    def fully_consumed(self) -> bool:
        """True once the client has read everything staged here."""
        return self.filled and self.consumed_until >= self.end

    def contains(self, offset: int, size: int) -> bool:
        """Whole byte range inside this buffer?"""
        return self.offset <= offset and offset + size <= self.end

    def __repr__(self) -> str:
        state = "filled" if self.filled else "in-flight"
        return (f"<Buffer#{self.buffer_id} s{self.stream_id} "
                f"[{self.offset},{self.end}) {state}>")


class _SpanIndex:
    """Start-sorted byte-span index over a group of buffers.

    Same shape as ``BitmapTable``'s per-disk index: a plain-int start
    list for cheap bisects plus a parallel ``(buffer_id, end)`` list,
    mutated in lock-step. ``find`` bisects to the rightmost start at or
    below the query offset and walks left no further than the widest
    span ever inserted — any containing buffer must start within that
    window. Buffer ids are globally monotonic, so equal starts stay in
    allocation order and the min-id tie-break below reproduces "first
    match in insertion order" exactly.
    """

    __slots__ = ("starts", "items", "max_span")

    def __init__(self) -> None:
        self.starts: List[int] = []
        self.items: List[Tuple[int, int]] = []
        self.max_span = 0

    def __len__(self) -> int:
        return len(self.starts)

    def insert(self, buffer: StreamBuffer) -> None:
        position = bisect_right(self.starts, buffer.offset)
        self.starts.insert(position, buffer.offset)
        self.items.insert(position, (buffer.buffer_id, buffer.end))
        if buffer.size > self.max_span:
            self.max_span = buffer.size

    def remove(self, buffer: StreamBuffer) -> None:
        position = bisect_right(self.starts, buffer.offset)
        buffer_id = buffer.buffer_id
        while position > 0 and self.starts[position - 1] == buffer.offset:
            if self.items[position - 1][0] == buffer_id:
                del self.starts[position - 1]
                del self.items[position - 1]
                return
            position -= 1
        raise ValueError(f"{buffer!r} not indexed")

    def find(self, offset: int, size: int) -> Optional[int]:
        """Lowest buffer id whose span contains the range, or None."""
        starts = self.starts
        position = bisect_right(starts, offset)
        max_span = self.max_span
        target_end = offset + size
        best: Optional[int] = None
        while position > 0:
            start = starts[position - 1]
            if offset - start >= max_span:
                break
            buffer_id, end = self.items[position - 1]
            # start <= offset is implied by the bisect.
            if target_end <= end and (best is None or buffer_id < best):
                best = buffer_id
            position -= 1
        return best


class BufferedSet:
    """All staged buffers, bounded by the memory budget ``M``."""

    def __init__(self, memory_budget: int, on_change=None):
        if memory_budget < 0:
            raise ValueError(f"negative memory budget: {memory_budget}")
        self.memory_budget = memory_budget
        #: Optional callback(delta_buffers) invoked on allocate/release,
        #: used to mirror buffer counts into the host cost model and to
        #: wake memory waiters.
        self.on_change = on_change
        self.in_use = 0
        self._buffers: Dict[int, StreamBuffer] = {}
        #: stream_id -> {buffer_id: buffer}, oldest first (streams
        #: consume in order; dicts preserve allocation order and give
        #: O(1) removal from the middle).
        self._by_stream: Dict[int, Dict[int, StreamBuffer]] = {}
        #: Span indexes behind find / find_in_stream.
        self._disk_index: Dict[int, _SpanIndex] = {}
        self._stream_index: Dict[int, _SpanIndex] = {}
        #: (last_access, buffer_id) min-heap over *filled* buffers, with
        #: lazy invalidation: every fill/consume pushes a fresh entry and
        #: collect() skips entries whose buffer is gone or has a newer
        #: last_access. Invariant: a filled buffer's current
        #: (last_access, id) pair is always present.
        self._idle_heap: List[Tuple[float, int]] = []
        self.peak_in_use = 0
        self.allocated_total = 0
        self.reclaimed_unread = 0

    def __len__(self) -> int:
        return len(self._buffers)

    @property
    def available(self) -> int:
        """Bytes of budget not currently staged."""
        return self.memory_budget - self.in_use

    def can_allocate(self, size: int) -> bool:
        """Would ``size`` more staged bytes fit in the budget?"""
        return self.in_use + size <= self.memory_budget

    def allocate(self, stream_id: int, disk_id: int, offset: int,
                 size: int, now: float) -> StreamBuffer:
        """Reserve a buffer for an in-flight read-ahead request."""
        if not self.can_allocate(size):
            raise MemoryError(
                f"buffered set over budget: {self.in_use} + {size} > "
                f"{self.memory_budget}")
        buffer = StreamBuffer(stream_id, disk_id, offset, size, now)
        self._buffers[buffer.buffer_id] = buffer
        siblings = self._by_stream.get(stream_id)
        if siblings is None:
            siblings = self._by_stream[stream_id] = {}
        siblings[buffer.buffer_id] = buffer
        disk_index = self._disk_index.get(disk_id)
        if disk_index is None:
            disk_index = self._disk_index[disk_id] = _SpanIndex()
        disk_index.insert(buffer)
        stream_index = self._stream_index.get(stream_id)
        if stream_index is None:
            stream_index = self._stream_index[stream_id] = _SpanIndex()
        stream_index.insert(buffer)
        self.in_use += size
        self.allocated_total += 1
        self.peak_in_use = max(self.peak_in_use, self.in_use)
        if self.on_change is not None:
            self.on_change(+1)
        return buffer

    def mark_filled(self, buffer: StreamBuffer,
                    now: float) -> List[Tuple[IORequest, Event]]:
        """Record fill completion; returns waiters to complete."""
        buffer.filled = True
        buffer.last_access = now
        heappush(self._idle_heap, (now, buffer.buffer_id))
        waiters, buffer.waiters = buffer.waiters, []
        return waiters

    # -- lookup ---------------------------------------------------------------
    def find(self, disk_id: int, offset: int,
             size: int) -> Optional[StreamBuffer]:
        """The buffer containing the byte range, if any.

        One bisect in the disk's span index plus a walk bounded by the
        widest buffer on the disk (buffers are read-ahead sized, so the
        walk sees at most a couple of overlapping spans).
        """
        index = self._disk_index.get(disk_id)
        if index is None:
            return None
        buffer_id = index.find(offset, size)
        if buffer_id is None:
            return None
        return self._buffers[buffer_id]

    def find_in_stream(self, stream_id: int, offset: int,
                       size: int) -> Optional[StreamBuffer]:
        """Like :meth:`find` but scoped to one stream's buffers —
        the hot path once the classifier has routed a request."""
        index = self._stream_index.get(stream_id)
        if index is None:
            return None
        buffer_id = index.find(offset, size)
        if buffer_id is None:
            return None
        return self._buffers[buffer_id]

    def consume(self, buffer: StreamBuffer, offset: int, size: int,
                now: float) -> bool:
        """Advance the consumption high-water; free if fully consumed.

        Returns True when the buffer was released.
        """
        buffer.last_access = now
        buffer.consumed_until = max(buffer.consumed_until, offset + size)
        if buffer.fully_consumed:
            self._release(buffer)
            return True
        if buffer.filled:
            heappush(self._idle_heap, (now, buffer.buffer_id))
        return False

    # -- reclamation -----------------------------------------------------------
    def _release(self, buffer: StreamBuffer) -> None:
        removed = self._buffers.pop(buffer.buffer_id, None)
        if removed is None:
            return
        self.in_use -= buffer.size
        siblings = self._by_stream.get(buffer.stream_id)
        if siblings is not None:
            siblings.pop(buffer.buffer_id, None)
            if not siblings:
                del self._by_stream[buffer.stream_id]
        disk_index = self._disk_index.get(buffer.disk_id)
        if disk_index is not None:
            disk_index.remove(buffer)
            if not disk_index:
                del self._disk_index[buffer.disk_id]
        stream_index = self._stream_index.get(buffer.stream_id)
        if stream_index is not None:
            stream_index.remove(buffer)
            if not stream_index:
                del self._stream_index[buffer.stream_id]
        if self.on_change is not None:
            self.on_change(-1)

    def discard(self, buffer: StreamBuffer) -> List[Tuple[IORequest, Event]]:
        """Drop a buffer regardless of state (fetch-failure path).

        Returns its unserved waiters so the caller can fail them.
        """
        waiters, buffer.waiters = buffer.waiters, []
        self._release(buffer)
        return waiters

    def release_stream(self, stream_id: int) -> int:
        """Drop all buffers of one stream; returns bytes reclaimed."""
        reclaimed = 0
        for buffer in list(self._by_stream.get(stream_id, {}).values()):
            if not buffer.fully_consumed:
                self.reclaimed_unread += 1
            reclaimed += buffer.size
            self._release(buffer)
        return reclaimed

    def collect(self, now: float, timeout: float) -> int:
        """Reclaim filled buffers idle for longer than ``timeout``.

        In-flight buffers are never collected (the completion path still
        owns them). Returns bytes reclaimed.

        Cost is O(expired + stale heap entries), not O(live buffers):
        the heap's minimum bounds every buffer's idle time, so one
        non-expired top entry proves nothing else qualifies. Expired
        buffers release in ascending buffer-id order — the same order
        the reference full scan produced (dict insertion order is
        allocation order).
        """
        heap = self._idle_heap
        buffers = self._buffers
        expired: Dict[int, StreamBuffer] = {}
        while heap:
            last_access, buffer_id = heap[0]
            if now - last_access < timeout:
                break
            heappop(heap)
            buffer = buffers.get(buffer_id)
            if (buffer is None or buffer.last_access != last_access
                    or not buffer.filled):
                continue  # released since, or superseded by a newer entry
            expired[buffer_id] = buffer
        reclaimed = 0
        for buffer_id in sorted(expired):
            buffer = expired[buffer_id]
            if not buffer.fully_consumed:
                self.reclaimed_unread += 1
            reclaimed += buffer.size
            self._release(buffer)
        return reclaimed

    def stream_buffers(self, stream_id: int) -> Iterable[StreamBuffer]:
        """This stream's live buffers, oldest first."""
        return list(self._by_stream.get(stream_id, {}).values())

    def __repr__(self) -> str:
        return (f"<BufferedSet {len(self._buffers)} buffers "
                f"{self.in_use}/{self.memory_budget} bytes>")
