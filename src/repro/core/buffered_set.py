"""The buffered set: staged read-ahead data awaiting consumption.

Each dispatched read-ahead request owns a :class:`StreamBuffer` covering
its byte range. Client requests complete from filled buffers; requests
arriving while the fetch is in flight attach to the buffer and complete
when it fills. Total buffer memory is bounded by ``M``; the garbage
collector reclaims buffers nobody read (a stream that stopped, a region
misclassified as sequential).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Tuple

from repro.io import IORequest
from repro.sim.events import Event

__all__ = ["BufferedSet", "StreamBuffer"]

_buffer_ids = itertools.count(1)


class StreamBuffer:
    """One staged extent of a stream.

    ``filled`` flips when the disk read completes; ``consumed_until`` is
    the high-water byte the client has read (buffers are consumed in
    order because streams are sequential).
    """

    __slots__ = ("buffer_id", "stream_id", "disk_id", "offset", "size",
                 "filled", "consumed_until", "created_at", "last_access",
                 "waiters")

    def __init__(self, stream_id: int, disk_id: int, offset: int,
                 size: int, now: float):
        if size <= 0:
            raise ValueError(f"buffer size must be positive: {size}")
        self.buffer_id = next(_buffer_ids)
        self.stream_id = stream_id
        self.disk_id = disk_id
        self.offset = offset
        self.size = size
        self.filled = False
        self.consumed_until = offset
        self.created_at = now
        self.last_access = now
        #: (request, event) pairs to complete when the buffer fills.
        self.waiters: List[Tuple[IORequest, Event]] = []

    @property
    def end(self) -> int:
        """One past the last byte staged."""
        return self.offset + self.size

    @property
    def fully_consumed(self) -> bool:
        """True once the client has read everything staged here."""
        return self.filled and self.consumed_until >= self.end

    def contains(self, offset: int, size: int) -> bool:
        """Whole byte range inside this buffer?"""
        return self.offset <= offset and offset + size <= self.end

    def __repr__(self) -> str:
        state = "filled" if self.filled else "in-flight"
        return (f"<Buffer#{self.buffer_id} s{self.stream_id} "
                f"[{self.offset},{self.end}) {state}>")


class BufferedSet:
    """All staged buffers, bounded by the memory budget ``M``."""

    def __init__(self, memory_budget: int, on_change=None):
        if memory_budget < 0:
            raise ValueError(f"negative memory budget: {memory_budget}")
        self.memory_budget = memory_budget
        #: Optional callback(delta_buffers) invoked on allocate/release,
        #: used to mirror buffer counts into the host cost model and to
        #: wake memory waiters.
        self.on_change = on_change
        self.in_use = 0
        self._buffers: Dict[int, StreamBuffer] = {}
        #: stream_id -> buffer ids, oldest first (streams consume in order).
        self._by_stream: Dict[int, List[int]] = {}
        self.peak_in_use = 0
        self.allocated_total = 0
        self.reclaimed_unread = 0

    def __len__(self) -> int:
        return len(self._buffers)

    @property
    def available(self) -> int:
        """Bytes of budget not currently staged."""
        return self.memory_budget - self.in_use

    def can_allocate(self, size: int) -> bool:
        """Would ``size`` more staged bytes fit in the budget?"""
        return self.in_use + size <= self.memory_budget

    def allocate(self, stream_id: int, disk_id: int, offset: int,
                 size: int, now: float) -> StreamBuffer:
        """Reserve a buffer for an in-flight read-ahead request."""
        if not self.can_allocate(size):
            raise MemoryError(
                f"buffered set over budget: {self.in_use} + {size} > "
                f"{self.memory_budget}")
        buffer = StreamBuffer(stream_id, disk_id, offset, size, now)
        self._buffers[buffer.buffer_id] = buffer
        self._by_stream.setdefault(stream_id, []).append(buffer.buffer_id)
        self.in_use += size
        self.allocated_total += 1
        self.peak_in_use = max(self.peak_in_use, self.in_use)
        if self.on_change is not None:
            self.on_change(+1)
        return buffer

    def mark_filled(self, buffer: StreamBuffer,
                    now: float) -> List[Tuple[IORequest, Event]]:
        """Record fill completion; returns waiters to complete."""
        buffer.filled = True
        buffer.last_access = now
        waiters, buffer.waiters = buffer.waiters, []
        return waiters

    # -- lookup ---------------------------------------------------------------
    def find(self, disk_id: int, offset: int,
             size: int) -> Optional[StreamBuffer]:
        """The buffer containing the byte range, if any.

        Scans only buffers of streams on the same disk; a stream holds at
        most a residency's worth of buffers, so this stays small.
        """
        for buffer in self._buffers.values():
            if buffer.disk_id == disk_id and buffer.contains(offset, size):
                return buffer
        return None

    def find_in_stream(self, stream_id: int, offset: int,
                       size: int) -> Optional[StreamBuffer]:
        """Like :meth:`find` but scoped to one stream's few buffers —
        the hot path once the classifier has routed a request."""
        for buffer_id in self._by_stream.get(stream_id, ()):
            buffer = self._buffers[buffer_id]
            if buffer.contains(offset, size):
                return buffer
        return None

    def consume(self, buffer: StreamBuffer, offset: int, size: int,
                now: float) -> bool:
        """Advance the consumption high-water; free if fully consumed.

        Returns True when the buffer was released.
        """
        buffer.last_access = now
        buffer.consumed_until = max(buffer.consumed_until, offset + size)
        if buffer.fully_consumed:
            self._release(buffer)
            return True
        return False

    # -- reclamation -----------------------------------------------------------
    def _release(self, buffer: StreamBuffer) -> None:
        removed = self._buffers.pop(buffer.buffer_id, None)
        if removed is None:
            return
        self.in_use -= buffer.size
        siblings = self._by_stream.get(buffer.stream_id)
        if siblings is not None:
            siblings.remove(buffer.buffer_id)
            if not siblings:
                del self._by_stream[buffer.stream_id]
        if self.on_change is not None:
            self.on_change(-1)

    def discard(self, buffer: StreamBuffer) -> List[Tuple[IORequest, Event]]:
        """Drop a buffer regardless of state (fetch-failure path).

        Returns its unserved waiters so the caller can fail them.
        """
        waiters, buffer.waiters = buffer.waiters, []
        self._release(buffer)
        return waiters

    def release_stream(self, stream_id: int) -> int:
        """Drop all buffers of one stream; returns bytes reclaimed."""
        reclaimed = 0
        for buffer_id in list(self._by_stream.get(stream_id, [])):
            buffer = self._buffers[buffer_id]
            if not buffer.fully_consumed:
                self.reclaimed_unread += 1
            reclaimed += buffer.size
            self._release(buffer)
        return reclaimed

    def collect(self, now: float, timeout: float) -> int:
        """Reclaim filled buffers idle for longer than ``timeout``.

        In-flight buffers are never collected (the completion path still
        owns them). Returns bytes reclaimed.
        """
        reclaimed = 0
        for buffer in list(self._buffers.values()):
            if buffer.filled and now - buffer.last_access >= timeout:
                if not buffer.fully_consumed:
                    self.reclaimed_unread += 1
                reclaimed += buffer.size
                self._release(buffer)
        return reclaimed

    def stream_buffers(self, stream_id: int) -> Iterable[StreamBuffer]:
        """This stream's live buffers, oldest first."""
        return [self._buffers[buffer_id]
                for buffer_id in self._by_stream.get(stream_id, [])]

    def __repr__(self) -> str:
        return (f"<BufferedSet {len(self._buffers)} buffers "
                f"{self.in_use}/{self.memory_budget} bytes>")
