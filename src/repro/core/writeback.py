"""Write coalescing: the paper's read design applied to write streams.

The paper is read-focused ("read-only and write-once type applications");
this extension (DESIGN.md §5) closes the write-once half. Sequential
*write* streams are detected with the same region-bitmap classifier and
their small writes are accumulated in per-stream gather buffers; a buffer
flushes to disk as one large write when it reaches the coalesce size, the
stream goes quiet, or total write-back memory runs short.

Semantics: a client write completes once it is absorbed into a gather
buffer (write-behind). ``flush_all`` provides the barrier the durability-
minded caller needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.io import BlockDevice, IOKind, IORequest, stamp_submit
from repro.sim import Simulator
from repro.sim.events import Event
from repro.sim.stats import StatsRegistry
from repro.units import MiB, SECTOR_BYTES

__all__ = ["WriteCoalescer", "WriteCoalescerParams"]


@dataclass(frozen=True)
class WriteCoalescerParams:
    """Tuning for the write-behind path.

    Attributes
    ----------
    coalesce_bytes:
        Target size of one flushed disk write (the write-side ``R``).
    memory_budget:
        Total bytes of dirty data held across all gather buffers.
    flush_timeout:
        Idle time after which a partial gather buffer flushes anyway.
    ack_cost_s:
        CPU time to absorb one client write into a buffer.
    """

    coalesce_bytes: int = 1 * MiB
    memory_budget: int = 64 * MiB
    flush_timeout: float = 0.5
    ack_cost_s: float = 5e-6

    def __post_init__(self):
        if self.coalesce_bytes < SECTOR_BYTES or \
                self.coalesce_bytes % SECTOR_BYTES:
            raise ValueError(
                f"coalesce_bytes must be sector-aligned: "
                f"{self.coalesce_bytes}")
        if self.memory_budget < self.coalesce_bytes:
            raise ValueError("memory_budget below one gather buffer")
        if self.flush_timeout <= 0:
            raise ValueError("flush_timeout must be positive")


class _GatherBuffer:
    """One stream's pending contiguous dirty range."""

    __slots__ = ("disk_id", "offset", "size", "last_write")

    def __init__(self, disk_id: int, offset: int, now: float):
        self.disk_id = disk_id
        self.offset = offset
        self.size = 0
        self.last_write = now

    @property
    def end(self) -> int:
        return self.offset + self.size


class WriteCoalescer:
    """Gathers sequential small writes into large disk writes.

    Keyed by ``(disk_id, stream_id)``: a write extends its stream's
    buffer when exactly contiguous; anything else (first write, seek,
    overlap) flushes the old buffer and starts a new one — random writes
    therefore degenerate to pass-through with one extra buffer hop.
    """

    def __init__(self, sim: Simulator, device: BlockDevice,
                 params: Optional[WriteCoalescerParams] = None,
                 name: str = "wback"):
        self.sim = sim
        self.device = device
        self.params = params or WriteCoalescerParams()
        self.name = name
        self._buffers: Dict[Tuple[int, Optional[int]], _GatherBuffer] = {}
        self.dirty_bytes = 0
        self.stats = StatsRegistry()
        self._flusher_running = False

    # -- client API -----------------------------------------------------------
    def write(self, request: IORequest) -> Event:
        """Absorb a write; completes at ack (write-behind semantics)."""
        if request.kind is not IOKind.WRITE:
            raise ValueError(f"write() got {request!r}")
        stamp_submit(request, self.sim.now)
        event = self.sim.event(name=f"wb{request.request_id}")
        self.sim.process(self._absorb(request, event),
                         name=f"{self.name}.absorb")
        return event

    def _absorb(self, request: IORequest, event: Event):
        params = self.params
        key = (request.disk_id, request.stream_id)
        buffer = self._buffers.get(key)
        if buffer is not None and request.offset != buffer.end:
            # Non-contiguous: flush the old run before starting anew.
            yield from self._flush(key)
            buffer = None
        while self.dirty_bytes + request.size > params.memory_budget:
            yield from self._flush_oldest()
        if buffer is None:
            buffer = _GatherBuffer(request.disk_id, request.offset,
                                   self.sim.now)
            self._buffers[key] = buffer
        buffer.size += request.size
        buffer.last_write = self.sim.now
        self.dirty_bytes += request.size
        self.stats.counter("absorbed").add(request.size)
        yield self.sim.timeout(params.ack_cost_s)
        request.complete_time = self.sim.now
        self.stats.latency("ack_latency").observe(request.latency)
        event.succeed(request)
        if buffer.size >= params.coalesce_bytes:
            yield from self._flush(key)
        self._ensure_flusher()

    # -- flushing -----------------------------------------------------------------
    def _flush(self, key) -> "object":
        buffer = self._buffers.pop(key, None)
        if buffer is None or buffer.size == 0:
            return
        self.dirty_bytes -= buffer.size
        flush = IORequest(kind=IOKind.WRITE, disk_id=buffer.disk_id,
                          offset=buffer.offset, size=buffer.size,
                          stream_id=key[1])
        flush.annotations["core.writeback"] = True
        self.stats.counter("flushes").add(buffer.size)
        yield self.device.submit(flush)

    def _flush_oldest(self):
        if not self._buffers:
            return
        key = min(self._buffers,
                  key=lambda k: self._buffers[k].last_write)
        yield from self._flush(key)

    def flush_all(self) -> Event:
        """Barrier: returns an event firing once all dirty data is on
        disk."""
        done = self.sim.event(name=f"{self.name}.barrier")

        def drain(sim):
            for key in list(self._buffers):
                yield from self._flush(key)
            done.succeed()

        self.sim.process(drain(self.sim), name=f"{self.name}.drain")
        return done

    def _ensure_flusher(self) -> None:
        if self._flusher_running:
            return
        self._flusher_running = True
        self.sim.process(self._flusher(), name=f"{self.name}.flusher")

    def _flusher(self):
        """Background timeout flusher: no gather buffer sits dirty
        forever."""
        period = self.params.flush_timeout / 2
        while self._buffers:
            yield self.sim.timeout(period)
            now = self.sim.now
            stale = [key for key, buffer in self._buffers.items()
                     if now - buffer.last_write >= self.params.flush_timeout]
            for key in stale:
                yield from self._flush(key)
        self._flusher_running = False

    def __repr__(self) -> str:
        return (f"<WriteCoalescer buffers={len(self._buffers)} "
                f"dirty={self.dirty_bytes}>")
