"""The paper's rejected classifier design, for the ablation benchmark.

Section 4.1 weighs two ways to bound bitmap memory: (1) one whole-disk
bitmap with each bit representing a *larger* block, or (2) small bitmaps
allocated dynamically per region. The paper picks (2) because coarse
bits hurt detection precision. This module implements (1) so the
trade-off is measurable: :class:`CoarseBitmapClassifier` keeps one
Python-int bitmap per disk at a configurable granularity and detects a
stream when a run of consecutive bits appears.

With ``granularity == classifier_block`` it detects as fast as the
dynamic design but pins the whole-disk bitmap; with coarse granularity
memory shrinks and detection needs proportionally more sequential data.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.classifier import SequentialClassifier
from repro.core.params import ServerParams
from repro.core.stream import StreamQueue
from repro.io import IORequest
from repro.units import MiB

__all__ = ["CoarseBitmapClassifier"]


class CoarseBitmapClassifier(SequentialClassifier):
    """One static per-disk bitmap; a run of set bits declares a stream.

    Parameters
    ----------
    params:
        Server parameters (threshold reused as the required run length).
    capacity_bytes:
        Per-disk capacity, fixing each bitmap's size.
    granularity:
        Bytes per bit. Larger = less memory, later/looser detection.
    """

    __slots__ = ("capacity_bytes", "granularity", "bits_per_disk",
                 "_disk_bits")

    def __init__(self, params: ServerParams, capacity_bytes: int,
                 granularity: int = 1 * MiB):
        super().__init__(params)
        if granularity < params.classifier_block:
            raise ValueError(
                f"granularity {granularity} below classifier block "
                f"{params.classifier_block}")
        if capacity_bytes < granularity:
            raise ValueError("capacity below one bitmap granule")
        self.capacity_bytes = capacity_bytes
        self.granularity = granularity
        self.bits_per_disk = -(-capacity_bytes // granularity)  # ceil
        self._disk_bits: Dict[int, int] = {}

    def memory_bytes(self) -> int:
        """Bitmap memory across all disks seen so far."""
        return len(self._disk_bits) * ((self.bits_per_disk + 7) // 8)

    def _observe_unknown(self, request: IORequest,
                         now: float) -> Optional[StreamQueue]:
        bits = self._disk_bits.get(request.disk_id, 0)
        first = request.offset // self.granularity
        last = (request.end - 1) // self.granularity
        width = last - first + 1
        bits |= ((1 << width) - 1) << first
        self._disk_bits[request.disk_id] = bits
        # Sequential evidence: `threshold` consecutive bits ending here.
        run = self.params.classifier_threshold
        if first + 1 < run:
            return None
        window = (bits >> (last - run + 1)) & ((1 << run) - 1)
        if window != (1 << run) - 1:
            return None
        stream = StreamQueue(request.disk_id, request.end, now,
                             client_id=request.stream_id)
        self._register_stream(stream)
        # Clear the detected run so a later stream in the same area must
        # re-establish evidence (the static design's closest analogue to
        # recycling a region bitmap).
        self._disk_bits[request.disk_id] &= ~(
            ((1 << run) - 1) << (last - run + 1))
        return stream

    def expire_bitmaps(self, now: float) -> int:
        """Static bitmaps never expire; nothing to recycle."""
        return 0

    def __repr__(self) -> str:
        return (f"<CoarseBitmapClassifier granule={self.granularity} "
                f"disks={len(self._disk_bits)} "
                f"streams={len(self.streams)}>")
