"""The dispatch set: which streams are generating disk requests.

At most ``D`` streams are dispatched at a time; each remains until it has
issued ``N`` read-ahead requests (its *residency*), then rotates out for
the next waiting stream under the replacement policy.

The admission queue is indexed (DESIGN.md "data-plane indexes"): a
waiting-id map makes :meth:`DispatchSet.is_waiting` /
:meth:`DispatchSet.drop_waiting` O(1), per-disk FIFO queues plus an
incrementally maintained per-disk member count make
:meth:`DispatchSet.admit_next` cost O(disks with waiters) instead of
O(waiting streams) — flat in stream count. Admission order is
bit-identical to the reference single-deque scan, which
``tests/test_core_differential.py`` pins.
"""

from __future__ import annotations

from collections import OrderedDict
from heapq import merge
from typing import Dict, List, Optional, Tuple

from repro.core.policies import ReplacementPolicy, RoundRobinPolicy
from repro.core.stream import StreamQueue, StreamState

__all__ = ["DispatchSet"]


class DispatchSet:
    """Membership management for dispatched streams."""

    def __init__(self, width: int, requests_per_residency: int,
                 policy: Optional[ReplacementPolicy] = None):
        if width < 1:
            raise ValueError(f"dispatch width must be >= 1: {width}")
        if requests_per_residency < 1:
            raise ValueError(
                f"requests_per_residency must be >= 1: "
                f"{requests_per_residency}")
        self.width = width
        self.requests_per_residency = requests_per_residency
        self.policy = policy or RoundRobinPolicy()
        self._members: Dict[int, StreamQueue] = {}
        #: stream_id -> arrival sequence number; the O(1) waiting-set
        #: membership test and the global FIFO order in one map.
        self._waiting_ids: Dict[int, int] = {}
        #: disk_id -> {stream_id: stream} in arrival order (per-disk
        #: FIFO); disks with no waiters are absent.
        self._waiting_by_disk: Dict[int, "OrderedDict[int, StreamQueue]"] \
            = {}
        #: disk_id -> dispatched member count, maintained on admission
        #: and rotation (disks at zero are absent).
        self._disk_load: Dict[int, int] = {}
        self._next_seq = 0
        #: Per-disk last dispatched offset, for offset-aware policies.
        self.last_offset: Dict[int, int] = {}
        self.admissions = 0
        self.rotations = 0

    # -- membership -------------------------------------------------------------
    @property
    def members(self) -> List[StreamQueue]:
        """Currently dispatched streams."""
        return list(self._members.values())

    @property
    def free_slots(self) -> int:
        """Dispatch slots not in use."""
        return self.width - len(self._members)

    @property
    def occupancy(self) -> int:
        """Dispatch slots in use (telemetry gauge)."""
        return len(self._members)

    @property
    def waiting_count(self) -> int:
        """Streams queued for admission."""
        return len(self._waiting_ids)

    @property
    def load_factor(self) -> float:
        """Dispatched + waiting streams relative to width.

        1.0 means every slot busy with nothing queued; values above 1
        measure backlog depth. The server's admission shedding scales
        its retry-after hint by this, so clients of an overloaded
        server are told to back off proportionally to the backlog
        (DESIGN.md §9).
        """
        return (len(self._members) + len(self._waiting_ids)) / self.width

    def is_member(self, stream: StreamQueue) -> bool:
        """Is the stream currently dispatched?"""
        return stream.stream_id in self._members

    def is_waiting(self, stream: StreamQueue) -> bool:
        """Is the stream queued for admission?"""
        return stream.stream_id in self._waiting_ids

    def enqueue(self, stream: StreamQueue) -> None:
        """Put a stream on the admission queue (idempotent)."""
        stream_id = stream.stream_id
        if stream_id in self._members or stream_id in self._waiting_ids:
            return
        stream.state = StreamState.WAITING
        self._waiting_ids[stream_id] = self._next_seq
        self._next_seq += 1
        per_disk = self._waiting_by_disk.get(stream.disk_id)
        if per_disk is None:
            per_disk = self._waiting_by_disk[stream.disk_id] = OrderedDict()
        per_disk[stream_id] = stream

    def _remove_waiting(self, stream: StreamQueue) -> None:
        del self._waiting_ids[stream.stream_id]
        per_disk = self._waiting_by_disk[stream.disk_id]
        del per_disk[stream.stream_id]
        if not per_disk:
            del self._waiting_by_disk[stream.disk_id]

    def admit_next(self) -> Optional[StreamQueue]:
        """Admit one waiting stream if a slot is free.

        Admission is disk-balanced: candidates are the waiting streams
        targeting the disks with the fewest dispatched members, and the
        replacement policy chooses among those. This keeps every spindle
        busy when ``D = #disks`` (Figure 13's configuration) instead of
        letting FIFO order stack several streams on one disk.

        The default round-robin policy always takes the FIFO head
        (``selects_first``), so admission reduces to the earliest
        arrival among the lightest disks' queue heads — no candidate
        list is materialised. Other policies see the same candidate
        list the reference scan built: every waiting stream on a
        lightest disk, in global arrival order.
        """
        if not self._waiting_ids or self.width <= len(self._members):
            return None
        load = self._disk_load
        by_disk = self._waiting_by_disk
        lightest = min(load.get(disk_id, 0) for disk_id in by_disk)
        if getattr(self.policy, "selects_first", False):
            waiting_ids = self._waiting_ids
            best_seq = None
            stream = None
            for disk_id, per_disk in by_disk.items():
                if load.get(disk_id, 0) != lightest:
                    continue
                head_id = next(iter(per_disk))
                seq = waiting_ids[head_id]
                if best_seq is None or seq < best_seq:
                    best_seq = seq
                    stream = per_disk[head_id]
        else:
            waiting_ids = self._waiting_ids
            runs = [[(waiting_ids[stream_id], queued)
                     for stream_id, queued in per_disk.items()]
                    for disk_id, per_disk in by_disk.items()
                    if load.get(disk_id, 0) == lightest]
            candidates = [queued for _seq, queued in merge(*runs)]
            index = self.policy.select(
                candidates, context={"last_offset": self.last_offset})
            stream = candidates[index]
        self._remove_waiting(stream)
        stream.state = StreamState.DISPATCHED
        stream.issued_in_residency = 0
        self._members[stream.stream_id] = stream
        load[stream.disk_id] = load.get(stream.disk_id, 0) + 1
        self.admissions += 1
        return stream

    def record_issue(self, stream: StreamQueue, offset: int) -> None:
        """Account one read-ahead issue for a member stream."""
        if not self.is_member(stream):
            raise ValueError(f"{stream!r} not in dispatch set")
        stream.issued_in_residency += 1
        stream.total_issued += 1
        self.last_offset[stream.disk_id] = offset

    def residency_expired(self, stream: StreamQueue) -> bool:
        """Has the stream used up its N issues?"""
        return stream.issued_in_residency >= self.requests_per_residency

    def rotate_out(self, stream: StreamQueue) -> None:
        """Remove a member (residency over, stream dead, or stalled)."""
        removed = self._members.pop(stream.stream_id, None)
        if removed is None:
            return
        remaining = self._disk_load[stream.disk_id] - 1
        if remaining:
            self._disk_load[stream.disk_id] = remaining
        else:
            del self._disk_load[stream.disk_id]
        stream.state = StreamState.BUFFERED
        self.rotations += 1

    def drop_waiting(self, stream: StreamQueue) -> None:
        """Remove a stream from the admission queue (GC path)."""
        if stream.stream_id in self._waiting_ids:
            self._remove_waiting(stream)

    def __repr__(self) -> str:
        return (f"<DispatchSet {len(self._members)}/{self.width} "
                f"waiting={len(self._waiting_ids)} N="
                f"{self.requests_per_residency}>")
