"""The dispatch set: which streams are generating disk requests.

At most ``D`` streams are dispatched at a time; each remains until it has
issued ``N`` read-ahead requests (its *residency*), then rotates out for
the next waiting stream under the replacement policy.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.core.policies import ReplacementPolicy, RoundRobinPolicy
from repro.core.stream import StreamQueue, StreamState

__all__ = ["DispatchSet"]


class DispatchSet:
    """Membership management for dispatched streams."""

    def __init__(self, width: int, requests_per_residency: int,
                 policy: Optional[ReplacementPolicy] = None):
        if width < 1:
            raise ValueError(f"dispatch width must be >= 1: {width}")
        if requests_per_residency < 1:
            raise ValueError(
                f"requests_per_residency must be >= 1: "
                f"{requests_per_residency}")
        self.width = width
        self.requests_per_residency = requests_per_residency
        self.policy = policy or RoundRobinPolicy()
        self._members: Dict[int, StreamQueue] = {}
        self._waiting: Deque[StreamQueue] = deque()
        #: Per-disk last dispatched offset, for offset-aware policies.
        self.last_offset: Dict[int, int] = {}
        self.admissions = 0
        self.rotations = 0

    # -- membership -------------------------------------------------------------
    @property
    def members(self) -> List[StreamQueue]:
        """Currently dispatched streams."""
        return list(self._members.values())

    @property
    def free_slots(self) -> int:
        """Dispatch slots not in use."""
        return self.width - len(self._members)

    @property
    def occupancy(self) -> int:
        """Dispatch slots in use (telemetry gauge)."""
        return len(self._members)

    @property
    def waiting_count(self) -> int:
        """Streams queued for admission."""
        return len(self._waiting)

    def is_member(self, stream: StreamQueue) -> bool:
        """Is the stream currently dispatched?"""
        return stream.stream_id in self._members

    def is_waiting(self, stream: StreamQueue) -> bool:
        """Is the stream queued for admission?"""
        return any(s.stream_id == stream.stream_id for s in self._waiting)

    def enqueue(self, stream: StreamQueue) -> None:
        """Put a stream on the admission queue (idempotent)."""
        if self.is_member(stream) or self.is_waiting(stream):
            return
        stream.state = StreamState.WAITING
        self._waiting.append(stream)

    def admit_next(self) -> Optional[StreamQueue]:
        """Admit one waiting stream if a slot is free.

        Admission is disk-balanced: candidates are the waiting streams
        targeting the disks with the fewest dispatched members, and the
        replacement policy chooses among those. This keeps every spindle
        busy when ``D = #disks`` (Figure 13's configuration) instead of
        letting FIFO order stack several streams on one disk.
        """
        if not self._waiting or self.free_slots <= 0:
            return None
        load: Dict[int, int] = {}
        for member in self._members.values():
            load[member.disk_id] = load.get(member.disk_id, 0) + 1
        lightest = min(load.get(s.disk_id, 0) for s in self._waiting)
        candidates = [s for s in self._waiting
                      if load.get(s.disk_id, 0) == lightest]
        index = self.policy.select(candidates,
                                   context={"last_offset": self.last_offset})
        stream = candidates[index]
        self._waiting.remove(stream)
        stream.state = StreamState.DISPATCHED
        stream.issued_in_residency = 0
        self._members[stream.stream_id] = stream
        self.admissions += 1
        return stream

    def record_issue(self, stream: StreamQueue, offset: int) -> None:
        """Account one read-ahead issue for a member stream."""
        if not self.is_member(stream):
            raise ValueError(f"{stream!r} not in dispatch set")
        stream.issued_in_residency += 1
        stream.total_issued += 1
        self.last_offset[stream.disk_id] = offset

    def residency_expired(self, stream: StreamQueue) -> bool:
        """Has the stream used up its N issues?"""
        return stream.issued_in_residency >= self.requests_per_residency

    def rotate_out(self, stream: StreamQueue) -> None:
        """Remove a member (residency over, stream dead, or stalled)."""
        removed = self._members.pop(stream.stream_id, None)
        if removed is None:
            return
        stream.state = StreamState.BUFFERED
        self.rotations += 1

    def drop_waiting(self, stream: StreamQueue) -> None:
        """Remove a stream from the admission queue (GC path)."""
        try:
            self._waiting.remove(stream)
        except ValueError:
            pass

    def __repr__(self) -> str:
        return (f"<DispatchSet {len(self._members)}/{self.width} "
                f"waiting={len(self._waiting)} N="
                f"{self.requests_per_residency}>")
