"""The stream-aware storage server (Figure 9's architecture).

Request path::

    client → [classifier] ──direct──────────────→ device
                 │ (sequential stream)
                 ▼
           [stream queue] ←── pending requests
                 │
           [dispatch set: ≤ D streams, N issues each, policy rotation]
                 │ R-sized coalesced reads
                 ▼
               device ──fills──→ [buffered set: ≤ M bytes] ──completes──→ client

The completion path gives priority to the issue path: a filled buffer
first admits/pumps waiting streams (so disks never idle on completion
processing) and then completes the client requests it covers — the
paper's Section 4.2 ordering.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Optional, Set

from repro import obs
from repro.core.buffered_set import BufferedSet, StreamBuffer
from repro.core.classifier import SequentialClassifier
from repro.core.dispatch import DispatchSet
from repro.core.gc import GarbageCollector
from repro.core.params import ServerParams
from repro.core.policies import ReplacementPolicy
from repro.core.stream import StreamQueue
from repro.faults.errors import (
    AdmissionShedError,
    RequestTimeout,
    is_transient,
)
from repro.io import BlockDevice, IOKind, IORequest, stamp_submit
from repro.sim import Simulator
from repro.sim.events import Event
from repro.sim.stats import StatsRegistry

__all__ = ["ServerReport", "StreamServer"]


@dataclass(frozen=True)
class ServerReport:
    """Diagnostic snapshot of a running :class:`StreamServer`.

    ``staged_hit_fraction`` is the share of client requests completed
    from the buffered set — the paper's "serviced directly from memory"
    category (§5.5); high values mean the coalescing is doing its job.
    """

    live_streams: int
    dispatched_streams: int
    waiting_streams: int
    live_buffers: int
    memory_in_use: int
    memory_peak: int
    completed_requests: int
    completed_bytes: int
    staged_hit_fraction: float
    direct_fraction: float
    readahead_issued_bytes: int
    detected_streams: int
    gc_cycles: int
    quarantined_streams: int = 0
    shed_requests: int = 0

    def __str__(self) -> str:
        return (
            f"streams: {self.live_streams} live "
            f"({self.dispatched_streams} dispatched, "
            f"{self.waiting_streams} waiting), "
            f"buffers: {self.live_buffers} "
            f"({self.memory_in_use / 2**20:.1f} MB in use, "
            f"peak {self.memory_peak / 2**20:.1f} MB), "
            f"completed: {self.completed_requests} reqs "
            f"({self.staged_hit_fraction:.0%} staged, "
            f"{self.direct_fraction:.0%} direct)")


class StreamServer:
    """Host-level sequential-stream server over any block device.

    Parameters
    ----------
    sim:
        Owning simulator.
    device:
        Downstream :class:`~repro.io.BlockDevice` — a raw drive, a
        controller, or a whole storage node.
    params:
        The D/R/N/M configuration (see :class:`ServerParams`).
    policy:
        Dispatch-set replacement policy (default round-robin).
    """

    def __init__(self, sim: Simulator, device: BlockDevice,
                 params: Optional[ServerParams] = None,
                 policy: Optional[ReplacementPolicy] = None,
                 classifier: Optional[SequentialClassifier] = None,
                 name: str = "server"):
        self.sim = sim
        self.device = device
        self.params = params or ServerParams()
        self.name = name
        self.capacity_bytes = device.capacity_bytes
        #: Pluggable for the ablation variants (CoarseBitmapClassifier).
        self.classifier = classifier or SequentialClassifier(self.params)
        self.buffered = BufferedSet(self.params.memory_budget,
                                    on_change=self._buffers_changed)
        self.dispatch = DispatchSet(
            width=self.params.effective_dispatch_width,
            requests_per_residency=self.params.requests_per_residency,
            policy=policy)
        self.gc = GarbageCollector(self)
        self.stats = StatsRegistry()
        self._memory_waiters: list[Event] = []
        # Precomputed event/process names + hot metric objects: submit,
        # staged completion and pump run once per request, and the
        # f-string + registry probe per call were measurable.
        self._srv_name = f"{name}.srv"
        self._direct_name = f"{name}.direct"
        self._copy_name = f"{name}.copy"
        self._pump_name = f"{name}.pump"
        self._mem_name = f"{name}.mem"
        stats = self.stats
        self._c_direct = stats.counter("direct")
        self._c_staged_hits = stats.counter("staged_hits")
        self._c_completed = stats.counter("completed")
        self._l_latency = stats.latency("latency")
        self._c_readahead_issued = stats.counter("readahead_issued")
        # Fault/degradation policy state (DESIGN.md §6). All counters
        # stay zero when the policies are off (the default), and the
        # happy path through _await_device is then byte-for-byte the
        # historical submit-and-wait, so fault-free runs are
        # bit-identical to the policy-free server.
        self._deadline = self.params.request_deadline_s
        self._max_retries = self.params.max_retries
        #: Hot-path switch: with neither deadline nor retries, the
        #: submission helper short-circuits to the one-frame historical
        #: submit-and-wait.
        self._policies_off = (self._deadline <= 0.0
                              and self._max_retries == 0)
        self._retry_rng = random.Random(self.params.retry_seed)
        self._c_device_errors = stats.counter("device_errors")
        #: Client stream ids barred from coalescing after repeated
        #: fetch failures; their requests take the direct path.
        self._quarantined: Set[int] = set()
        self._c_retries = stats.counter("retries")
        self._c_timeouts = stats.counter("deadline_timeouts")
        self._c_quarantined = stats.counter("quarantined_streams")
        self._c_quarantine_bypass = stats.counter("quarantine_bypass")
        # Open-loop admission control (DESIGN.md §9). Off by default:
        # the off path adds one cached-boolean test to submit() and the
        # routing body (_accept) is untouched, so fault-free runs stay
        # bit-identical to the historical server.
        self._admission_limit = self.params.admission_limit
        self._admission_on = self._admission_limit > 0
        self._admission_queue_depth = self.params.admission_queue_depth
        self._in_service = 0
        self._admission_queue: deque = deque()
        self._admission_rng = random.Random(self.params.admission_seed)
        self._c_shed = stats.counter("admission_shed")
        self._c_admission_queued = stats.counter("admission_queued")
        # Ambient observability, captured once. Every hook below guards
        # on the cached boolean, so the default (obs off) adds exactly
        # one false test per hook site to the hot path.
        self._obs = obs.current()
        self._obs_on = self._obs.enabled
        if self._obs_on:
            telemetry = self._obs.telemetry_for(sim)
            if telemetry is not None:
                telemetry.watch_server(self, prefix=name)
                telemetry.start()
        self.write_coalescer = None
        if self.params.coalesce_writes:
            from repro.core.writeback import (
                WriteCoalescer,
                WriteCoalescerParams,
            )
            self.write_coalescer = WriteCoalescer(
                sim, device,
                WriteCoalescerParams(
                    coalesce_bytes=self.params.write_coalesce_bytes,
                    memory_budget=self.params.write_memory_budget),
                name=f"{name}.wback")

    # -- host cost-model mirroring ------------------------------------------
    def _buffers_changed(self, delta: int) -> None:
        register = getattr(self.device, "register_buffers", None)
        if register is not None:
            register(delta)
        if delta < 0 and self._memory_waiters:
            waiters, self._memory_waiters = self._memory_waiters, []
            for waiter in waiters:
                waiter.succeed()

    # -- observability hooks ------------------------------------------------
    def _obs_phase(self, request: IORequest, name: str) -> None:
        """Open the request's server phase span and make it the parent
        for the layers below (phases tile the client root: exactly one
        per request, closed in ``_finish`` / the failure paths)."""
        span = self._obs.begin_child(request, name, "server", self.sim.now)
        request.annotations["obs.phase"] = span
        self._obs.link(request, span)

    def _obs_fail(self, request: IORequest, exc: Exception) -> None:
        """Close the request's phase span on a failure completion."""
        span = request.annotations.pop("obs.phase", None)
        if span is not None:
            span.set_arg("error", type(exc).__name__)
            self._obs.spans.end(span, self.sim.now)

    # -- BlockDevice protocol ---------------------------------------------------
    def submit(self, request: IORequest) -> Event:
        """Accept a client request; returns its completion event.

        With admission control off (the default) this is a straight
        hand-off to the routing body (:meth:`_accept`) — one boolean
        test, bit-identical to the historical server. With it on, at
        most ``admission_limit`` client requests are in service; the
        overflow waits in a bounded FIFO, and when that is full too the
        oldest waiting request is shed (DESIGN.md §9).
        """
        stamp_submit(request, self.sim.now)
        event = self.sim.event(self._srv_name)
        if not self._admission_on:
            return self._accept(request, event)
        if self._in_service < self._admission_limit:
            self._admit(request, event)
            return event
        queue = self._admission_queue
        if self._admission_queue_depth > 0:
            if len(queue) >= self._admission_queue_depth:
                # FIFO shedding: drop the *oldest* waiting request so
                # the queue holds the freshest work (a stale request's
                # client has likely given up on it anyway).
                old_request, old_event = queue.popleft()
                self._shed(old_request, old_event)
            queue.append((request, event))
            self._c_admission_queued.add(request.size)
            return event
        self._shed(request, event)
        return event

    # -- admission control (DESIGN.md §9) -----------------------------------
    def _admit(self, request: IORequest, event: Event) -> None:
        """Count the request in service; release when its event fires.

        The release callback rides the completion event itself (fired
        on success *and* failure), so every exit path — staged hit,
        direct relay, quarantine drain, fetch abort — releases the
        slot without per-site bookkeeping. The write-coalescer branch
        returns its own event; the callback follows it there.
        """
        self._in_service += 1
        out = self._accept(request, event)
        if out is not event:
            out.callbacks.append(
                lambda fired, target=event: self._mirror_completion(
                    fired, target))
        out.callbacks.append(self._admission_release)

    def _mirror_completion(self, fired: Event, target: Event) -> None:
        """Relay a substitute completion onto the event the client holds."""
        if fired.ok:
            target.succeed(fired.value)
        else:
            target.fail(fired.value)

    def _admission_release(self, _event: Event) -> None:
        self._in_service -= 1
        queue = self._admission_queue
        while queue and self._in_service < self._admission_limit:
            request, event = queue.popleft()
            self._admit(request, event)

    def _shed(self, request: IORequest, event: Event) -> None:
        """Fail a request at the admission edge with a backoff hint."""
        retry_after = self.params.shed_backoff_s
        jitter = self.params.shed_backoff_jitter
        if jitter:
            retry_after *= 1.0 + jitter * (
                2.0 * self._admission_rng.random() - 1.0)
        # Scale the hint by dispatch-set load: the deeper the backlog,
        # the longer a resubmit should wait.
        retry_after *= 1.0 + self.dispatch.load_factor
        self._c_shed.add(request.size)
        if self._obs_on:
            self._obs.instant_for(
                request, "server.shed", "mark", self.sim.now,
                args={"retry_after_s": retry_after})
        event.fail(AdmissionShedError(
            f"{request!r} shed at admission "
            f"(in-service limit {self._admission_limit})",
            retry_after_s=retry_after))

    def _accept(self, request: IORequest, event: Event) -> Event:
        """Route an admitted request; returns the client-facing event."""
        if not request.is_read:
            if self.write_coalescer is not None:
                return self.write_coalescer.write(request)
            if self._obs_on:
                self._obs_phase(request, "server.direct")
            self._issue_direct(request, event)
            return event
        if self.params.read_ahead == 0:
            if self._obs_on:
                self._obs_phase(request, "server.direct")
            self._issue_direct(request, event)
            return event
        if request.stream_id is not None \
                and request.stream_id in self._quarantined:
            # Quarantined client: its fetch path proved unreliable, so
            # bypass classification/coalescing entirely.
            self._c_quarantine_bypass.add(request.size)
            if self._obs_on:
                self._obs_phase(request, "server.direct")
            self._issue_direct(request, event)
            return event
        stream = self.classifier.route(request, self.sim.now)
        self.gc.ensure_running()
        if stream is None:
            if self._obs_on:
                self._obs_phase(request, "server.direct")
            self._issue_direct(request, event)
            return event
        if request.end <= stream.fetch_next:
            # Within fetched/in-flight ranges: find the buffer holding
            # the request's last byte (fills are in order, so once it
            # fills everything before it has too). The buffer — not the
            # filled_until counter — is the source of truth: GC may have
            # reclaimed staged data the counter still remembers.
            buffer = self.buffered.find_in_stream(
                stream.stream_id, request.end - 1, 1)
            if buffer is None:
                # Data was fetched but reclaimed before this read (GC,
                # memory pressure): fall back to a direct read.
                self.stats.counter("reclaimed_misses").add(request.size)
                if self._obs_on:
                    self._obs_phase(request, "server.direct")
                self._issue_direct(request, event)
            elif buffer.filled:
                if self._obs_on:
                    self._obs_phase(request, "server.memhit")
                self._complete_from_memory(stream, request, event)
            else:
                # The covering fetch is in flight: wait for it.
                if self._obs_on:
                    self._obs_phase(request, "server.stage")
                buffer.waiters.append((request, event))
                self.stats.counter("attached").add(request.size)
        else:
            # Beyond the fetch frontier: queue on the stream and make
            # sure it is (or becomes) dispatched.
            if self._obs_on:
                self._obs_phase(request, "server.dispatchq")
            stream.pending.append((request, event))
            if not self.dispatch.is_member(stream):
                self.dispatch.enqueue(stream)
            self._admit_streams()
        return event

    # -- direct path ------------------------------------------------------------
    def _issue_direct(self, request: IORequest, event: Event) -> None:
        self._c_direct.add(request.size)
        self.sim.process(self._relay(request, event),
                         name=self._direct_name)

    def _relay(self, request: IORequest, event: Event):
        try:
            yield from self._submit_with_policy(request)
        except Exception as exc:  # device fault: surface to client
            if self._obs_on:
                self._obs_fail(request, exc)
            event.fail(exc)
            return
        self._finish(request, event)

    # -- fault policies (DESIGN.md §6) -------------------------------------
    def _await_device(self, request: IORequest):
        """One downstream attempt, bounded by the per-request deadline.

        With the deadline disabled (the default) this is exactly the
        historical submit-and-wait — no extra events, so fault-free runs
        stay bit-identical. With a deadline, a race between completion
        and a timeout converts stragglers into :class:`RequestTimeout`
        (transient: the retry policy may re-issue the request).
        """
        completion = self.device.submit(request)
        if self._deadline <= 0.0:
            value = yield completion
            return value
        expiry = self.sim.timeout(self._deadline)
        fired = yield self.sim.any_of([completion, expiry])
        if completion in fired:
            return fired[completion]
        self._c_timeouts.add(request.size)
        if self._obs_on:
            self._obs.instant_for(request, "server.timeout", "mark",
                                  self.sim.now,
                                  args={"deadline_s": self._deadline})
        raise RequestTimeout(
            f"{request!r} missed the {self._deadline:g}s deadline")

    def _backoff_delay(self, attempt: int) -> float:
        """Exponential backoff with seeded multiplicative jitter."""
        params = self.params
        delay = min(params.retry_backoff_s * (2 ** (attempt - 1)),
                    params.retry_backoff_cap_s)
        jitter = params.retry_backoff_jitter
        if jitter:
            delay *= 1.0 + jitter * (2.0 * self._retry_rng.random() - 1.0)
        return delay

    def _submit_with_policy(self, request: IORequest):
        """Deadline-bounded submission with bounded transient retries.

        Yield-from helper shared by the direct path and the read-ahead
        fetch path. Permanent errors (and transient errors once
        ``max_retries`` is exhausted) propagate to the caller; every
        failed attempt lands in the ``device_errors`` counter.
        """
        if self._policies_off:
            # Fast path: the historical submit-and-wait, without the
            # extra _await_device generator frame per request.
            try:
                value = yield self.device.submit(request)
            except Exception:
                self._c_device_errors.add(request.size)
                raise
            return value
        attempt = 0
        while True:
            try:
                value = yield from self._await_device(request)
            except Exception as exc:
                self._c_device_errors.add(request.size)
                if attempt < self._max_retries and is_transient(exc):
                    attempt += 1
                    self._c_retries.add(request.size)
                    if self._obs_on:
                        self._obs.instant_for(
                            request, "server.retry", "mark", self.sim.now,
                            args={"attempt": attempt,
                                  "error": type(exc).__name__})
                    yield self.sim.timeout(self._backoff_delay(attempt))
                    continue
                raise
            return value

    # -- staged completions --------------------------------------------------------
    def _complete_from_memory(self, stream: StreamQueue, request: IORequest,
                              event: Event) -> None:
        self._consume(stream, request)
        self._c_staged_hits.add(request.size)
        self.sim.process(self._copy_complete(request, event),
                         name=self._copy_name)

    def _copy_complete(self, request: IORequest, event: Event):
        """Model the memory-to-client copy, then complete the request."""
        yield self.sim.timeout(self.params.completion_copy_s)
        self._finish(request, event)

    def _consume(self, stream: StreamQueue, request: IORequest) -> None:
        """Advance consumption over the stream's buffers (in order)."""
        for buffer in list(self.buffered.stream_buffers(stream.stream_id)):
            if buffer.offset >= request.end:
                break
            upto = min(buffer.end, request.end)
            self.buffered.consume(buffer, buffer.offset,
                                  upto - buffer.offset, self.sim.now)

    def _finish(self, request: IORequest, event: Event) -> None:
        request.complete_time = self.sim.now
        self._c_completed.add(request.size)
        self._l_latency.observe(request.latency)
        if self._obs_on:
            span = request.annotations.pop("obs.phase", None)
            if span is not None:
                self._obs.spans.end(span, self.sim.now)
        event.succeed(request)

    # -- dispatching --------------------------------------------------------------
    def _admit_streams(self) -> None:
        """Fill free dispatch slots and start their pumps."""
        while True:
            stream = self.dispatch.admit_next()
            if stream is None:
                return
            self.sim.process(self._pump(stream), name=self._pump_name)

    def _pump(self, stream: StreamQueue):
        """One dispatch-set residency: issue up to N read-ahead requests."""
        params = self.params
        while (self.dispatch.is_member(stream)
               and not self.dispatch.residency_expired(stream)):
            size = min(params.read_ahead,
                       self.capacity_bytes - stream.fetch_next)
            if size <= 0:
                break  # stream ran off the end of the disk
            while not self.buffered.can_allocate(size):
                waiter = self.sim.event(self._mem_name)
                self._memory_waiters.append(waiter)
                yield waiter
                if not self.dispatch.is_member(stream):
                    return
            offset = stream.fetch_next
            buffer = self.buffered.allocate(stream.stream_id,
                                            stream.disk_id, offset, size,
                                            self.sim.now)
            stream.fetch_next = offset + size
            self.dispatch.record_issue(stream, offset)
            fetch = IORequest(kind=IOKind.READ, disk_id=stream.disk_id,
                              offset=offset, size=size,
                              stream_id=stream.client_id)
            fetch.annotations["core.readahead"] = stream.stream_id
            fetch_span = None
            if self._obs_on:
                # A coalesced fetch serves many client requests, so it
                # roots its own trace instead of borrowing one client's
                # (keeps client phase spans pairwise disjoint).
                fetch_span = self._obs.spans.begin(
                    "server.fetch", "readahead", self.sim.now,
                    args={"stream": stream.stream_id, "offset": offset,
                          "size": size})
                self._obs.link(fetch, fetch_span)
            self._c_readahead_issued.add(size)
            try:
                yield from self._submit_with_policy(fetch)
            except Exception as exc:  # device fault mid-fetch
                if fetch_span is not None:
                    fetch_span.set_arg("error", type(exc).__name__)
                    self._obs.spans.end(fetch_span, self.sim.now)
                self._abort_fetch(stream, buffer, exc)
                self._record_fetch_failure(stream, exc)
                break
            if fetch_span is not None:
                self._obs.spans.end(fetch_span, self.sim.now)
            stream.fetch_failures = 0
            self._buffer_filled(stream, buffer, fetch_span)
        self._rotate(stream)

    def _record_fetch_failure(self, stream: StreamQueue,
                              exc: Exception) -> None:
        """Count a failed (retry-exhausted) fetch; quarantine at the
        threshold."""
        stream.fetch_failures += 1
        threshold = self.params.quarantine_threshold
        if threshold and stream.fetch_failures >= threshold:
            self._quarantine(stream, exc)

    def _quarantine(self, stream: StreamQueue, exc: Exception) -> None:
        """Evict a repeatedly failing stream from the coalescing machinery.

        The stream leaves the dispatch set and admission queue, its
        staged pages are reclaimed, its classifier entry is dropped, and
        its client id is barred from re-classification — subsequent
        requests from that client take the direct path (which still
        applies the retry policy per request). Any requests still parked
        on the stream fail with the triggering error: the fetch path
        that would have served them is the thing that just proved
        broken.
        """
        self._c_quarantined.add()
        if self._obs_on:
            self._obs.spans.instant(
                "server.quarantine", "fault", self.sim.now,
                args={"stream": stream.stream_id,
                      "error": type(exc).__name__})
        if stream.client_id is not None:
            self._quarantined.add(stream.client_id)
        while stream.pending:
            _request, event = stream.pending.popleft()
            if self._obs_on:
                self._obs_fail(_request, exc)
            event.fail(exc)
        reclaimed = self.buffered.release_stream(stream.stream_id)
        self.stats.counter("quarantine_reclaimed").add(reclaimed)
        self.dispatch.rotate_out(stream)
        self.dispatch.drop_waiting(stream)
        self.classifier.drop_stream(stream)

    def _abort_fetch(self, stream: StreamQueue, buffer: StreamBuffer,
                     exc: Exception) -> None:
        """A read-ahead fetch failed: fail its waiters, drop the buffer.

        Pending requests beyond the failed range fail too — their data
        can only arrive through the fetch path that just broke; the
        stream itself survives and may be re-dispatched by new requests.
        """
        for _request, event in self.buffered.discard(buffer):
            if self._obs_on:
                self._obs_fail(_request, exc)
            event.fail(exc)
        while stream.pending:
            _request, event = stream.pending.popleft()
            if self._obs_on:
                self._obs_fail(_request, exc)
            event.fail(exc)
        stream.fetch_next = min(stream.fetch_next, buffer.offset)

    def _buffer_filled(self, stream: StreamQueue,
                       buffer: StreamBuffer,
                       fetch_span=None) -> None:
        """Completion path: issue-path work first, then client completions.

        Under tracing, every client request this fill unblocks is
        joined to the fetch that paid for it: the request's open phase
        span gets a ``fetch_trace`` arg naming the fetch's trace, and
        the fetch span counts its ``unblocked`` requests — the link the
        report CLI's read-ahead join table aggregates into the §5.5
        cost picture (fetches root their own traces, so without the
        tag the causality would be unrecoverable from an export).
        """
        waiters = self.buffered.mark_filled(buffer, self.sim.now)
        if self.buffered.find_in_stream(stream.stream_id, buffer.offset,
                                        1) is buffer:
            stream.filled_until = max(stream.filled_until, buffer.end)
        # Issue path gets priority (Section 4.2): admit/refill before
        # completing clients.
        self._admit_streams()
        unblocked = 0
        for request, event in waiters:
            self._consume(stream, request)
            self._c_staged_hits.add(request.size)
            if fetch_span is not None:
                unblocked += 1
                self._obs_join_fetch(request, fetch_span)
            self._finish_later(request, event)
        while stream.pending:
            request, event = stream.pending[0]
            if request.end > stream.filled_until:
                break
            stream.pending.popleft()
            self._consume(stream, request)
            self._c_staged_hits.add(request.size)
            if fetch_span is not None:
                unblocked += 1
                self._obs_join_fetch(request, fetch_span)
            self._finish_later(request, event)
        if fetch_span is not None:
            fetch_span.set_arg("unblocked", unblocked)

    def _obs_join_fetch(self, request: IORequest, fetch_span) -> None:
        """Tag an unblocked request's phase span with its fetch's trace."""
        span = request.annotations.get("obs.phase")
        if span is not None:
            span.set_arg("fetch_trace", fetch_span.trace_id)

    def _finish_later(self, request: IORequest, event: Event) -> None:
        self.sim.process(self._copy_complete(request, event),
                         name=self._copy_name)

    def _rotate(self, stream: StreamQueue) -> None:
        """End of residency: leave the dispatch set, requeue if needed.

        A stream with clients still waiting competes for a slot again
        immediately; an idle one re-enters through ``submit`` the next
        time a request outruns its staged data.
        """
        self.dispatch.rotate_out(stream)
        if stream.has_demand and stream.fetch_next < self.capacity_bytes:
            self.dispatch.enqueue(stream)
        elif stream.has_demand:
            # The stream ran off the end of the disk with clients still
            # queued: read-ahead cannot serve them, so hand them to the
            # direct path rather than leaving them parked forever.
            while stream.pending:
                request, event = stream.pending.popleft()
                if self._obs_on:
                    # The open phase was "server.dispatchq" but the
                    # request is now served by the device: rename it so
                    # attribution charges the device phases, not staging
                    # (mapped parent + mapped children would double
                    # count).
                    span = request.annotations.get("obs.phase")
                    if span is not None:
                        span.name = "server.direct"
                self._issue_direct(request, event)
        self._admit_streams()

    # -- reporting -------------------------------------------------------------------
    def throughput(self, elapsed: float) -> float:
        """Client-visible completed bytes per second."""
        return self.stats.counter("completed").throughput(elapsed)

    def report(self) -> "ServerReport":
        """Point-in-time diagnostic snapshot (see :class:`ServerReport`)."""
        completed = self.stats.counter("completed")
        staged = self.stats.counter("staged_hits")
        direct = self.stats.counter("direct")
        return ServerReport(
            live_streams=self.classifier.live_streams,
            dispatched_streams=len(self.dispatch.members),
            waiting_streams=self.dispatch.waiting_count,
            live_buffers=len(self.buffered),
            memory_in_use=self.buffered.in_use,
            memory_peak=self.buffered.peak_in_use,
            completed_requests=completed.count,
            completed_bytes=completed.total_bytes,
            staged_hit_fraction=(staged.count / completed.count
                                 if completed.count else 0.0),
            direct_fraction=(direct.count / completed.count
                             if completed.count else 0.0),
            readahead_issued_bytes=self.stats.counter(
                "readahead_issued").total_bytes,
            detected_streams=self.classifier.detected,
            gc_cycles=self.gc.cycles,
            quarantined_streams=self._c_quarantined.count,
            shed_requests=self._c_shed.count,
        )

    @property
    def memory_in_use(self) -> int:
        """Bytes currently staged in the buffered set."""
        return self.buffered.in_use

    def __repr__(self) -> str:
        return (f"<StreamServer D={self.dispatch.width} "
                f"R={self.params.read_ahead} "
                f"N={self.params.requests_per_residency} "
                f"M={self.params.memory_budget} "
                f"streams={self.classifier.live_streams}>")
