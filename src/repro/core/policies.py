"""Dispatch-set replacement policies.

The paper uses round-robin ("involved policies are possible ... we
currently use a simple round-robin policy") and sketches an offset-aware
alternative that favours streams near the disk head; both are implemented
so the ablation benchmark can compare them.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence

from repro.core.stream import StreamQueue

__all__ = [
    "OffsetAwarePolicy",
    "ReplacementPolicy",
    "RoundRobinPolicy",
    "make_replacement_policy",
]


class ReplacementPolicy(abc.ABC):
    """Chooses which waiting stream enters the dispatch set next."""

    name = "abstract"
    #: True when ``select`` always returns 0 regardless of context; the
    #: dispatch set then admits the FIFO head among the lightest disks
    #: directly instead of materialising the candidate list.
    selects_first = False

    @abc.abstractmethod
    def select(self, waiting: Sequence[StreamQueue],
               context: Optional[Dict] = None) -> int:
        """Index into ``waiting`` of the stream to admit."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class RoundRobinPolicy(ReplacementPolicy):
    """FIFO over the waiting list — the paper's default."""

    name = "round-robin"
    selects_first = True

    def select(self, waiting: Sequence[StreamQueue],
               context: Optional[Dict] = None) -> int:
        if not waiting:
            raise ValueError("select() on empty waiting list")
        return 0


class OffsetAwarePolicy(ReplacementPolicy):
    """Admit the waiting stream whose next fetch is nearest the last
    dispatched position on its disk (reduces inter-stream seeks).

    ``context`` carries ``{"last_offset": {disk_id: byte_offset}}`` from
    the dispatcher; disks never dispatched fall back to offset order.
    """

    name = "offset-aware"

    def select(self, waiting: Sequence[StreamQueue],
               context: Optional[Dict] = None) -> int:
        if not waiting:
            raise ValueError("select() on empty waiting list")
        last_offsets = (context or {}).get("last_offset", {})

        def distance(stream: StreamQueue) -> int:
            anchor = last_offsets.get(stream.disk_id, 0)
            return abs(stream.fetch_next - anchor)

        best = min(range(len(waiting)), key=lambda i: distance(waiting[i]))
        return best


_POLICIES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    "rr": RoundRobinPolicy,
    OffsetAwarePolicy.name: OffsetAwarePolicy,
    "offset": OffsetAwarePolicy,
}


def make_replacement_policy(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by name."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from "
            f"{sorted(set(_POLICIES))}") from None
