"""I/O request model and device interface shared by every layer.

The whole stack — clients, the stream-aware server, OS scheduler baselines,
controllers and disks — exchanges :class:`IORequest` objects and talks to
lower layers through the :class:`BlockDevice` protocol, so components
compose freely (server over raw disk, server over controller, scheduler over
controller, ...).
"""

from __future__ import annotations

import enum
import itertools
import typing
from dataclasses import dataclass, field
from typing import Any, Optional, Protocol, runtime_checkable

from repro.units import SECTOR_BYTES

if typing.TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sim.events import Event

__all__ = ["IOKind", "IORequest", "BlockDevice", "request_id_source",
           "stamp_submit"]


def stamp_submit(request: "IORequest", now: float) -> None:
    """Record the request's first submission time.

    Layers call this on entry; only the *first* layer's stamp sticks, so
    ``request.latency`` is end-to-end (client-visible) even when the
    request traverses server → node → controller → drive, each of which
    would otherwise overwrite the stamp and erase upper-layer queueing.
    """
    if request.submit_time == 0.0:
        request.submit_time = now


class IOKind(enum.Enum):
    """Request direction."""

    READ = "read"
    WRITE = "write"


#: Monotonic ids shared process-wide; ids only need to be unique per run.
request_id_source = itertools.count(1)


@dataclass(slots=True)
class IORequest:
    """One block-level I/O request.

    Slotted: requests are created once per client I/O and their fields
    are read in every layer they traverse (server, node, controller,
    drive, cache), so the slot layout pays for itself immediately.

    Addresses are byte offsets from the start of the target device; the disk
    layer converts to sectors. Requests must be sector-aligned — the stack
    models a block device, not a file API.

    Attributes
    ----------
    kind:
        READ or WRITE.
    disk_id:
        Target disk within the storage node (0-based). Single-device layers
        ignore it.
    offset / size:
        Byte range ``[offset, offset + size)``.
    stream_id:
        Identity of the logical stream/client thread that issued the request;
        the classifier and CFQ group by it. ``None`` for anonymous requests.
    submit_time / complete_time:
        Stamped by the layer that owns the client-visible lifecycle.
    parent:
        For split/coalesced requests, the originating request.
    annotations:
        Free-form per-layer scratch (cache-hit flags, queue names...). Layers
        must namespace their keys (e.g. ``"core.hit"``).
    """

    kind: IOKind
    disk_id: int
    offset: int
    size: int
    stream_id: Optional[int] = None
    submit_time: float = 0.0
    complete_time: float = 0.0
    parent: Optional["IORequest"] = None
    request_id: int = field(default_factory=lambda: next(request_id_source))
    annotations: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(f"negative offset: {self.offset}")
        if self.size <= 0:
            raise ValueError(f"non-positive size: {self.size}")
        if self.offset % SECTOR_BYTES or self.size % SECTOR_BYTES:
            raise ValueError(
                f"request not sector-aligned: offset={self.offset} "
                f"size={self.size}")

    # -- geometry helpers ----------------------------------------------------
    @property
    def end(self) -> int:
        """One-past-the-end byte offset."""
        return self.offset + self.size

    @property
    def is_read(self) -> bool:
        """True for READ requests."""
        return self.kind is IOKind.READ

    @property
    def latency(self) -> float:
        """Completion minus submission time (valid once completed)."""
        return self.complete_time - self.submit_time

    def overlaps(self, offset: int, size: int) -> bool:
        """True when this request intersects ``[offset, offset+size)``."""
        return self.offset < offset + size and offset < self.end

    def contains(self, offset: int, size: int) -> bool:
        """True when ``[offset, offset+size)`` lies inside this request."""
        return self.offset <= offset and offset + size <= self.end

    def adjacent_after(self, other: "IORequest") -> bool:
        """True when this request starts exactly where ``other`` ends."""
        return self.disk_id == other.disk_id and self.offset == other.end

    def derive(self, offset: int, size: int, kind: Optional[IOKind] = None,
               ) -> "IORequest":
        """Child request over a sub/super-range, linked via ``parent``."""
        return IORequest(
            kind=kind or self.kind,
            disk_id=self.disk_id,
            offset=offset,
            size=size,
            stream_id=self.stream_id,
            submit_time=self.submit_time,
            parent=self,
        )

    def __repr__(self) -> str:
        return (f"<IO#{self.request_id} {self.kind.value} d{self.disk_id} "
                f"[{self.offset}, {self.end}) s={self.stream_id}>")


@runtime_checkable
class BlockDevice(Protocol):
    """Anything that services :class:`IORequest` objects.

    ``submit`` returns an event that fires with the request when it
    completes; the device stamps ``complete_time``. ``capacity_bytes`` is
    the addressable size (per disk for multi-disk devices).
    """

    capacity_bytes: int

    def submit(self, request: IORequest) -> "Event":
        """Begin servicing ``request``; returns its completion event."""
        ...  # pragma: no cover - protocol stub
