"""The block layer: a scheduler-driven dispatcher over a block device.

Owns the request queue for one device, asks the scheduler what to do
whenever the device has capacity, honours deliberate idling (anticipatory,
CFQ ``slice_idle``), and completes merged requests alongside their
carriers.
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.host.schedulers.base import Dispatch, Idle, IOScheduler
from repro.io import BlockDevice, IORequest, stamp_submit
from repro.sim import Simulator
from repro.sim.events import Event
from repro.sim.stats import StatsRegistry

__all__ = ["BlockLayer"]


class BlockLayer:
    """Dispatch requests to ``device`` in the order ``scheduler`` decides.

    Parameters
    ----------
    sim:
        Owning simulator.
    device:
        Any :class:`~repro.io.BlockDevice` (drive, controller, node).
    scheduler:
        The I/O scheduler instance (owned exclusively by this layer).
    dispatch_depth:
        Concurrent requests allowed at the device. Depth 1 models the
        pre-NCQ SATA stacks of the paper's era; the scheduler sees every
        scheduling decision.
    """

    def __init__(self, sim: Simulator, device: BlockDevice,
                 scheduler: IOScheduler, dispatch_depth: int = 1,
                 name: str = "blk"):
        if dispatch_depth < 1:
            raise ValueError(f"dispatch_depth must be >= 1: {dispatch_depth}")
        self.sim = sim
        self.device = device
        self.scheduler = scheduler
        self.dispatch_depth = dispatch_depth
        self.name = name
        self.capacity_bytes = device.capacity_bytes
        self.in_flight = 0
        self.stats = StatsRegistry()
        self._completions: dict[int, Event] = {}
        self._wake: Optional[Event] = None
        self._dispatcher_running = False
        # Precomputed hot-path names (one wake/wait per dispatch cycle).
        self._wake_name = f"{name}.wake"
        self._wait_name = f"{name}.wait"
        self._disp_name = f"{name}.disp"
        # Ambient observability, captured once (boolean-guarded hooks).
        self._obs = obs.current()
        self._obs_on = self._obs.enabled

    # -- BlockDevice protocol -----------------------------------------------
    def submit(self, request: IORequest) -> Event:
        """Queue ``request`` with the scheduler; returns completion event."""
        stamp_submit(request, self.sim.now)
        event = self.sim.event(name="blk")
        self._completions[request.request_id] = event
        if self._obs_on:
            # Scheduler-queue phase: closed at dispatch (or, for merged
            # requests, at the carrier's completion).
            request.annotations["obs.blkq"] = self._obs.begin_child(
                request, "blk.queue", "blk", self.sim.now)
        self.scheduler.add(request, self.sim.now)
        self._kick()
        return event

    # -- dispatcher ------------------------------------------------------------
    def _kick(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()
        if not self._dispatcher_running:
            self._dispatcher_running = True
            self.sim.process(self._dispatcher(), name=self._disp_name)

    def _dispatcher(self):
        while True:
            if self.in_flight >= self.dispatch_depth:
                yield self._make_wake()
                continue
            decision = self.scheduler.decide(self.sim.now)
            if isinstance(decision, Dispatch):
                self._issue(decision.request)
                continue
            if isinstance(decision, Idle):
                delay = max(0.0, decision.until - self.sim.now)
                self.stats.counter("idle_waits").add()
                wake = self._make_wake()
                yield self.sim.any_of([wake, self.sim.timeout(delay)])
                continue
            # Nothing queued: park until work or a completion arrives.
            if self.in_flight == 0 and len(self.scheduler) == 0:
                self._dispatcher_running = False
                self._wake = None
                return
            yield self._make_wake()

    def _make_wake(self) -> Event:
        self._wake = self.sim.event(name=self._wake_name)
        return self._wake

    def _issue(self, request: IORequest) -> None:
        self.in_flight += 1
        self.stats.counter("dispatched").add(request.size)
        if self._obs_on:
            span = request.annotations.pop("obs.blkq", None)
            if span is not None:
                self._obs.spans.end(span, self.sim.now)

        def waiter(sim):
            yield self.device.submit(request)
            self.in_flight -= 1
            self.scheduler.on_complete(request, sim.now)
            self._finish(request)
            self._kick()

        self.sim.process(waiter(self.sim), name=self._wait_name)

    def _finish(self, request: IORequest) -> None:
        """Complete the request and any requests merged into it."""
        for absorbed in request.annotations.pop("merged", []):
            absorbed.complete_time = self.sim.now
            if self._obs_on:
                span = absorbed.annotations.pop("obs.blkq", None)
                if span is not None:
                    # Merged requests ride their carrier: the whole
                    # residency was queue time from this layer's view.
                    span.set_arg("merged", True)
                    self._obs.spans.end(span, self.sim.now)
            self.stats.counter("completed").add(absorbed.size)
            event = self._completions.pop(absorbed.request_id, None)
            if event is not None:
                event.succeed(absorbed)
        request.complete_time = self.sim.now
        self.stats.counter("completed").add(request.size)
        self.stats.latency("latency").observe(request.latency)
        event = self._completions.pop(request.request_id, None)
        if event is not None:
            event.succeed(request)

    def __repr__(self) -> str:
        return (f"<BlockLayer {self.name!r} {self.scheduler.name} "
                f"queued={len(self.scheduler)} in_flight={self.in_flight}>")
