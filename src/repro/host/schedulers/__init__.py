"""OS I/O schedulers (the paper's Figure 2 baselines)."""

from repro.host.schedulers.base import Dispatch, Idle, IOScheduler
from repro.host.schedulers.noop import NoopScheduler
from repro.host.schedulers.deadline import DeadlineScheduler
from repro.host.schedulers.anticipatory import AnticipatoryScheduler
from repro.host.schedulers.cfq import CFQScheduler

__all__ = [
    "AnticipatoryScheduler",
    "CFQScheduler",
    "DeadlineScheduler",
    "Dispatch",
    "Idle",
    "IOScheduler",
    "NoopScheduler",
    "make_scheduler",
]

_SCHEDULERS = {
    "noop": NoopScheduler,
    "deadline": DeadlineScheduler,
    "anticipatory": AnticipatoryScheduler,
    "as": AnticipatoryScheduler,
    "cfq": CFQScheduler,
}


def make_scheduler(name: str, **kwargs) -> IOScheduler:
    """Instantiate a scheduler by its Linux elevator name."""
    try:
        cls = _SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from "
            f"{sorted(set(_SCHEDULERS))}") from None
    return cls(**kwargs)
