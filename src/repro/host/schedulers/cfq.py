"""The Completely Fair Queueing (CFQ) scheduler.

One queue per stream (process); the active queue owns the disk for a time
slice, and CFQ idles briefly on an empty-but-active queue (``slice_idle``)
so a synchronous reader keeps its slice — the same deceptive-idleness
counter-measure as anticipatory, bounded per-slice.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Optional

from repro.host.schedulers.base import Dispatch, Idle, IOScheduler
from repro.io import IORequest

__all__ = ["CFQScheduler"]

#: Queue key used for requests with no stream identity.
_ANONYMOUS = -1


class CFQScheduler(IOScheduler):
    """Round-robin time slices over per-stream queues.

    Parameters
    ----------
    slice_sync:
        Service slice per stream (Linux ``slice_sync`` ≈ 100 ms).
    slice_idle:
        Idle window kept for an active-but-empty queue (Linux default
        8 ms).
    """

    name = "cfq"

    def __init__(self, slice_sync: float = 0.1, slice_idle: float = 0.008):
        super().__init__()
        if slice_sync <= 0 or slice_idle < 0:
            raise ValueError("cfq parameters out of range")
        self.slice_sync = slice_sync
        self.slice_idle = slice_idle
        #: Round-robin service order; OrderedDict gives O(1) rotation.
        self._queues: "OrderedDict[int, Deque[IORequest]]" = OrderedDict()
        self._active: Optional[int] = None
        self._slice_end = 0.0
        self._idle_until = 0.0
        #: Per-stream think-time EWMA (see anticipatory): idling is not
        #: armed for streams that predictably outwait ``slice_idle``.
        self._last_completion: dict[int, float] = {}
        self._think_ewma: dict[int, float] = {}
        self.slice_switches = 0

    def _queue_key(self, request: IORequest) -> int:
        return request.stream_id if request.stream_id is not None \
            else _ANONYMOUS

    def add(self, request: IORequest, now: float) -> None:
        key = self._queue_key(request)
        if key in self._last_completion:
            gap = now - self._last_completion.pop(key)
            previous = self._think_ewma.get(key, gap)
            self._think_ewma[key] = 0.75 * previous + 0.25 * gap
        if key not in self._queues:
            self._queues[key] = deque()
        self._queues[key].append(request)
        self.queued += 1

    def on_complete(self, request: IORequest, now: float) -> None:
        key = self._queue_key(request)
        self._last_completion[key] = now
        if key == self._active:
            # Completion re-arms the idle window for the active stream —
            # unless the stream's think time predictably outlasts it.
            if self._think_ewma.get(key, 0.0) <= self.slice_idle:
                self._idle_until = now + self.slice_idle
            else:
                self._idle_until = now

    def decide(self, now: float):
        if self.queued == 0 and self._active is None:
            return None
        if self._active is not None:
            queue = self._queues.get(self._active)
            slice_alive = now < self._slice_end
            if slice_alive and queue:
                return self._dispatch_from(self._active)
            if slice_alive and self.queued and now < self._idle_until:
                # Active stream may be about to issue its next sync read.
                return Idle(self._idle_until)
            if slice_alive and not self.queued:
                if now < self._idle_until:
                    return Idle(self._idle_until)
                self._expire_active()
                return None
            self._expire_active()
        # Activate the next non-empty queue in round-robin order.
        for key in list(self._queues):
            if self._queues[key]:
                self._activate(key, now)
                return self._dispatch_from(key)
        return None

    def _dispatch_from(self, key: int) -> Dispatch:
        request = self._queues[key].popleft()
        self.queued -= 1
        self.dispatched += 1
        return Dispatch(request)

    def _activate(self, key: int, now: float) -> None:
        self._active = key
        self._slice_end = now + self.slice_sync
        self._idle_until = now + self.slice_idle
        self.slice_switches += 1
        # Rotate: the activated queue moves to the back of the RR order.
        self._queues.move_to_end(key)

    def _expire_active(self) -> None:
        if self._active is not None:
            queue = self._queues.get(self._active)
            if queue is not None and not queue:
                del self._queues[self._active]
            self._active = None
