"""The deadline elevator.

Requests are serviced in sweep (offset) order for throughput, but each
carries an expiry; when the oldest request's deadline passes, the sweep
jumps to it. Reads and writes have separate deadlines (reads tighter),
matching the Linux design.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.host.schedulers.base import Dispatch, ElevatorQueue, IOScheduler
from repro.io import IORequest

__all__ = ["DeadlineScheduler"]


class DeadlineScheduler(IOScheduler):
    """Sweep order with expiry-driven jumps.

    Parameters
    ----------
    read_expire / write_expire:
        Maximum queueing delay before a request preempts the sweep
        (Linux defaults: 500 ms reads, 5 s writes).
    """

    name = "deadline"

    def __init__(self, read_expire: float = 0.5, write_expire: float = 5.0):
        super().__init__()
        if read_expire <= 0 or write_expire <= 0:
            raise ValueError("expiry times must be positive")
        self.read_expire = read_expire
        self.write_expire = write_expire
        self._elevator = ElevatorQueue()
        self._deadlines: Deque[Tuple[float, IORequest]] = deque()
        self.expired_dispatches = 0

    def add(self, request: IORequest, now: float) -> None:
        expire = self.read_expire if request.is_read else self.write_expire
        self._elevator.add(request)
        self._deadlines.append((now + expire, request))
        self.queued += 1

    def decide(self, now: float) -> Optional[Dispatch]:
        if not len(self._elevator):
            return None
        self.queued -= 1
        self.dispatched += 1
        # Expired head preempts the sweep.
        while self._deadlines:
            deadline, candidate = self._deadlines[0]
            if candidate.annotations.get("deadline.done"):
                self._deadlines.popleft()
                continue
            if deadline <= now:
                self._deadlines.popleft()
                self._elevator.remove(candidate)
                candidate.annotations["deadline.done"] = True
                self._elevator.position = candidate.end
                self.expired_dispatches += 1
                return Dispatch(candidate)
            break
        request = self._elevator.pick()
        request.annotations["deadline.done"] = True
        return Dispatch(request)
