"""The noop elevator: FIFO with back-merging.

Linux's ``noop`` keeps arrival order but still merges contiguous
requests — the paper's Figure 2 calls it the "Simple Elevator (Noop)"
scheduler.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.host.schedulers.base import Dispatch, IOScheduler
from repro.io import IORequest

__all__ = ["NoopScheduler"]


class NoopScheduler(IOScheduler):
    """FIFO dispatch; contiguous same-direction requests back-merge.

    A merged victim is completed by the block layer when its carrier
    completes (it is recorded in the carrier's ``annotations``).
    """

    name = "noop"

    def __init__(self, merge: bool = True):
        super().__init__()
        self.merge = merge
        self._fifo: Deque[IORequest] = deque()
        self.merges = 0

    def add(self, request: IORequest, now: float) -> None:
        if self.merge and self._fifo:
            tail = self._fifo[-1]
            if (tail.kind is request.kind
                    and request.adjacent_after(tail)):
                # Grow the tail request; remember the absorbed one.
                tail.size += request.size
                tail.annotations.setdefault("merged", []).append(request)
                self.merges += 1
                return
        self._fifo.append(request)
        self.queued += 1

    def decide(self, now: float) -> Optional[Dispatch]:
        if not self._fifo:
            return None
        self.queued -= 1
        self.dispatched += 1
        return Dispatch(self._fifo.popleft())
