"""The anticipatory scheduler (Iyer & Druschel, SOSP'01; Linux 2.6 "as").

After completing a read for stream *S*, the disk is deliberately kept
idle for a short window: if *S* issues another nearby read (which a
synchronous sequential reader does almost immediately), it is serviced
without a seek, defeating "deceptive idleness". A per-stream batch budget
bounds how long one stream may monopolise the head.
"""

from __future__ import annotations

from typing import Optional

from repro.host.schedulers.base import (
    Dispatch,
    ElevatorQueue,
    Idle,
    IOScheduler,
)
from repro.io import IORequest
from repro.units import MiB

__all__ = ["AnticipatoryScheduler"]


class AnticipatoryScheduler(IOScheduler):
    """Elevator + anticipation window + per-stream batch budget.

    Parameters
    ----------
    antic_timeout:
        How long to keep the disk idle waiting for the last stream's next
        read (Linux ``antic_expire`` ≈ 6.7 ms).
    near_bytes:
        A waiting request counts as "the anticipated one" when it starts
        within this distance of the last completed read's end.
    batch_expire:
        Maximum continuous service time one stream may receive before the
        elevator moves on (Linux ``read_batch_expire`` = 500 ms; a lower
        value keeps many-stream fairness comparable to the paper's box).
    """

    name = "anticipatory"

    def __init__(self, antic_timeout: float = 0.0067,
                 near_bytes: int = 4 * MiB, batch_expire: float = 0.25):
        super().__init__()
        if antic_timeout < 0 or near_bytes < 0 or batch_expire <= 0:
            raise ValueError("anticipatory parameters out of range")
        self.antic_timeout = antic_timeout
        self.near_bytes = near_bytes
        self.batch_expire = batch_expire
        self._elevator = ElevatorQueue()
        self._antic_stream: Optional[int] = None
        self._antic_position = 0
        self._antic_until = 0.0
        self._batch_stream: Optional[int] = None
        self._batch_start = 0.0
        #: Per-stream think-time estimation (EWMA of completion→next-
        #: request gaps), like Linux AS's io-context ``ttime``: streams
        #: whose next request predictably arrives after the window is
        #: not worth idling for.
        self._last_completion: dict[int, float] = {}
        self._think_ewma: dict[int, float] = {}
        self.anticipation_hits = 0
        self.anticipation_timeouts = 0
        self.anticipation_skips = 0

    def add(self, request: IORequest, now: float) -> None:
        stream = request.stream_id
        if stream is not None and stream in self._last_completion:
            gap = now - self._last_completion.pop(stream)
            previous = self._think_ewma.get(stream, gap)
            self._think_ewma[stream] = 0.75 * previous + 0.25 * gap
        self._elevator.add(request)
        self.queued += 1

    def on_complete(self, request: IORequest, now: float) -> None:
        if not request.is_read or request.stream_id is None:
            self._antic_stream = None
            return
        self._last_completion[request.stream_id] = now
        if self._batch_stream != request.stream_id:
            self._batch_stream = request.stream_id
            self._batch_start = now
        if now - self._batch_start >= self.batch_expire:
            # Stream exhausted its batch: no anticipation, move on.
            self._antic_stream = None
            return
        estimated_think = self._think_ewma.get(request.stream_id, 0.0)
        if estimated_think > self.antic_timeout:
            # Slow thinker: idling for it would always time out.
            self._antic_stream = None
            self.anticipation_skips += 1
            return
        self._antic_stream = request.stream_id
        self._antic_position = request.end
        self._antic_until = now + self.antic_timeout

    def decide(self, now: float):
        if not len(self._elevator):
            # Keep anticipating on an empty queue; the block layer will
            # re-ask on arrival or at the deadline.
            if self._antic_stream is not None and now < self._antic_until:
                return Idle(self._antic_until)
            return None
        if self._antic_stream is not None:
            anticipated = self._find_anticipated()
            if anticipated is not None:
                self._elevator.remove(anticipated)
                self._elevator.position = anticipated.end
                self._antic_stream = None
                self.anticipation_hits += 1
                self.queued -= 1
                self.dispatched += 1
                return Dispatch(anticipated)
            if now < self._antic_until:
                return Idle(self._antic_until)
            self._antic_stream = None
            self.anticipation_timeouts += 1
        request = self._elevator.pick()
        self.queued -= 1
        self.dispatched += 1
        return Dispatch(request)

    def _find_anticipated(self) -> Optional[IORequest]:
        for request in self._elevator.peek_all():
            if (request.stream_id == self._antic_stream
                    and request.is_read
                    and abs(request.offset - self._antic_position)
                    <= self.near_bytes):
                return request
        return None
