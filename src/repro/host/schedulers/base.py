"""Scheduler interface and shared elevator machinery.

A scheduler owns the set of queued requests for one device and answers
one question: *what should the device do right now?* The three possible
answers are modelled explicitly so anticipatory idling is first-class:

* :class:`Dispatch` — send this request to the device;
* :class:`Idle` — deliberately keep the device idle until a deadline
  (re-evaluated early if a new request arrives);
* ``None`` — nothing queued.
"""

from __future__ import annotations

import abc
from bisect import bisect_right, insort
from dataclasses import dataclass
from typing import List, Optional

from repro.io import IORequest

__all__ = ["Dispatch", "ElevatorQueue", "Idle", "IOScheduler"]


@dataclass(frozen=True)
class Dispatch:
    """Decision: issue ``request`` now."""

    request: IORequest


@dataclass(frozen=True)
class Idle:
    """Decision: stay idle until ``until`` (absolute simulated time)."""

    until: float


class IOScheduler(abc.ABC):
    """Queue + policy for one device.

    The block layer calls :meth:`add` on arrival, :meth:`decide` whenever
    the device is free (or an idle deadline passed, or a request arrived),
    and :meth:`on_complete` on completion.
    """

    name: str = "abstract"

    def __init__(self):
        self.queued = 0
        self.dispatched = 0

    @abc.abstractmethod
    def add(self, request: IORequest, now: float) -> None:
        """Accept a new request at time ``now``."""

    @abc.abstractmethod
    def decide(self, now: float) -> Optional[object]:
        """Return :class:`Dispatch`, :class:`Idle`, or ``None`` (empty)."""

    def on_complete(self, request: IORequest, now: float) -> None:
        """Completion callback (default: no-op)."""

    def __len__(self) -> int:
        return self.queued

    def __repr__(self) -> str:
        return f"<{type(self).__name__} queued={self.queued}>"


class ElevatorQueue:
    """Offset-sorted request list with a one-directional sweep cursor.

    The C-LOOK style ``pick``: take the first request at or past the
    current position; wrap to the lowest offset when none remain ahead.
    """

    def __init__(self):
        self._requests: List[tuple[int, int, IORequest]] = []
        self.position = 0

    def __len__(self) -> int:
        return len(self._requests)

    def add(self, request: IORequest) -> None:
        """Insert keeping offset order (request id breaks ties)."""
        insort(self._requests, (request.offset, request.request_id, request))

    def remove(self, request: IORequest) -> None:
        """Remove a specific queued request."""
        self._requests.remove(
            (request.offset, request.request_id, request))

    def pick(self) -> Optional[IORequest]:
        """Pop the next request in sweep order and advance the cursor."""
        if not self._requests:
            return None
        index = bisect_right(self._requests,
                             (self.position, -1, None))  # type: ignore[arg-type]
        if index >= len(self._requests):
            index = 0  # wrap: C-LOOK returns to the lowest offset
        _offset, _id, request = self._requests.pop(index)
        self.position = request.end
        return request

    def peek_all(self) -> List[IORequest]:
        """Snapshot of queued requests in offset order."""
        return [request for _o, _i, request in self._requests]
