"""A minimal ext3-like filesystem model: files as extents in block groups.

The paper's Figure 2 measures xdd over ext3 files. What matters to the
I/O path is *layout*: ext3 scatters files across block groups (128 MB
regions) to keep each file's blocks contiguous while spreading unrelated
files over the disk — which is exactly why many sequential file readers
turn into far-apart sequential device streams.

This model provides that mapping: :meth:`create` allocates a file as one
or more extents (contiguous runs) inside block groups chosen round-robin,
and :meth:`map` translates file offsets to device offsets. An optional
fragmentation knob splits files into multiple extents with gaps, for
studying how fragmentation erodes sequential detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.units import KiB, MiB, SECTOR_BYTES

__all__ = ["Extent", "ExtentFile", "ExtentFilesystem"]


@dataclass(frozen=True)
class Extent:
    """One contiguous run of a file on the device."""

    file_offset: int
    device_offset: int
    length: int

    @property
    def file_end(self) -> int:
        return self.file_offset + self.length


@dataclass
class ExtentFile:
    """A named file: ordered, non-overlapping extents."""

    name: str
    size: int
    extents: List[Extent] = field(default_factory=list)

    def map(self, offset: int, size: int) -> List[Tuple[int, int]]:
        """File byte range → [(device_offset, length), ...] pieces."""
        if offset < 0 or size <= 0 or offset + size > self.size:
            raise ValueError(
                f"range [{offset}, {offset + size}) outside file "
                f"{self.name!r} of size {self.size}")
        pieces = []
        position = offset
        remaining = size
        for extent in self.extents:
            if position >= extent.file_end:
                continue
            if remaining <= 0:
                break
            within = position - extent.file_offset
            take = min(extent.length - within, remaining)
            pieces.append((extent.device_offset + within, take))
            position += take
            remaining -= take
        if remaining:
            raise RuntimeError(
                f"file {self.name!r} has a hole at {position}")
        return pieces


class ExtentFilesystem:
    """Block-group allocator over a flat device address space.

    Parameters
    ----------
    capacity_bytes:
        Device size.
    block_group_bytes:
        Region granularity (ext3: 128 MB).
    fragment_every:
        When positive, files split into extents of at most this many
        bytes, each placed in the *next* block group — a worst-case
        fragmentation model. 0 = contiguous files (fresh ext3).
    """

    def __init__(self, capacity_bytes: int,
                 block_group_bytes: int = 128 * MiB,
                 fragment_every: int = 0):
        if capacity_bytes < block_group_bytes:
            raise ValueError("capacity below one block group")
        if block_group_bytes < 1 * MiB:
            raise ValueError(
                f"block groups must be >= 1 MiB: {block_group_bytes}")
        if fragment_every < 0 or fragment_every % SECTOR_BYTES:
            raise ValueError(
                f"fragment_every must be sector-aligned >= 0: "
                f"{fragment_every}")
        self.capacity_bytes = capacity_bytes
        self.block_group_bytes = block_group_bytes
        self.fragment_every = fragment_every
        self.num_groups = capacity_bytes // block_group_bytes
        #: Next free byte within each block group.
        self._group_cursor: Dict[int, int] = {}
        self._next_group = 0
        self.files: Dict[str, ExtentFile] = {}

    # -- allocation -----------------------------------------------------------
    def create(self, name: str, size: int) -> ExtentFile:
        """Allocate a file of ``size`` bytes; returns its extent map."""
        if name in self.files:
            raise ValueError(f"file exists: {name!r}")
        if size <= 0 or size % SECTOR_BYTES:
            raise ValueError(
                f"size must be sector-aligned and positive: {size}")
        file = ExtentFile(name=name, size=size)
        remaining = size
        file_offset = 0
        while remaining > 0:
            piece = remaining if not self.fragment_every \
                else min(self.fragment_every, remaining)
            device_offset = self._allocate_run(piece)
            file.extents.append(Extent(file_offset=file_offset,
                                       device_offset=device_offset,
                                       length=piece))
            file_offset += piece
            remaining -= piece
        self.files[name] = file
        return file

    def _allocate_run(self, length: int) -> int:
        """First-fit a contiguous run, advancing round-robin over groups."""
        if length > self.block_group_bytes:
            raise ValueError(
                f"extent {length} exceeds block group "
                f"{self.block_group_bytes} (fragment the file)")
        for attempt in range(self.num_groups):
            group = (self._next_group + attempt) % self.num_groups
            cursor = self._group_cursor.get(group, 0)
            if cursor + length <= self.block_group_bytes:
                self._group_cursor[group] = cursor + length
                self._next_group = (group + 1) % self.num_groups
                return group * self.block_group_bytes + cursor
        raise MemoryError("filesystem full")

    # -- lookup --------------------------------------------------------------
    def map(self, name: str, offset: int,
            size: int) -> List[Tuple[int, int]]:
        """File range → device pieces (see :meth:`ExtentFile.map`)."""
        try:
            file = self.files[name]
        except KeyError:
            raise FileNotFoundError(name) from None
        return file.map(offset, size)

    def used_bytes(self) -> int:
        """Total allocated bytes."""
        return sum(f.size for f in self.files.values())

    def __repr__(self) -> str:
        return (f"<ExtentFilesystem files={len(self.files)} "
                f"used={self.used_bytes()}/{self.capacity_bytes}>")
