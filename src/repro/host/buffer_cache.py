"""OS buffer (page) cache with per-stream readahead windows.

Models the Linux 2.6-era on-demand readahead: a stream's window starts
small, doubles on sequential access up to ``max_bytes`` (128 KB default in
2.6.11), and collapses back when readahead thrash is detected (pages the
window fetched were evicted before the stream read them). Reads that hit
cached pages complete without device I/O; a miss fetches one readahead
window as a single device request tagged with the stream id — which is
what the I/O schedulers below actually see.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.io import BlockDevice, IOKind, IORequest
from repro.sim import Simulator
from repro.sim.events import Event
from repro.sim.stats import StatsRegistry
from repro.units import KiB

__all__ = ["BufferCache", "ReadaheadParams"]


@dataclass(frozen=True)
class ReadaheadParams:
    """Readahead window tuning.

    ``initial_bytes``/``max_bytes`` bound the per-stream window
    (Linux 2.6.11: 16 KB initial, 128 KB max); ``page_bytes`` is the
    cache granule. ``dirty_ratio``/``writeback_period`` govern the write
    path: buffered writes throttle synchronously once dirty pages exceed
    the ratio, and a background flusher (pdflush-style) writes dirty
    runs back every period.
    """

    initial_bytes: int = 16 * KiB
    max_bytes: int = 128 * KiB
    page_bytes: int = 4 * KiB
    dirty_ratio: float = 0.4
    writeback_period: float = 1.0

    def __post_init__(self):
        if self.page_bytes <= 0 or self.page_bytes % 512:
            raise ValueError(f"bad page size: {self.page_bytes}")
        if self.initial_bytes < self.page_bytes:
            raise ValueError("initial window below one page")
        if self.max_bytes < self.initial_bytes:
            raise ValueError("max window below initial window")
        if not 0.0 < self.dirty_ratio < 1.0:
            raise ValueError(f"dirty_ratio must be in (0,1): "
                             f"{self.dirty_ratio}")
        if self.writeback_period <= 0:
            raise ValueError("writeback_period must be positive")


@dataclass
class _StreamState:
    """Per-stream readahead bookkeeping."""

    next_expected: int = -1
    window_bytes: int = 0
    issued_until: int = -1  # end offset of the last issued readahead


class BufferCache:
    """A bounded page cache over a block device.

    Parameters
    ----------
    sim:
        Owning simulator.
    device:
        Downstream device (usually a :class:`~repro.host.BlockLayer`).
    capacity_bytes:
        Total cache memory; pages evict LRU.
    readahead:
        Window parameters.
    """

    def __init__(self, sim: Simulator, device: BlockDevice,
                 capacity_bytes: int,
                 readahead: Optional[ReadaheadParams] = None,
                 name: str = "bcache"):
        self.sim = sim
        self.device = device
        self.readahead = readahead or ReadaheadParams()
        if capacity_bytes < self.readahead.page_bytes:
            raise ValueError(
                f"capacity {capacity_bytes} below one page")
        self.capacity_pages = capacity_bytes // self.readahead.page_bytes
        self.name = name
        #: (disk_id, page_index) -> True, in LRU order (oldest first).
        self._pages: "OrderedDict[Tuple[int, int], bool]" = OrderedDict()
        self._streams: Dict[int, _StreamState] = {}
        #: Dirty pages, in dirtying order (oldest first).
        self._dirty: "OrderedDict[Tuple[int, int], bool]" = OrderedDict()
        self._flusher_running = False
        self.stats = StatsRegistry()

    # -- public API ----------------------------------------------------------
    def read(self, stream_id: int, disk_id: int, offset: int,
             size: int) -> Event:
        """Read ``[offset, offset+size)``; fires when data is cached.

        Synchronous semantics: the event fires once every page of the
        range is resident (fetching a readahead window on miss).
        """
        if size <= 0:
            raise ValueError(f"non-positive read size: {size}")
        event = self.sim.event(name=f"{self.name}.read")
        self.sim.process(self._read(stream_id, disk_id, offset, size, event),
                         name=f"{self.name}.s{stream_id}")
        return event

    def write(self, stream_id: int, disk_id: int, offset: int,
              size: int) -> Event:
        """Buffered write: dirties pages, throttles at the dirty ratio.

        Completes once the pages are dirtied (and, when over the dirty
        limit, after enough old dirty data has been written back —
        Linux's synchronous dirty throttling).
        """
        if size <= 0:
            raise ValueError(f"non-positive write size: {size}")
        event = self.sim.event(name=f"{self.name}.write")
        self.sim.process(self._write(stream_id, disk_id, offset, size,
                                     event),
                         name=f"{self.name}.w{stream_id}")
        return event

    def _write(self, stream_id: int, disk_id: int, offset: int,
               size: int, event: Event):
        page = self.readahead.page_bytes
        first = offset // page
        last = (offset + size - 1) // page
        for index in range(first, last + 1):
            key = (disk_id, index)
            self._insert(disk_id, index)
            self._dirty.pop(key, None)   # re-dirty moves to the tail
            self._dirty[key] = True
        self.stats.counter("dirtied").add(size)
        limit = int(self.capacity_pages * self.readahead.dirty_ratio)
        while len(self._dirty) > limit:
            yield from self._writeback_oldest_run()
        self._ensure_flusher()
        event.succeed(None)

    def sync(self) -> Event:
        """Barrier: fires once every dirty page has been written back."""
        done = self.sim.event(name=f"{self.name}.sync")

        def drain(sim):
            while self._dirty:
                yield from self._writeback_oldest_run()
            done.succeed(None)

        self.sim.process(drain(self.sim), name=f"{self.name}.sync")
        return done

    @property
    def dirty_pages(self) -> int:
        """Pages awaiting writeback."""
        return len(self._dirty)

    def _writeback_oldest_run(self):
        """Write back the oldest dirty page plus its contiguous run."""
        if not self._dirty:
            return
        (disk_id, start_index), _ = next(iter(self._dirty.items()))
        run = [start_index]
        while (disk_id, run[-1] + 1) in self._dirty:
            run.append(run[-1] + 1)
        while (disk_id, run[0] - 1) in self._dirty:
            run.insert(0, run[0] - 1)
        page = self.readahead.page_bytes
        for index in run:
            del self._dirty[(disk_id, index)]
        request = IORequest(kind=IOKind.WRITE, disk_id=disk_id,
                            offset=run[0] * page,
                            size=len(run) * page)
        self.stats.counter("writeback_io").add(request.size)
        yield self.device.submit(request)

    def _ensure_flusher(self) -> None:
        if self._flusher_running:
            return
        self._flusher_running = True
        self.sim.process(self._flusher(), name=f"{self.name}.flusher")

    def _flusher(self):
        """Background writeback: no page stays dirty past ~a period."""
        while self._dirty:
            yield self.sim.timeout(self.readahead.writeback_period)
            # Flush everything currently dirty (runs coalesce).
            target = len(self._dirty)
            while self._dirty and target > 0:
                before = len(self._dirty)
                yield from self._writeback_oldest_run()
                target -= before - len(self._dirty)
        self._flusher_running = False

    def cached_fraction(self, disk_id: int, offset: int, size: int) -> float:
        """Fraction of the byte range currently resident (no LRU touch)."""
        page = self.readahead.page_bytes
        first = offset // page
        last = (offset + size - 1) // page
        resident = sum((disk_id, index) in self._pages
                       for index in range(first, last + 1))
        return resident / (last - first + 1)

    # -- internals -------------------------------------------------------------
    def _read(self, stream_id: int, disk_id: int, offset: int, size: int,
              event: Event):
        page = self.readahead.page_bytes
        first = offset // page
        last = (offset + size - 1) // page
        missing = [index for index in range(first, last + 1)
                   if not self._touch(disk_id, index)]
        state = self._streams.setdefault(stream_id, _StreamState())
        if not missing:
            self.stats.counter("hits").add(size)
            state.next_expected = offset + size
            event.succeed(None)
            return
        self.stats.counter("misses").add(size)
        sequential = offset == state.next_expected
        start = missing[0] * page
        if start < state.issued_until and sequential:
            # These pages were readahead-fetched and already evicted:
            # thrash — collapse the window (Linux does the same).
            self.stats.counter("thrash").add()
            state.window_bytes = self.readahead.initial_bytes
        elif sequential:
            state.window_bytes = min(
                max(state.window_bytes * 2, self.readahead.initial_bytes),
                self.readahead.max_bytes)
        else:
            state.window_bytes = self.readahead.initial_bytes
        demand_end = (last + 1) * page
        fetch_end = max(demand_end, start + state.window_bytes)
        fetch_end = min(fetch_end, self.device.capacity_bytes)
        fetch_bytes = fetch_end - start
        request = IORequest(kind=IOKind.READ, disk_id=disk_id, offset=start,
                            size=fetch_bytes, stream_id=stream_id)
        self.stats.counter("readahead_io").add(fetch_bytes)
        yield self.device.submit(request)
        for index in range(start // page, fetch_end // page):
            self._insert(disk_id, index)
        state.next_expected = offset + size
        state.issued_until = fetch_end
        event.succeed(None)

    def _touch(self, disk_id: int, index: int) -> bool:
        key = (disk_id, index)
        if key in self._pages:
            self._pages.move_to_end(key)
            return True
        return False

    def _insert(self, disk_id: int, index: int) -> None:
        key = (disk_id, index)
        if key in self._pages:
            self._pages.move_to_end(key)
            return
        if len(self._pages) >= self.capacity_pages:
            # Evict the oldest *clean* page; dirty pages are pinned until
            # writeback (the dirty ratio guarantees clean pages exist).
            victim = next((k for k in self._pages
                           if k not in self._dirty), None)
            if victim is None:
                victim = next(iter(self._pages))
                self._dirty.pop(victim, None)
                self.stats.counter("dirty_evictions").add()
            del self._pages[victim]
            self.stats.counter("evictions").add()
        self._pages[key] = True

    def __repr__(self) -> str:
        return (f"<BufferCache {len(self._pages)}/{self.capacity_pages} "
                f"pages, {len(self._streams)} streams>")
