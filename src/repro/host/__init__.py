"""Host-side OS substrate: block layer, buffer cache, I/O schedulers.

These model the Linux 2.6.11-era I/O path the paper's Figure 2 measures:
xdd readers → page cache with per-stream readahead windows → an I/O
scheduler (noop / deadline / anticipatory / CFQ) → the disk.
"""

from repro.host.block_layer import BlockLayer
from repro.host.buffer_cache import BufferCache, ReadaheadParams
from repro.host.filesystem import Extent, ExtentFile, ExtentFilesystem
from repro.host.schedulers import (
    AnticipatoryScheduler,
    CFQScheduler,
    DeadlineScheduler,
    Dispatch,
    Idle,
    IOScheduler,
    NoopScheduler,
    make_scheduler,
)

__all__ = [
    "AnticipatoryScheduler",
    "BlockLayer",
    "BufferCache",
    "CFQScheduler",
    "DeadlineScheduler",
    "Dispatch",
    "Extent",
    "ExtentFile",
    "ExtentFilesystem",
    "Idle",
    "IOScheduler",
    "NoopScheduler",
    "ReadaheadParams",
    "make_scheduler",
]
