"""Storage-node assembly: host ↔ controllers ↔ disks.

:mod:`repro.node.node` wires controllers and a host cost model into a
single :class:`~repro.io.BlockDevice`; :mod:`repro.node.topology` provides
the paper's three configurations (base 1×1, medium 2×4, large 15-16×4).
"""

from repro.node.hedging import HedgedVolume, HedgePolicy
from repro.node.node import HostParams, StorageNode
from repro.node.striping import StripedVolume
from repro.node.topology import (
    NodeTopology,
    base_topology,
    build_node,
    large_topology,
    medium_topology,
)

__all__ = [
    "HedgePolicy",
    "HedgedVolume",
    "HostParams",
    "NodeTopology",
    "StorageNode",
    "StripedVolume",
    "base_topology",
    "build_node",
    "large_topology",
    "medium_topology",
]
