"""The storage node: controllers plus a host-side cost model.

The host charges CPU time per I/O. The completion-path cost grows with the
number of live I/O buffers (pending-list scans, select() fd sets, buffer
registry churn in the paper's user-level server), which is why dispatching
from *all* streams at once (Figure 12, ``D = S``) stays below the hardware
ceiling while a small dispatch set (Figure 13, ``D = #disks``) does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.controller.controller import DiskController
from repro.io import IORequest, stamp_submit
from repro.sim import Resource, Simulator
from repro.sim.events import Event
from repro.sim.stats import StatsRegistry
from repro.units import GiB, US

__all__ = ["HostParams", "StorageNode"]


@dataclass(frozen=True)
class HostParams:
    """Host CPU/memory cost model.

    Attributes
    ----------
    cpus:
        Host processors available to the I/O path (the paper's node has
        two Opteron 242s).
    submit_cost_s:
        CPU time to issue one request (syscall + async submission).
    completion_base_s:
        Fixed CPU time to reap one completion.
    completion_per_buffer_s:
        Extra completion cost per live I/O buffer — the O(n) component
        of buffer management.
    memory_bytes:
        Host memory available for I/O buffering (advisory: the stream
        server sizes its buffered set against it).
    """

    cpus: int = 2
    submit_cost_s: float = 3 * US
    completion_base_s: float = 20 * US
    completion_per_buffer_s: float = 1.5 * US
    memory_bytes: int = 1 * GiB


class StorageNode:
    """A host with one or more controllers, as one block device.

    ``submit`` routes by global ``disk_id``; completions pay the host
    cost model. Layers that stage their own buffers (the stream-aware
    server's buffered set) register them via :meth:`register_buffers` so
    the completion cost reflects total buffer-management load.
    """

    def __init__(self, sim: Simulator,
                 controllers: Sequence[DiskController],
                 host: Optional[HostParams] = None, name: str = "node"):
        if not controllers:
            raise ValueError("node needs at least one controller")
        self.sim = sim
        self.controllers = list(controllers)
        self.host = host or HostParams()
        self.name = name
        self._route: Dict[int, DiskController] = {}
        for controller in self.controllers:
            for disk_id in controller.disks:
                if disk_id in self._route:
                    raise ValueError(
                        f"disk {disk_id} on two controllers")
                self._route[disk_id] = controller
        capacities = {c.capacity_bytes for c in self.controllers}
        if len(capacities) != 1:
            raise ValueError("controllers must host homogeneous disks")
        #: Per-disk addressable bytes (BlockDevice protocol).
        self.capacity_bytes = capacities.pop()
        self._cpu = Resource(sim, capacity=self.host.cpus,
                             name=f"{name}.cpu")
        self.outstanding = 0
        self._external_buffers = 0
        self.stats = StatsRegistry()
        # Precomputed per-request process name (hot path: one per submit).
        self._req_name = f"{name}.req"
        # Ambient observability, captured once (boolean-guarded hooks).
        self._obs = obs.current()
        self._obs_on = self._obs.enabled

    # -- buffer registry -----------------------------------------------------
    @property
    def live_buffers(self) -> int:
        """Outstanding node requests plus externally registered buffers."""
        return self.outstanding + self._external_buffers

    def register_buffers(self, count: int) -> None:
        """Add ``count`` externally managed I/O buffers to the load model."""
        if self._external_buffers + count < 0:
            raise ValueError("unregistering more buffers than registered")
        self._external_buffers += count

    @property
    def num_disks(self) -> int:
        """Total disks across all controllers."""
        return len(self._route)

    @property
    def disk_ids(self) -> List[int]:
        """Sorted global disk ids."""
        return sorted(self._route)

    def drive(self, disk_id: int):
        """The :class:`~repro.disk.drive.DiskDrive` behind ``disk_id``."""
        return self._route[disk_id].disks[disk_id]

    # -- BlockDevice protocol ----------------------------------------------------
    def submit(self, request: IORequest) -> Event:
        """Issue ``request``; completion pays the host cost model."""
        controller = self._route.get(request.disk_id)
        if controller is None:
            raise ValueError(f"{request!r}: unknown disk {request.disk_id}")
        stamp_submit(request, self.sim.now)
        event = self.sim.event(name="node")
        self.sim.process(self._handle(controller, request, event),
                         name=self._req_name)
        return event

    def _handle(self, controller: DiskController, request: IORequest,
                event: Event):
        span = None
        if self._obs_on:
            span = self._obs.begin_child(request, "node.request", "node",
                                         self.sim.now)
            self._obs.link(request, span)
        yield from self._charge_cpu(self.host.submit_cost_s)
        self.outstanding += 1
        try:
            yield controller.submit(request)
        finally:
            self.outstanding -= 1
        completion_cost = (self.host.completion_base_s
                           + self.host.completion_per_buffer_s
                           * self.live_buffers)
        yield from self._charge_cpu(completion_cost)
        request.complete_time = self.sim.now
        self.stats.counter("completed").add(request.size)
        self.stats.latency("latency").observe(request.latency)
        if span is not None:
            self._obs.spans.end(span, self.sim.now)
        event.succeed(request)

    def _charge_cpu(self, cost: float):
        grant = self._cpu.request()
        yield grant
        try:
            yield self.sim.timeout(cost)
        finally:
            self._cpu.release()

    # -- reporting -----------------------------------------------------------------
    def throughput(self, elapsed: float) -> float:
        """Completed bytes per second over ``elapsed``."""
        return self.stats.counter("completed").throughput(elapsed)

    def __repr__(self) -> str:
        return (f"<StorageNode {self.name!r} "
                f"controllers={len(self.controllers)} "
                f"disks={self.num_disks}>")
