"""RAID-0 striping over a storage node's disks.

The paper's testbed controller (BC4810) is a RAID controller used as
JBOD; this extension provides the striped alternative: a
:class:`StripedVolume` presents one flat address space over several
disks, splitting requests at chunk boundaries round-robin. A single
sequential stream then engages every spindle — the classic way media
servers traded stream capacity for per-stream bandwidth.

The volume is a :class:`~repro.io.BlockDevice`, so the stream server
runs on top of it unchanged (streams over the *virtual* space are still
sequential, and the coalesced R-sized fetches fan out across disks).

**Degraded mode** (DESIGN.md §6): a member disk can die mid-run —
declared via :meth:`StripedVolume.mark_disk_dead` or learned organically
when a child request fails with
:class:`~repro.faults.errors.DiskDeadError`. A dead member fails only
the requests whose stripe ranges *touch* it (fail-fast, without
occupying any live disk's queue); requests that map entirely onto
surviving members keep completing at full throughput.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.faults.errors import DiskDeadError
from repro.io import BlockDevice, IORequest, stamp_submit
from repro.node.node import StorageNode
from repro.sim import Simulator
from repro.sim.events import Event
from repro.sim.stats import StatsRegistry
from repro.units import KiB, SECTOR_BYTES

__all__ = ["StripedVolume"]


class StripedVolume:
    """RAID-0 view over selected disks of a node.

    Parameters
    ----------
    sim:
        Owning simulator.
    node:
        The storage node whose disks back the volume.
    disk_ids:
        Member disks, in stripe order.
    chunk_bytes:
        Stripe unit; requests split at chunk boundaries.
    """

    def __init__(self, sim: Simulator, node: StorageNode,
                 disk_ids: Sequence[int], chunk_bytes: int = 256 * KiB):
        if not disk_ids:
            raise ValueError("striped volume needs at least one disk")
        if len(set(disk_ids)) != len(disk_ids):
            raise ValueError(f"duplicate disks in stripe: {disk_ids}")
        if chunk_bytes < SECTOR_BYTES or chunk_bytes % SECTOR_BYTES:
            raise ValueError(
                f"chunk_bytes must be sector-aligned: {chunk_bytes}")
        unknown = [d for d in disk_ids if d not in node.disk_ids]
        if unknown:
            raise ValueError(f"disks not on node: {unknown}")
        self.sim = sim
        self.node = node
        self.disk_ids = list(disk_ids)
        self.chunk_bytes = chunk_bytes
        per_disk = node.capacity_bytes
        usable_chunks = per_disk // chunk_bytes
        #: Virtual capacity: whole chunks only, across all members.
        self.capacity_bytes = (usable_chunks * chunk_bytes
                               * len(self.disk_ids))
        self.stats = StatsRegistry()
        #: Members known dead; their chunks fail fast (degraded mode).
        self._dead_disks: Set[int] = set()

    # -- degraded mode ------------------------------------------------------
    @property
    def dead_disks(self) -> List[int]:
        """Members currently known dead, sorted."""
        return sorted(self._dead_disks)

    @property
    def degraded(self) -> bool:
        """True once any member disk has died."""
        return bool(self._dead_disks)

    def mark_disk_dead(self, disk_id: int) -> None:
        """Record a member death; later requests touching it fail fast.

        Idempotent. In-flight children on the disk finish however the
        underlying device decides; only *new* submissions are affected.
        """
        if disk_id not in self.disk_ids:
            raise ValueError(f"disk {disk_id} not a member of {self!r}")
        if disk_id not in self._dead_disks:
            self._dead_disks.add(disk_id)
            self.stats.counter("disk_deaths").add()

    # -- address mapping ----------------------------------------------------
    def map_offset(self, virtual_offset: int) -> Tuple[int, int]:
        """Virtual byte offset → (disk_id, physical byte offset)."""
        if not 0 <= virtual_offset < self.capacity_bytes:
            raise ValueError(
                f"offset {virtual_offset} outside volume "
                f"[0, {self.capacity_bytes})")
        chunk_index, within = divmod(virtual_offset, self.chunk_bytes)
        width = len(self.disk_ids)
        disk = self.disk_ids[chunk_index % width]
        physical = (chunk_index // width) * self.chunk_bytes + within
        return disk, physical

    def split(self, request: IORequest) -> List[IORequest]:
        """Child requests, one per chunk-contiguous physical run.

        Adjacent virtual chunks mapping to consecutive physical chunks
        of the *same* disk cannot happen in RAID-0 with width > 1, so
        children are simply one per touched chunk; with width == 1 the
        request passes through whole.
        """
        if len(self.disk_ids) == 1:
            disk, physical = self.map_offset(request.offset)
            child = request.derive(physical, request.size)
            child.disk_id = disk
            return [child]
        children = []
        position = request.offset
        remaining = request.size
        while remaining > 0:
            disk, physical = self.map_offset(position)
            chunk_left = self.chunk_bytes - position % self.chunk_bytes
            size = min(chunk_left, remaining)
            child = request.derive(physical, size)
            child.disk_id = disk
            children.append(child)
            position += size
            remaining -= size
        return children

    # -- BlockDevice protocol ------------------------------------------------
    def submit(self, request: IORequest) -> Event:
        """Fan the request out to member disks; completes when all do.

        Degraded mode: a request whose stripe range touches a known-dead
        member fails *immediately* with :class:`DiskDeadError` — no
        child is submitted, so a dead disk never queues work on (or
        steals host/controller time from) the survivors. Requests
        entirely on live members proceed normally.
        """
        if request.offset + request.size > self.capacity_bytes:
            raise ValueError(
                f"{request!r} beyond volume capacity "
                f"{self.capacity_bytes}")
        stamp_submit(request, self.sim.now)
        event = self.sim.event(name=f"stripe{request.request_id}")
        children = self.split(request)
        self.stats.counter("submitted").add(request.size)
        self.stats.counter("children").add()
        if self._dead_disks:
            touched = sorted({child.disk_id for child in children
                              if child.disk_id in self._dead_disks})
            if touched:
                self.stats.counter("degraded_failed").add(request.size)
                event.fail(DiskDeadError(
                    f"{request!r} touches dead member disk(s) {touched}"))
                return event

        def gather(sim):
            # Submit everything up front (children proceed in
            # parallel), then account each child individually so a
            # member death is *learned* — later requests touching that
            # member fail fast instead of queueing behind a dead disk.
            pairs = [(child, self.node.submit(child))
                     for child in children]
            first_exc = None
            for child, child_event in pairs:
                try:
                    yield child_event
                except Exception as exc:
                    if isinstance(exc, DiskDeadError) \
                            and child.disk_id not in self._dead_disks:
                        self.mark_disk_dead(child.disk_id)
                    if first_exc is None:
                        first_exc = exc
            if first_exc is not None:
                self.stats.counter("degraded_failed").add(request.size)
                event.fail(first_exc)
                return
            request.complete_time = sim.now
            self.stats.counter("completed").add(request.size)
            self.stats.latency("latency").observe(request.latency)
            event.succeed(request)

        self.sim.process(gather(self.sim), name="stripe.gather")
        return event

    def register_buffers(self, count: int) -> None:
        """Forward buffer accounting to the node's host cost model."""
        self.node.register_buffers(count)

    def __repr__(self) -> str:
        return (f"<StripedVolume disks={self.disk_ids} "
                f"chunk={self.chunk_bytes} "
                f"capacity={self.capacity_bytes}>")
