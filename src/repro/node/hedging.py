"""Hedged/redirected mirror reads over a storage node's disks.

The paper's round-robin dispatch assumes every spindle services requests
at the same rate; one slow disk inflates the tail for every stream
mapped to it. This module brings the sweep fabric's straggler policy
(`repro.experiments.fabric.coordinator`) *inside* the simulated storage
stack: a :class:`HedgedVolume` is a RAID-1-style mirror over member
disks — every member holds a full copy — that

* routes each read to one member, picked either round-robin (the
  paper's baseline) or by a per-member latency EWMA with idle
  preference (``select="ewma"``);
* with hedging enabled, starts a timer at ``max(hedge_min_s, hedge_k ×
  window-median)`` and, if the primary copy has not completed by then,
  issues **one** duplicate read to the fastest idle live member —
  first result wins, the loser is drained deterministically (its
  completion updates latency stats but never reaches the client, so a
  request completes exactly once);
* redirects to an untried live member when a copy fails, and learns
  member deaths organically: a child failing with
  :class:`~repro.faults.errors.DiskDeadError` marks the member dead so
  later reads exclude it without queueing behind the corpse.

The volume is a :class:`~repro.io.BlockDevice`, so the stream server
runs on top of it unchanged. With the default policy (hedging off,
single member) the submit path mirrors
:class:`~repro.node.striping.StripedVolume` operation for operation, so
its output is bit-identical to a width-1 stripe — pinned by
``tests/test_hedging.py``.

Determinism: every decision (member choice, hedge trigger, loser
cancellation) is a pure function of simulated time and volume state —
no wall clock, no unseeded randomness — so a seeded run replays
exactly (DESIGN.md §9).
"""

from __future__ import annotations

import statistics
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Set

from repro.faults.errors import DiskDeadError
from repro.io import IORequest, stamp_submit
from repro.sim import Simulator
from repro.sim.events import Event
from repro.sim.stats import StatsRegistry

__all__ = ["HedgePolicy", "HedgedVolume"]

#: Latency samples kept for the hedge-trigger median (fabric's shape).
_LATENCY_WINDOW = 64

_SELECT_POLICIES = ("ewma", "roundrobin")


@dataclass(frozen=True)
class HedgePolicy:
    """Read-placement and hedging knobs for a :class:`HedgedVolume`.

    Parameters
    ----------
    select:
        ``"ewma"`` picks the idle member with the lowest latency EWMA
        (unproven members look fast, matching the fabric's estimator);
        ``"roundrobin"`` rotates over members — the paper's baseline.
    hedge:
        Enable duplicate reads for stragglers. Off by default so a
        plain volume stays bit-identical to a width-1 stripe.
    hedge_k / hedge_min_s:
        A read older than ``max(hedge_min_s, hedge_k × median)`` of the
        recent-latency window earns one hedge to an idle live member.
    ewma_alpha:
        Weight of the newest sample in the per-member EWMA.
    latency_window:
        Samples kept for the shared completion-latency median.
    """

    select: str = "ewma"
    hedge: bool = False
    hedge_k: float = 3.0
    hedge_min_s: float = 2e-3
    ewma_alpha: float = 0.3
    latency_window: int = _LATENCY_WINDOW

    def __post_init__(self) -> None:
        if self.select not in _SELECT_POLICIES:
            raise ValueError(
                f"select must be one of {_SELECT_POLICIES}: {self.select!r}")
        if self.hedge_k < 0.0:
            raise ValueError(f"hedge_k must be >= 0: {self.hedge_k}")
        if self.hedge_min_s < 0.0:
            raise ValueError(f"hedge_min_s must be >= 0: {self.hedge_min_s}")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(
                f"ewma_alpha must be in (0, 1]: {self.ewma_alpha}")
        if self.latency_window < 1:
            raise ValueError(
                f"latency_window must be >= 1: {self.latency_window}")


class _ReadRace:
    """Book-keeping for one hedged read: copies in flight, winner."""

    __slots__ = ("request", "event", "tried", "outstanding", "decided",
                 "first_exc")

    def __init__(self, request: IORequest, event: Event):
        self.request = request
        self.event = event
        #: members a copy of this read has been sent to
        self.tried: Set[int] = set()
        #: copies currently in flight
        self.outstanding = 0
        #: True once the client event fired (success or failure)
        self.decided = False
        self.first_exc: Optional[BaseException] = None


class HedgedVolume:
    """Mirror view over member disks with hedged/redirected reads.

    Parameters
    ----------
    sim:
        Owning simulator.
    node:
        The device the member disks live on. Anything node-shaped
        works — a :class:`~repro.node.node.StorageNode` or a fault
        wrapper around one (``disk_ids``, ``capacity_bytes`` and
        ``submit`` are all that is used).
    disk_ids:
        Member disks; each holds a full copy of the address space.
    policy:
        Read placement + hedging knobs; default is plain EWMA routing
        with hedging off.
    """

    def __init__(self, sim: Simulator, node, disk_ids: Sequence[int],
                 policy: Optional[HedgePolicy] = None):
        if not disk_ids:
            raise ValueError("hedged volume needs at least one disk")
        if len(set(disk_ids)) != len(disk_ids):
            raise ValueError(f"duplicate disks in mirror: {disk_ids}")
        unknown = [d for d in disk_ids if d not in node.disk_ids]
        if unknown:
            raise ValueError(f"disks not on node: {unknown}")
        self.sim = sim
        self.node = node
        self.disk_ids = list(disk_ids)
        self.policy = policy or HedgePolicy()
        #: Every member mirrors the full per-disk address space.
        self.capacity_bytes = node.capacity_bytes
        self.stats = StatsRegistry()
        self._dead_disks: Set[int] = set()
        #: per-member latency estimate; 0.0 = unproven (looks fast)
        self._ewma: Dict[int, float] = {d: 0.0 for d in self.disk_ids}
        #: copies in flight per member (idle preference + hedging)
        self._inflight: Dict[int, int] = {d: 0 for d in self.disk_ids}
        self._window: Deque[float] = deque(
            maxlen=self.policy.latency_window)
        self._rr_next = 0
        # Cached guard so the hedging-off submit path never consults
        # the policy object per request.
        self._hedging = bool(self.policy.hedge)

    # -- degraded mode ------------------------------------------------------
    @property
    def dead_disks(self) -> List[int]:
        """Members currently known dead, sorted."""
        return sorted(self._dead_disks)

    @property
    def degraded(self) -> bool:
        """True once any member disk has died."""
        return bool(self._dead_disks)

    def mark_disk_dead(self, disk_id: int) -> None:
        """Record a member death; later reads exclude it organically.

        Idempotent. In-flight copies on the disk finish however the
        underlying device decides; only *new* placements are affected.
        """
        if disk_id not in self.disk_ids:
            raise ValueError(f"disk {disk_id} not a member of {self!r}")
        if disk_id not in self._dead_disks:
            self._dead_disks.add(disk_id)
            self.stats.counter("disk_deaths").add()

    # -- estimator (fabric's shape) -----------------------------------------
    def _observe(self, member: int, elapsed: float) -> None:
        prev = self._ewma[member]
        if prev == 0.0:
            self._ewma[member] = elapsed
        else:
            alpha = self.policy.ewma_alpha
            self._ewma[member] = (1.0 - alpha) * prev + alpha * elapsed
        self._window.append(elapsed)

    def _hedge_threshold(self) -> float:
        median = statistics.median(self._window) if self._window else 0.0
        return max(self.policy.hedge_min_s, self.policy.hedge_k * median)

    def _learn(self, member: int, exc: BaseException) -> None:
        if isinstance(exc, DiskDeadError) \
                and member not in self._dead_disks:
            self.mark_disk_dead(member)

    # -- member selection ---------------------------------------------------
    def _pick_primary(self, live: Sequence[int]) -> int:
        if self.policy.select == "roundrobin":
            width = len(self.disk_ids)
            for _ in range(width):
                disk = self.disk_ids[self._rr_next % width]
                self._rr_next += 1
                if disk not in self._dead_disks:
                    return disk
        # EWMA: idle members first, fastest estimate wins, id breaks
        # ties — the fabric's (ewma, ident) ordering.
        idle = [d for d in live if not self._inflight[d]]
        pool = idle or live
        return min(pool, key=lambda d: (self._ewma[d], d))

    def _pick_redirect(self, tried: Set[int]) -> Optional[int]:
        """Fastest untried live member, or None when exhausted."""
        pool = [d for d in self.disk_ids
                if d not in tried and d not in self._dead_disks]
        if not pool:
            return None
        return min(pool, key=lambda d: (self._ewma[d], d))

    def _pick_hedge(self, tried: Set[int]) -> Optional[int]:
        """Fastest *idle* untried live member (hedges never queue)."""
        pool = [d for d in self.disk_ids
                if d not in tried and d not in self._dead_disks
                and not self._inflight[d]]
        if not pool:
            return None
        return min(pool, key=lambda d: (self._ewma[d], d))

    # -- BlockDevice protocol -----------------------------------------------
    def submit(self, request: IORequest) -> Event:
        """Route the request to member copies; completes exactly once.

        Reads go to one member (two with a hedge in flight); writes
        mirror to every live member so the copies stay coherent. A
        request fails only when every live member has been tried (or
        none remain), with the *first* error observed.
        """
        if request.offset + request.size > self.capacity_bytes:
            raise ValueError(
                f"{request!r} beyond volume capacity "
                f"{self.capacity_bytes}")
        stamp_submit(request, self.sim.now)
        event = self.sim.event(name=f"hedge{request.request_id}")
        self.stats.counter("submitted").add(request.size)
        live = [d for d in self.disk_ids if d not in self._dead_disks]
        if not live:
            self.stats.counter("degraded_failed").add(request.size)
            event.fail(DiskDeadError(
                f"{request!r}: all mirror members "
                f"{self.disk_ids} are dead"))
            return event
        if not request.is_read:
            self.sim.process(self._mirror_write(request, event, live),
                             name="hedge.write")
            return event
        primary = self._pick_primary(live)
        if not self._hedging:
            self.sim.process(self._relay(request, event, primary),
                             name="hedge.read")
            return event
        race = _ReadRace(request, event)
        self._launch(race, primary, is_hedge=False)
        self.sim.process(self._hedge_timer(race), name="hedge.timer")
        return event

    # -- plain read path (hedging off) --------------------------------------
    def _relay(self, request: IORequest, event: Event, member: int):
        """One copy at a time; redirect to an untried mirror on failure.

        Structurally identical to ``StripedVolume``'s width-1 gather —
        derive child, submit, one yield, complete — so the hedging-off
        volume is bit-identical to a single-disk stripe.
        """
        tried = {member}
        first_exc: Optional[BaseException] = None
        while True:
            child = request.derive(request.offset, request.size)
            child.disk_id = member
            self._inflight[member] += 1
            started = self.sim.now
            try:
                yield self.node.submit(child)
            except Exception as exc:
                self._inflight[member] -= 1
                self._learn(member, exc)
                if first_exc is None:
                    first_exc = exc
                next_member = self._pick_redirect(tried)
                if next_member is None:
                    self.stats.counter("degraded_failed").add(request.size)
                    event.fail(first_exc)
                    return
                member = next_member
                tried.add(member)
                self.stats.counter("redirects").add()
                continue
            self._inflight[member] -= 1
            self._observe(member, self.sim.now - started)
            request.complete_time = self.sim.now
            self.stats.counter("completed").add(request.size)
            self.stats.latency("latency").observe(request.latency)
            event.succeed(request)
            return

    # -- hedged read path ----------------------------------------------------
    def _launch(self, race: _ReadRace, member: int, is_hedge: bool) -> None:
        race.tried.add(member)
        race.outstanding += 1
        child = race.request.derive(race.request.offset, race.request.size)
        child.disk_id = member
        self._inflight[member] += 1
        started = self.sim.now
        child_event = self.node.submit(child)
        self.sim.process(
            self._drain(race, member, child_event, started, is_hedge),
            name="hedge.drain")

    def _drain(self, race: _ReadRace, member: int, child_event: Event,
               started: float, is_hedge: bool):
        """Await one copy; first success wins, losers only update stats."""
        try:
            yield child_event
        except Exception as exc:
            self._inflight[member] -= 1
            self._learn(member, exc)
            race.outstanding -= 1
            if race.decided:
                return
            if race.first_exc is None:
                race.first_exc = exc
            if race.outstanding > 0:
                # A sibling copy is still racing; let it finish.
                return
            next_member = self._pick_redirect(race.tried)
            if next_member is None:
                race.decided = True
                self.stats.counter("degraded_failed").add(
                    race.request.size)
                race.event.fail(race.first_exc)
                return
            self.stats.counter("redirects").add()
            self._launch(race, next_member, is_hedge=False)
            return
        self._inflight[member] -= 1
        self._observe(member, self.sim.now - started)
        race.outstanding -= 1
        if race.decided:
            # The loser of the race: drained deterministically — its
            # latency feeds the estimator, nothing reaches the client.
            self.stats.counter("hedges_cancelled").add()
            return
        race.decided = True
        if is_hedge:
            self.stats.counter("hedges_won").add()
        request = race.request
        request.complete_time = self.sim.now
        self.stats.counter("completed").add(request.size)
        self.stats.latency("latency").observe(request.latency)
        race.event.succeed(request)

    def _hedge_timer(self, race: _ReadRace):
        """Issue at most one duplicate copy once the read ages out."""
        yield self.sim.timeout(self._hedge_threshold())
        if race.decided or race.outstanding != 1:
            return
        member = self._pick_hedge(race.tried)
        if member is None:
            return
        self.stats.counter("hedges_issued").add()
        self._launch(race, member, is_hedge=True)

    # -- write path ----------------------------------------------------------
    def _mirror_write(self, request: IORequest, event: Event,
                      members: Sequence[int]):
        """Mirror the write to every live member; completes when all do."""
        pairs = []
        for member in members:
            child = request.derive(request.offset, request.size)
            child.disk_id = member
            self._inflight[member] += 1
            pairs.append((member, self.node.submit(child)))
        first_exc: Optional[BaseException] = None
        for member, child_event in pairs:
            try:
                yield child_event
            except Exception as exc:
                self._learn(member, exc)
                if first_exc is None:
                    first_exc = exc
            self._inflight[member] -= 1
        if first_exc is not None:
            self.stats.counter("degraded_failed").add(request.size)
            event.fail(first_exc)
            return
        request.complete_time = self.sim.now
        self.stats.counter("completed").add(request.size)
        self.stats.latency("latency").observe(request.latency)
        event.succeed(request)

    def register_buffers(self, count: int) -> None:
        """Forward buffer accounting to the node's host cost model."""
        self.node.register_buffers(count)

    def __repr__(self) -> str:
        return (f"<HedgedVolume disks={self.disk_ids} "
                f"select={self.policy.select} "
                f"hedge={self._hedging} "
                f"capacity={self.capacity_bytes}>")
