"""Topology builders for the paper's storage-node configurations.

Section 3 uses three I/O hierarchies:

* **base** — one controller, one disk (Figures 4, 6, 7, 8, 10, 14, 15);
* **medium** — two controllers with four disks each, the real testbed
  (Figures 12, 13);
* **large** — sixteen controllers hosting up to four disks each; the
  60-disk variant behind Figure 1 uses fifteen full controllers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.controller.controller import ControllerSpec, DiskController
from repro.disk.drive import DiskDrive, DriveConfig
from repro.disk.mechanics import RotationMode
from repro.disk.specs import DISKSIM_GENERIC, DiskSpec
from repro.node.node import HostParams, StorageNode
from repro.sim import Simulator

__all__ = [
    "NodeTopology",
    "base_topology",
    "build_node",
    "large_topology",
    "medium_topology",
]


@dataclass
class NodeTopology:
    """Declarative description of a storage node.

    ``disks_per_controller`` entries define one controller each; global
    disk ids are assigned densely in declaration order.
    """

    disk_spec: DiskSpec = field(default_factory=lambda: DISKSIM_GENERIC)
    controller_spec: ControllerSpec = field(
        default_factory=ControllerSpec)
    disks_per_controller: List[int] = field(default_factory=lambda: [1])
    host: HostParams = field(default_factory=HostParams)
    rotation_mode: RotationMode = RotationMode.UNIFORM
    seed: int = 0

    @property
    def num_disks(self) -> int:
        """Total disks in the topology."""
        return sum(self.disks_per_controller)


def base_topology(disk_spec: Optional[DiskSpec] = None,
                  **kwargs) -> NodeTopology:
    """One controller, one disk."""
    return NodeTopology(disk_spec=disk_spec or DISKSIM_GENERIC,
                        disks_per_controller=[1], **kwargs)


def medium_topology(disk_spec: Optional[DiskSpec] = None,
                    **kwargs) -> NodeTopology:
    """Two controllers x four disks: the paper's real 8-disk testbed."""
    return NodeTopology(disk_spec=disk_spec or DISKSIM_GENERIC,
                        disks_per_controller=[4, 4], **kwargs)


def large_topology(num_disks: int = 60,
                   disk_spec: Optional[DiskSpec] = None,
                   **kwargs) -> NodeTopology:
    """Up to 16 controllers x 4 disks (default: the 60-disk Figure 1 rig)."""
    if not 1 <= num_disks <= 64:
        raise ValueError(f"num_disks must be in [1, 64]: {num_disks}")
    full, remainder = divmod(num_disks, 4)
    per_controller = [4] * full + ([remainder] if remainder else [])
    return NodeTopology(disk_spec=disk_spec or DISKSIM_GENERIC,
                        disks_per_controller=per_controller, **kwargs)


def build_node(sim: Simulator, topology: NodeTopology,
               name: str = "node") -> StorageNode:
    """Instantiate drives, controllers, and the node from a topology.

    Each drive gets a distinct RNG seed derived from the topology seed so
    rotational latencies are independent but the whole node is
    reproducible.
    """
    controllers = []
    disk_id = 0
    for controller_index, count in enumerate(topology.disks_per_controller):
        disks = {}
        for _ in range(count):
            config = DriveConfig(rotation_mode=topology.rotation_mode,
                                 seed=topology.seed * 1009 + disk_id)
            disks[disk_id] = DiskDrive(sim, topology.disk_spec,
                                       config=config,
                                       name=f"disk{disk_id}")
            disk_id += 1
        controllers.append(DiskController(
            sim, topology.controller_spec, disks,
            name=f"{name}.ctl{controller_index}"))
    return StorageNode(sim, controllers, host=topology.host, name=name)
