"""streamsched: reproduction of "Reducing Disk I/O Performance
Sensitivity for Large Numbers of Sequential Streams" (ICDCS 2009).

Top-level convenience exports; see README.md for a tour and DESIGN.md
for the architecture and experiment index.
"""

from repro.core import ServerParams, StreamServer
from repro.disk import DISKSIM_GENERIC, WD800JD, DiskDrive, DiskSpec
from repro.io import BlockDevice, IOKind, IORequest
from repro.node import (
    HostParams,
    StorageNode,
    base_topology,
    build_node,
    large_topology,
    medium_topology,
)
from repro.sim import Simulator
from repro.workload import ClientFleet, StreamSpec, uniform_streams

__version__ = "1.0.0"

__all__ = [
    "BlockDevice",
    "ClientFleet",
    "DISKSIM_GENERIC",
    "DiskDrive",
    "DiskSpec",
    "HostParams",
    "IOKind",
    "IORequest",
    "ServerParams",
    "Simulator",
    "StorageNode",
    "StreamServer",
    "StreamSpec",
    "WD800JD",
    "base_topology",
    "build_node",
    "large_topology",
    "medium_topology",
    "uniform_streams",
    "__version__",
]
