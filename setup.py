"""Setup shim: legacy editable installs + the optional compiled event core.

The C extension (``repro.sim._eventcore``) is a pure accelerator: every
behaviour it implements exists in pure Python (``repro.sim.eventcore``),
and the kernel auto-selects the calendar-queue fallback when the module
is absent. The build therefore must never fail on machines without a C
toolchain — ``optional=True`` plus the error-swallowing ``build_ext``
below turn any compile/link failure into a warning and a pure-Python
install.
"""

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class optional_build_ext(build_ext):
    """Swallow toolchain failures so the extension stays optional."""

    def run(self):
        try:
            super().run()
        except Exception as error:  # noqa: BLE001 - any toolchain failure
            self._warn(error)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as error:  # noqa: BLE001
            self._warn(error)

    @staticmethod
    def _warn(error):
        import warnings

        warnings.warn(
            "repro.sim._eventcore failed to compile (%s); installing "
            "without the compiled event core — the kernel will use the "
            "pure-Python calendar backend" % (error,),
            stacklevel=2,
        )


setup(
    ext_modules=[
        Extension(
            "repro.sim._eventcore",
            sources=["src/repro/sim/_eventcore.c"],
            optional=True,
        )
    ],
    cmdclass={"build_ext": optional_build_ext},
)
