"""Differential tests: optimized hot paths vs brute-force references.

The tombstoned-index :class:`~repro.disk.cache.SegmentedCache` and the
memoized :class:`~repro.disk.geometry.DiskGeometry` replaced simple
O(n) structures with fast paths (ISSUE 2). These tests pit them against
deliberately naive re-implementations — plain lists, whole-table scans,
a set-of-sectors union — over hypothesis-generated operation sequences,
so any divergence introduced by the indexing tricks (tombstones, memo
hits, bounded scans, append fast paths) shows up as a counterexample.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk.cache import SegmentedCache
from repro.disk.geometry import DiskGeometry


# ---------------------------------------------------------------------------
# Brute-force cache reference
# ---------------------------------------------------------------------------

class _RefSegment:
    def __init__(self, segment_id, start):
        self.segment_id = segment_id
        self.start = start
        self.count = 0
        self.used_high = 0
        self.prefetched = 0

    @property
    def end(self):
        return self.start + self.count


class ReferenceCache:
    """Same semantics as SegmentedCache, trivially-correct structures.

    Live segments sit in one plain list in LRU order (oldest first). No
    sorted index, no tombstones, no bounded scans: every lookup scans
    every live segment. Where the real cache must pick among several
    segments covering a sector, its backward index walk selects the one
    with the largest ``(start, segment_id)`` — the reference applies
    that rule by exhaustive max().
    """

    def __init__(self, num_segments, segment_sectors):
        self.num_segments = num_segments
        self.segment_sectors = segment_sectors
        self.segments = []          # LRU order: oldest first
        self._next_id = 0
        self.evictions = 0
        self.wasted_prefetch_sectors = 0
        self.invalidated_sectors = 0

    def _covering(self, sector):
        live = [s for s in self.segments if s.start <= sector < s.end]
        if not live:
            return None
        return max(live, key=lambda s: (s.start, s.segment_id))

    def coverage(self, start, nsectors, touch):
        covered = 0
        while covered < nsectors:
            segment = self._covering(start + covered)
            if segment is None:
                break
            take = min(segment.end - (start + covered), nsectors - covered)
            covered += take
            if touch:
                used = start + covered - segment.start
                if used > segment.used_high:
                    segment.used_high = used
                self.segments.remove(segment)
                self.segments.append(segment)
        return covered

    def allocate(self, start):
        if len(self.segments) >= self.num_segments:
            victim = self.segments.pop(0)
            self.evictions += 1
            self.wasted_prefetch_sectors += max(
                0, min(victim.prefetched, victim.count - victim.used_high))
        segment = _RefSegment(self._next_id, start)
        self._next_id += 1
        self.segments.append(segment)
        return segment

    def fill(self, segment, nsectors, prefetch=False):
        segment.count += nsectors
        if prefetch:
            segment.prefetched += nsectors
        self.segments.remove(segment)
        self.segments.append(segment)

    def invalidate(self, start, nsectors):
        end = start + nsectors
        victims = [s for s in self.segments
                   if s.start < end and start < s.end]
        for victim in victims:
            self.invalidated_sectors += victim.count
            self.segments.remove(victim)

    def covered_prefix_by_union(self, start, nsectors):
        """Set-of-sectors oracle for coverage counts (no chaining)."""
        union = set()
        for segment in self.segments:
            union.update(range(segment.start, segment.end))
        covered = 0
        while covered < nsectors and start + covered in union:
            covered += 1
        return covered


# Operation language: small sector space + tiny cache force eviction,
# tombstone accumulation, compaction, and overlapping windows.
_SECTORS = 160
_SEGMENT_SECTORS = 8

_op = st.one_of(
    st.tuples(st.just("lookup"), st.integers(0, _SECTORS - 1),
              st.integers(1, 24)),
    st.tuples(st.just("peek"), st.integers(0, _SECTORS - 1),
              st.integers(1, 24)),
    st.tuples(st.just("insert"), st.integers(0, _SECTORS - 1),
              st.integers(1, _SEGMENT_SECTORS),
              st.booleans()),          # top up with prefetch fill?
    st.tuples(st.just("invalidate"), st.integers(0, _SECTORS - 1),
              st.integers(1, 32)),
)


@settings(max_examples=200, deadline=None)
@given(num_segments=st.integers(2, 5), ops=st.lists(_op, max_size=60))
def test_cache_matches_bruteforce_reference(num_segments, ops):
    real = SegmentedCache(num_segments=num_segments,
                          segment_sectors=_SEGMENT_SECTORS)
    reference = ReferenceCache(num_segments, _SEGMENT_SECTORS)

    for op in ops:
        kind = op[0]
        if kind in ("lookup", "peek"):
            _kind, start, nsectors = op
            if kind == "lookup":
                got = real.lookup(start, nsectors)
                expected = reference.coverage(start, nsectors, touch=True)
            else:
                got = real.peek(start, nsectors)
                expected = reference.coverage(start, nsectors, touch=False)
            assert got == expected
            # The chained walk must equal the set-union oracle too.
            assert got == reference.covered_prefix_by_union(start, nsectors)
        elif kind == "insert":
            _kind, start, demand, top_up = op
            segment = real.allocate(start)
            real.fill(segment, demand)
            ref_segment = reference.allocate(start)
            reference.fill(ref_segment, demand)
            if top_up and real.space_left(segment):
                spare = real.space_left(segment)
                real.fill(segment, spare, prefetch=True)
                reference.fill(ref_segment, spare, prefetch=True)
        else:
            _kind, start, nsectors = op
            real.invalidate(start, nsectors)
            reference.invalidate(start, nsectors)

        # Full-state equivalence after every operation: same segments,
        # same LRU order, same per-segment bookkeeping.
        live = sorted((segment for segment in real._lru.values()),
                      key=lambda s: s.segment_id)
        ref_live = sorted(reference.segments, key=lambda s: s.segment_id)
        assert [(s.start, s.count, s.used_high, s.prefetched)
                for s in live] == \
            [(s.start, s.count, s.used_high, s.prefetched)
             for s in ref_live]
        assert [s.segment_id for s in real._lru.values()] == \
            [s.segment_id for s in reference.segments]

    assert real.stats.evictions == reference.evictions
    assert real.stats.wasted_prefetch_sectors == \
        reference.wasted_prefetch_sectors
    assert real.stats.invalidated_sectors == reference.invalidated_sectors


@settings(max_examples=100, deadline=None)
@given(st.data())
def test_cache_index_survives_heavy_tombstoning(data):
    """Compaction churn: many evictions, then every sector re-checked."""
    cache = SegmentedCache(num_segments=3, segment_sectors=4)
    starts = data.draw(st.lists(st.integers(0, 60), min_size=10,
                                max_size=50))
    for start in starts:
        segment = cache.allocate(start)
        cache.fill(segment, 4)
    live = list(cache._lru.values())
    assert len(live) == 3
    for sector in range(0, 64):
        expected = any(s.start <= sector < s.end for s in live)
        assert (cache.peek(sector, 1) == 1) == expected


# ---------------------------------------------------------------------------
# Geometry round-trip vs brute-force zone scan, memo warm and cold
# ---------------------------------------------------------------------------

def _bruteforce_zone(geometry, lba):
    for zone in geometry.zones:
        if zone.start_lba <= lba < zone.end_lba:
            return zone
    raise AssertionError(f"LBA {lba} mapped to no zone")


def _geometry(heads, zone_shape):
    return DiskGeometry(heads=heads, zones=zone_shape)


_zone_shapes = st.lists(
    st.tuples(st.integers(1, 20), st.integers(1, 40)),
    min_size=1, max_size=6)


@settings(max_examples=150, deadline=None)
@given(heads=st.integers(1, 8), zone_shape=_zone_shapes,
       data=st.data())
def test_geometry_round_trip_random_lbas(heads, zone_shape, data):
    """zone/cylinder of random LBAs match a whole-table scan, and the
    cylinder's sector range round-trips to contain the LBA."""
    geometry = _geometry(heads, zone_shape)
    lbas = data.draw(st.lists(
        st.integers(0, geometry.total_sectors - 1), min_size=1,
        max_size=30))
    for lba in lbas:                     # memo state carries across — good
        zone = geometry.zone_of_lba(lba)
        assert zone is _bruteforce_zone(geometry, lba)
        cylinder = geometry.cylinder_of_lba(lba)
        assert zone.start_cylinder <= cylinder < zone.end_cylinder
        # Round trip: the cylinder's LBA range must contain the LBA.
        first = zone.start_lba + \
            (cylinder - zone.start_cylinder) * zone.sectors_per_cylinder
        assert first <= lba < first + zone.sectors_per_cylinder
        fused_zone, fused_cylinder = geometry.zone_and_cylinder_of_lba(lba)
        assert fused_zone is zone and fused_cylinder == cylinder
        assert geometry.sectors_per_track_at(lba) == zone.sectors_per_track


@settings(max_examples=100, deadline=None)
@given(heads=st.integers(1, 8), zone_shape=_zone_shapes,
       data=st.data())
def test_geometry_memo_warm_equals_cold(heads, zone_shape, data):
    """A geometry with a hot last-zone memo answers exactly like a fresh
    one: the memo is invisible except for speed."""
    warm = _geometry(heads, zone_shape)
    lbas = data.draw(st.lists(
        st.integers(0, warm.total_sectors - 1), min_size=1, max_size=30))
    # Heat the memo with an arbitrary access pattern.
    for lba in lbas:
        warm.cylinder_of_lba(lba)
    for lba in lbas:
        cold = _geometry(heads, zone_shape)    # memo at zone 0
        assert warm.cylinder_of_lba(lba) == cold.cylinder_of_lba(lba)
        assert warm.zone_of_lba(lba).index == cold.zone_of_lba(lba).index
        assert warm.sectors_per_track_at(lba) == \
            cold.sectors_per_track_at(lba)
