"""Tests for the OS buffer cache and readahead windows."""

import pytest

from repro.disk import DISKSIM_GENERIC, DiskDrive, DriveConfig
from repro.disk.mechanics import RotationMode
from repro.host import BlockLayer, BufferCache, ReadaheadParams, make_scheduler
from repro.sim import Simulator
from repro.units import KiB, MiB


def make_stack(sim, capacity=64 * MiB, readahead=None):
    drive = DiskDrive(sim, DISKSIM_GENERIC,
                      config=DriveConfig(rotation_mode=RotationMode.EXPECTED))
    layer = BlockLayer(sim, drive, make_scheduler("noop"))
    cache = BufferCache(sim, layer, capacity_bytes=capacity,
                        readahead=readahead)
    return cache, layer, drive


def test_first_read_misses_then_hits():
    sim = Simulator()
    cache, layer, _drive = make_stack(sim)
    sim.run_until_event(cache.read(1, 0, 0, 4 * KiB))
    assert cache.stats.counter("misses").count == 1
    sim.run_until_event(cache.read(1, 0, 0, 4 * KiB))
    assert cache.stats.counter("hits").count == 1


def test_readahead_window_doubles_on_sequential():
    sim = Simulator()
    params = ReadaheadParams(initial_bytes=16 * KiB, max_bytes=128 * KiB)
    cache, layer, _drive = make_stack(sim, readahead=params)
    offset = 0
    for _ in range(20):
        sim.run_until_event(cache.read(1, 0, offset, 4 * KiB))
        offset += 4 * KiB
    # The device saw a few escalating readahead requests, not 20 x 4K.
    dispatched = layer.stats.counter("dispatched")
    assert dispatched.count < 10
    assert dispatched.total_bytes >= offset
    sizes = layer.stats.counter("dispatched")
    assert cache.stats.counter("readahead_io").total_bytes >= 16 * KiB


def test_window_capped_at_max():
    sim = Simulator()
    params = ReadaheadParams(initial_bytes=16 * KiB, max_bytes=64 * KiB)
    cache, layer, _drive = make_stack(sim, readahead=params)
    offset = 0
    for _ in range(200):
        sim.run_until_event(cache.read(1, 0, offset, 4 * KiB))
        offset += 4 * KiB
    # No single device read may exceed the cap (window never above max).
    per_read = (layer.stats.counter("dispatched").total_bytes
                / layer.stats.counter("dispatched").count)
    assert per_read <= 64 * KiB


def test_random_access_resets_window():
    sim = Simulator()
    params = ReadaheadParams(initial_bytes=16 * KiB, max_bytes=128 * KiB)
    cache, layer, _drive = make_stack(sim, readahead=params)
    # Grow the window sequentially first.
    offset = 0
    for _ in range(30):
        sim.run_until_event(cache.read(1, 0, offset, 4 * KiB))
        offset += 4 * KiB
    before = layer.stats.counter("dispatched").count
    # A far random read must fetch only the small initial window.
    sim.run_until_event(cache.read(1, 0, 500 * MiB, 4 * KiB))
    state = cache._streams[1]
    assert state.window_bytes == params.initial_bytes


def test_thrash_detection_collapses_window():
    sim = Simulator()
    # Cache fits 8 pages: every stream's readahead evicts the others'.
    params = ReadaheadParams(initial_bytes=16 * KiB, max_bytes=128 * KiB)
    cache, layer, _drive = make_stack(sim, capacity=32 * KiB,
                                      readahead=params)

    def reader(sim, stream, base, count):
        offset = base
        for _ in range(count):
            yield cache.read(stream, 0, offset, 4 * KiB)
            offset += 4 * KiB

    for stream in range(4):
        sim.process(reader(sim, stream, stream * 100 * MiB, 40))
    sim.run()
    assert cache.stats.counter("thrash").count > 0


def test_eviction_keeps_capacity_bounded():
    sim = Simulator()
    cache, layer, _drive = make_stack(sim, capacity=64 * KiB)
    offset = 0
    for _ in range(100):
        sim.run_until_event(cache.read(1, 0, offset, 4 * KiB))
        offset += 4 * KiB
    assert len(cache._pages) <= cache.capacity_pages
    assert cache.stats.counter("evictions").count > 0


def test_cached_fraction():
    sim = Simulator()
    cache, layer, _drive = make_stack(sim)
    sim.run_until_event(cache.read(1, 0, 0, 16 * KiB))
    assert cache.cached_fraction(0, 0, 16 * KiB) == 1.0
    assert cache.cached_fraction(0, 500 * MiB, 16 * KiB) == 0.0
    assert cache.cached_fraction(1, 0, 16 * KiB) == 0.0  # other disk


def test_read_validation():
    sim = Simulator()
    cache, _layer, _drive = make_stack(sim)
    with pytest.raises(ValueError):
        cache.read(1, 0, 0, 0)


def test_readahead_params_validation():
    with pytest.raises(ValueError):
        ReadaheadParams(page_bytes=0)
    with pytest.raises(ValueError):
        ReadaheadParams(initial_bytes=1 * KiB, page_bytes=4 * KiB)
    with pytest.raises(ValueError):
        ReadaheadParams(initial_bytes=64 * KiB, max_bytes=16 * KiB)


def test_capacity_validation():
    sim = Simulator()
    drive = DiskDrive(sim, DISKSIM_GENERIC)
    layer = BlockLayer(sim, drive, make_scheduler("noop"))
    with pytest.raises(ValueError):
        BufferCache(sim, layer, capacity_bytes=100)


def test_streams_do_not_share_readahead_state():
    sim = Simulator()
    cache, layer, _drive = make_stack(sim)
    sim.run_until_event(cache.read(1, 0, 0, 4 * KiB))
    sim.run_until_event(cache.read(2, 0, 200 * MiB, 4 * KiB))
    assert cache._streams[1].next_expected == 4 * KiB
    assert cache._streams[2].next_expected == 200 * MiB + 4 * KiB
