"""Unit and property tests for zoned disk geometry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk.geometry import DiskGeometry, Zone
from repro.units import GiB, SECTOR_BYTES


def small_geometry():
    # 3 zones: 10 cyls x 100 spt, 10 x 80, 10 x 60; 2 heads.
    return DiskGeometry(heads=2, zones=[(10, 100), (10, 80), (10, 60)])


def test_total_sectors_sums_zones():
    geo = small_geometry()
    assert geo.total_sectors == 2 * (10 * 100 + 10 * 80 + 10 * 60)
    assert geo.capacity_bytes == geo.total_sectors * SECTOR_BYTES
    assert geo.cylinders == 30


def test_zone_boundaries_contiguous():
    geo = small_geometry()
    for earlier, later in zip(geo.zones, geo.zones[1:]):
        assert earlier.end_lba == later.start_lba
        assert earlier.end_cylinder == later.start_cylinder
    assert geo.zones[0].start_lba == 0
    assert geo.zones[-1].end_lba == geo.total_sectors


def test_lba_zero_is_outer_zone():
    geo = small_geometry()
    assert geo.zone_of_lba(0).index == 0
    assert geo.cylinder_of_lba(0) == 0


def test_last_lba_is_inner_zone():
    geo = small_geometry()
    last = geo.total_sectors - 1
    assert geo.zone_of_lba(last).index == 2
    assert geo.cylinder_of_lba(last) == geo.cylinders - 1


def test_cylinder_of_lba_monotone():
    geo = small_geometry()
    previous = -1
    for lba in range(0, geo.total_sectors, 137):
        cylinder = geo.cylinder_of_lba(lba)
        assert cylinder >= previous
        previous = cylinder


def test_zone_transition_exact():
    geo = small_geometry()
    zone0 = geo.zones[0]
    assert geo.zone_of_lba(zone0.end_lba - 1).index == 0
    assert geo.zone_of_lba(zone0.end_lba).index == 1


def test_out_of_range_lba_rejected():
    geo = small_geometry()
    with pytest.raises(ValueError):
        geo.zone_of_lba(-1)
    with pytest.raises(ValueError):
        geo.zone_of_lba(geo.total_sectors)
    with pytest.raises(ValueError):
        geo.zone_of_cylinder(geo.cylinders)


def test_sectors_per_track_declines_inward():
    geo = small_geometry()
    rates = [z.sectors_per_track for z in geo.zones]
    assert rates == sorted(rates, reverse=True)


def test_constructor_validation():
    with pytest.raises(ValueError):
        DiskGeometry(heads=0, zones=[(1, 1)])
    with pytest.raises(ValueError):
        DiskGeometry(heads=1, zones=[])
    with pytest.raises(ValueError):
        DiskGeometry(heads=1, zones=[(0, 10)])
    with pytest.raises(ValueError):
        DiskGeometry(heads=1, zones=[(10, 0)])


def test_from_capacity_close_to_target():
    target = 80 * 10**9
    geo = DiskGeometry.from_capacity(target)
    assert abs(geo.capacity_bytes - target) / target < 0.01


def test_from_capacity_single_zone():
    geo = DiskGeometry.from_capacity(1 * GiB, num_zones=1, outer_spt=500,
                                     inner_spt=500)
    assert len(geo.zones) == 1


def test_from_capacity_validation():
    with pytest.raises(ValueError):
        DiskGeometry.from_capacity(100)  # < one sector
    with pytest.raises(ValueError):
        DiskGeometry.from_capacity(GiB, num_zones=0)
    with pytest.raises(ValueError):
        DiskGeometry.from_capacity(GiB, outer_spt=100, inner_spt=200)


@given(
    heads=st.integers(min_value=1, max_value=8),
    zones=st.lists(
        st.tuples(st.integers(min_value=1, max_value=50),
                  st.integers(min_value=1, max_value=200)),
        min_size=1, max_size=6),
)
@settings(max_examples=50)
def test_property_lba_roundtrip_within_cylinder(heads, zones):
    """Every LBA maps to a cylinder whose zone actually contains it."""
    geo = DiskGeometry(heads=heads, zones=zones)
    step = max(1, geo.total_sectors // 97)
    for lba in range(0, geo.total_sectors, step):
        cylinder = geo.cylinder_of_lba(lba)
        zone = geo.zone_of_lba(lba)
        assert zone.start_cylinder <= cylinder < zone.end_cylinder
        # The LBA must fall inside that cylinder's sector span.
        offset_in_zone = lba - zone.start_lba
        expected = zone.start_cylinder + offset_in_zone // zone.sectors_per_cylinder
        assert cylinder == expected


@given(
    capacity_gb=st.integers(min_value=1, max_value=2000),
    heads=st.integers(min_value=1, max_value=8),
    num_zones=st.integers(min_value=1, max_value=30),
)
@settings(max_examples=30)
def test_property_from_capacity_fits(capacity_gb, heads, num_zones):
    """Fitted geometry lands within 5% of any reasonable target."""
    target = capacity_gb * 10**9
    geo = DiskGeometry.from_capacity(target, heads=heads,
                                     num_zones=num_zones)
    assert abs(geo.capacity_bytes - target) / target < 0.05
